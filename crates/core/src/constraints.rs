//! User constraints (UCs).
//!
//! A user constraint is any predicate over a cell value that returns 1
//! (satisfied) or 0 (violated) — paper §2. BClean ships the lightweight
//! constraint forms the paper focuses on (min/max length, min/max numeric
//! value, non-null, regular expression patterns) plus an escape hatch for
//! arbitrary user functions, and groups them per attribute into a
//! [`ConstraintSet`]. The constraint set drives three things:
//!
//! * candidate filtering during inference (`UC(c) = 1` in Eq. 1);
//! * tuple confidence `conf(T)` (Eq. 3) inside the compensatory score;
//! * the Figure 5 ablation, which removes whole *kinds* of constraints.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bclean_data::{Dataset, Schema, Value};
use bclean_regex::Regex;
use bclean_rules::{Rule, RuleError};

/// The coarse kind of a constraint, used by the UC ablation (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// Maximum length / maximum numeric value.
    Max,
    /// Minimum length / minimum numeric value.
    Min,
    /// Non-null requirement.
    NotNull,
    /// Regular-expression pattern.
    Pattern,
    /// An expression-language rule (see `bclean-rules`).
    Expression,
    /// Arbitrary user-supplied predicate.
    Custom,
}

/// A single user constraint over one attribute's values.
#[derive(Clone)]
pub enum UserConstraint {
    /// Minimum length (in characters) of the textual rendering.
    MinLength(usize),
    /// Maximum length (in characters) of the textual rendering.
    MaxLength(usize),
    /// Minimum numeric value (non-numeric values violate the constraint).
    MinValue(f64),
    /// Maximum numeric value (non-numeric values violate the constraint).
    MaxValue(f64),
    /// The value must not be null.
    NotNull,
    /// The textual rendering must fully match the pattern.
    Pattern(Arc<Regex>),
    /// An arithmetic / boolean expression over the cell value (the paper's
    /// "arithmetic expression" UC form), e.g. `num(value) >= 0 && len(value) <= 4`.
    /// The cell is bound to the identifier `value`.
    Expression(Arc<Rule>),
    /// An arbitrary user-supplied binary predicate (paper: "any function that
    /// returns a binary output", e.g. FDs, arithmetic expressions, or even a
    /// neural network wrapped in a closure).
    Custom {
        /// Human-readable label used in reports.
        label: String,
        /// The predicate itself.
        predicate: Arc<dyn Fn(&Value) -> bool + Send + Sync>,
    },
}

impl fmt::Debug for UserConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UserConstraint::MinLength(n) => write!(f, "MinLength({n})"),
            UserConstraint::MaxLength(n) => write!(f, "MaxLength({n})"),
            UserConstraint::MinValue(v) => write!(f, "MinValue({v})"),
            UserConstraint::MaxValue(v) => write!(f, "MaxValue({v})"),
            UserConstraint::NotNull => write!(f, "NotNull"),
            UserConstraint::Pattern(r) => write!(f, "Pattern({:?})", r.pattern()),
            UserConstraint::Expression(rule) => write!(f, "Expression({:?})", rule.source()),
            UserConstraint::Custom { label, .. } => write!(f, "Custom({label})"),
        }
    }
}

impl UserConstraint {
    /// Build a pattern constraint from a regex string.
    pub fn pattern(pattern: &str) -> Result<UserConstraint, bclean_regex::Error> {
        Ok(UserConstraint::Pattern(Arc::new(Regex::new(pattern)?)))
    }

    /// Build an expression constraint from the `bclean-rules` expression
    /// language. The cell value is bound to the identifier `value`, e.g.
    /// `UserConstraint::expression("len(value) == 5 && num(value) >= 10000")`.
    ///
    /// The rule must only reference `value`; rules relating several
    /// attributes belong in [`ConstraintSet::add_row_rule`].
    pub fn expression(source: &str) -> Result<UserConstraint, RuleError> {
        let rule = Rule::compile(source)?;
        Ok(UserConstraint::Expression(Arc::new(rule)))
    }

    /// Build a custom constraint from a closure.
    pub fn custom(
        label: impl Into<String>,
        predicate: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> UserConstraint {
        UserConstraint::Custom { label: label.into(), predicate: Arc::new(predicate) }
    }

    /// The constraint's kind (for ablations).
    pub fn kind(&self) -> ConstraintKind {
        match self {
            UserConstraint::MaxLength(_) | UserConstraint::MaxValue(_) => ConstraintKind::Max,
            UserConstraint::MinLength(_) | UserConstraint::MinValue(_) => ConstraintKind::Min,
            UserConstraint::NotNull => ConstraintKind::NotNull,
            UserConstraint::Pattern(_) => ConstraintKind::Pattern,
            UserConstraint::Expression(_) => ConstraintKind::Expression,
            UserConstraint::Custom { .. } => ConstraintKind::Custom,
        }
    }

    /// Render the constraint as its canonical one-line spec — the format of
    /// CLI constraints files and of the constraints section of persisted
    /// model artifacts (see [`ConstraintSet::to_spec_text`]). Closure-backed
    /// [`UserConstraint::Custom`] constraints have no textual form and
    /// return an error naming the label.
    pub fn to_spec(&self) -> Result<String, String> {
        match self {
            UserConstraint::MinLength(n) => Ok(format!("min_len {n}")),
            UserConstraint::MaxLength(n) => Ok(format!("max_len {n}")),
            UserConstraint::MinValue(v) => Ok(format!("min_value {v}")),
            UserConstraint::MaxValue(v) => Ok(format!("max_value {v}")),
            UserConstraint::NotNull => Ok("not_null".to_string()),
            UserConstraint::Pattern(re) => Ok(format!("pattern {}", re.pattern())),
            UserConstraint::Expression(rule) => Ok(rule.source().to_string()),
            UserConstraint::Custom { label, .. } => {
                Err(format!("custom constraint {label:?} is closure-backed and has no spec form"))
            }
        }
    }

    /// Parse a one-line constraint spec (the inverse of
    /// [`UserConstraint::to_spec`]). Unknown keywords fall through to the
    /// expression language, so `num(value) >= 0` parses as an
    /// [`UserConstraint::Expression`].
    pub fn parse_spec(spec: &str) -> Result<UserConstraint, String> {
        let mut parts = spec.splitn(2, char::is_whitespace);
        let keyword = parts.next().unwrap_or_default().to_ascii_lowercase();
        let rest = parts.next().unwrap_or("").trim();
        match keyword.as_str() {
            "not_null" | "notnull" => Ok(UserConstraint::NotNull),
            "min_len" | "minlen" => {
                rest.parse().map(UserConstraint::MinLength).map_err(|_| format!("invalid length {rest:?}"))
            }
            "max_len" | "maxlen" => {
                rest.parse().map(UserConstraint::MaxLength).map_err(|_| format!("invalid length {rest:?}"))
            }
            "min_value" => {
                rest.parse().map(UserConstraint::MinValue).map_err(|_| format!("invalid number {rest:?}"))
            }
            "max_value" => {
                rest.parse().map(UserConstraint::MaxValue).map_err(|_| format!("invalid number {rest:?}"))
            }
            "pattern" => UserConstraint::pattern(rest).map_err(|e| format!("invalid pattern {rest:?}: {e}")),
            // Anything else is an expression in the rule language.
            _ => UserConstraint::expression(spec).map_err(|e| format!("invalid expression {spec:?}: {e}")),
        }
    }

    /// Evaluate the constraint: `true` means satisfied (`UC(v) = 1`).
    ///
    /// Null values only violate the [`UserConstraint::NotNull`] constraint:
    /// the remaining constraints describe the *format* of present values.
    pub fn check(&self, value: &Value) -> bool {
        match self {
            UserConstraint::NotNull => !value.is_null(),
            _ if value.is_null() => true,
            UserConstraint::MinLength(n) => value.text_len() >= *n,
            UserConstraint::MaxLength(n) => value.text_len() <= *n,
            UserConstraint::MinValue(min) => value.as_number().is_some_and(|v| v >= *min),
            UserConstraint::MaxValue(max) => value.as_number().is_some_and(|v| v <= *max),
            UserConstraint::Pattern(re) => re.is_full_match(&value.as_text()),
            UserConstraint::Expression(rule) => rule.check_value(value),
            UserConstraint::Custom { predicate, .. } => predicate(value),
        }
    }
}

/// All constraints attached to one attribute.
#[derive(Debug, Clone, Default)]
pub struct AttributeConstraints {
    constraints: Vec<UserConstraint>,
}

impl AttributeConstraints {
    /// No constraints.
    pub fn new() -> AttributeConstraints {
        AttributeConstraints::default()
    }

    /// Add a constraint (builder style).
    pub fn with(mut self, constraint: UserConstraint) -> AttributeConstraints {
        self.constraints.push(constraint);
        self
    }

    /// Add a constraint in place.
    pub fn push(&mut self, constraint: UserConstraint) {
        self.constraints.push(constraint);
    }

    /// The constraints.
    pub fn constraints(&self) -> &[UserConstraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints are attached.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// `UC(value)`: all attached constraints must hold.
    pub fn check(&self, value: &Value) -> bool {
        self.constraints.iter().all(|c| c.check(value))
    }
}

/// Per-attribute user constraints for a dataset, addressed by attribute name,
/// plus optional tuple-level ("row") rules relating several attributes.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    by_attribute: HashMap<String, AttributeConstraints>,
    row_rules: Vec<Arc<Rule>>,
}

impl ConstraintSet {
    /// An empty constraint set (the `BClean-UC` variant).
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Attach a constraint to an attribute (builder style).
    pub fn with(mut self, attribute: impl Into<String>, constraint: UserConstraint) -> ConstraintSet {
        self.add(attribute, constraint);
        self
    }

    /// Attach a constraint to an attribute.
    pub fn add(&mut self, attribute: impl Into<String>, constraint: UserConstraint) {
        self.by_attribute.entry(attribute.into()).or_default().push(constraint);
    }

    /// Attach the same constraint to several attributes (the paper's Table 3
    /// lists patterns that apply to multiple columns).
    pub fn add_all<S: AsRef<str>>(&mut self, attributes: &[S], constraint: UserConstraint) {
        for a in attributes {
            self.add(a.as_ref(), constraint.clone());
        }
    }

    /// Attach a tuple-level rule written in the `bclean-rules` expression
    /// language; identifiers resolve to attribute names, e.g.
    /// `"num(act_arr_time) >= num(act_dep_time)"`. This is the paper's
    /// "UC over a tuple" form (§2): it contributes to tuple confidence
    /// (Eq. 3) and filters repair candidates for the attributes it mentions.
    pub fn add_row_rule(&mut self, source: &str) -> Result<(), RuleError> {
        let rule = Rule::compile(source)?;
        self.row_rules.push(Arc::new(rule));
        Ok(())
    }

    /// Builder-style variant of [`ConstraintSet::add_row_rule`].
    pub fn with_row_rule(mut self, source: &str) -> Result<ConstraintSet, RuleError> {
        self.add_row_rule(source)?;
        Ok(self)
    }

    /// The attached tuple-level rules.
    pub fn row_rules(&self) -> &[Arc<Rule>] {
        &self.row_rules
    }

    /// Number of tuple-level rules.
    pub fn num_row_rules(&self) -> usize {
        self.row_rules.len()
    }

    /// `UC(tuple)`: every tuple-level rule holds for the row.
    pub fn check_tuple(&self, schema: &Schema, row: &[Value]) -> bool {
        self.row_rules.iter().all(|rule| rule.check_row(schema, row))
    }

    /// Number of tuple-level rules the row violates.
    pub fn count_row_rule_violations(&self, schema: &Schema, row: &[Value]) -> usize {
        self.row_rules.iter().filter(|rule| !rule.check_row(schema, row)).count()
    }

    /// Check the tuple-level rules that mention column `col` after
    /// substituting `candidate` into that column. Rules that do not reference
    /// the column are skipped (they cannot be fixed by repairing this cell).
    pub fn check_tuple_with(&self, schema: &Schema, row: &[Value], col: usize, candidate: &Value) -> bool {
        if self.row_rules.is_empty() {
            return true;
        }
        let col_name = match schema.attribute(col) {
            Ok(attr) => attr.name.clone(),
            Err(_) => return true,
        };
        let relevant: Vec<&Arc<Rule>> = self
            .row_rules
            .iter()
            .filter(|rule| {
                rule.referenced_attributes().iter().any(|name| name.eq_ignore_ascii_case(&col_name))
            })
            .collect();
        if relevant.is_empty() {
            return true;
        }
        let mut substituted = row.to_vec();
        substituted[col] = candidate.clone();
        relevant.iter().all(|rule| rule.check_row(schema, &substituted))
    }

    /// Constraints of one attribute, if any.
    pub fn attribute(&self, name: &str) -> Option<&AttributeConstraints> {
        self.by_attribute.get(name)
    }

    /// Total number of per-attribute constraints (tuple-level rules are
    /// counted by [`ConstraintSet::num_row_rules`]).
    pub fn len(&self) -> usize {
        self.by_attribute.values().map(|c| c.len()).sum()
    }

    /// True when the set holds no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.row_rules.is_empty()
    }

    /// `UC(value)` for a cell of the named attribute. Unconstrained attributes
    /// always pass.
    pub fn check(&self, attribute: &str, value: &Value) -> bool {
        self.by_attribute.get(attribute).is_none_or(|c| c.check(value))
    }

    /// `UC` check by column index against a schema.
    pub fn check_col(&self, schema: &Schema, col: usize, value: &Value) -> bool {
        match schema.attribute(col) {
            Ok(attr) => self.check(&attr.name, value),
            Err(_) => true,
        }
    }

    /// Tuple confidence (Eq. 3):
    /// `conf(T) = max(0, (Σ 1{UC=1} − λ·Σ 1{UC=0}) / |T|)`.
    ///
    /// Tuple-level rules participate as additional UC terms: each rule counts
    /// once and the denominator grows accordingly.
    pub fn tuple_confidence(&self, schema: &Schema, row: &[Value], lambda: f64) -> f64 {
        let m = row.len() + self.row_rules.len();
        if m == 0 {
            return 0.0;
        }
        let mut satisfied = 0usize;
        let mut violated = 0usize;
        for (col, value) in row.iter().enumerate() {
            if self.check_col(schema, col, value) {
                satisfied += 1;
            } else {
                violated += 1;
            }
        }
        for rule in &self.row_rules {
            if rule.check_row(schema, row) {
                satisfied += 1;
            } else {
                violated += 1;
            }
        }
        ((satisfied as f64 - lambda * violated as f64) / m as f64).max(0.0)
    }

    /// A copy of the set with every constraint of `kind` removed
    /// (Figure 5's Max / Min / Nul / Pat ablations). Tuple-level rules are
    /// kept unless `kind` is [`ConstraintKind::Expression`].
    pub fn without_kind(&self, kind: ConstraintKind) -> ConstraintSet {
        let mut out = ConstraintSet::new();
        for (attr, constraints) in &self.by_attribute {
            for c in constraints.constraints() {
                if c.kind() != kind {
                    out.add(attr.clone(), c.clone());
                }
            }
        }
        if kind != ConstraintKind::Expression {
            out.row_rules = self.row_rules.clone();
        }
        out
    }

    /// Fraction of cells in a dataset that satisfy all constraints.
    pub fn satisfaction_rate(&self, dataset: &Dataset) -> f64 {
        let total = dataset.num_cells();
        if total == 0 {
            return 1.0;
        }
        let mut ok = 0usize;
        for row in dataset.rows() {
            for (col, value) in row.iter().enumerate() {
                if self.check_col(dataset.schema(), col, value) {
                    ok += 1;
                }
            }
        }
        ok as f64 / total as f64
    }

    /// Attribute names that carry at least one constraint.
    pub fn constrained_attributes(&self) -> Vec<&str> {
        let mut names: Vec<&str> =
            self.by_attribute.iter().filter(|(_, c)| !c.is_empty()).map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Render the whole set as canonical spec text: one `attribute: spec`
    /// line per constraint (attributes sorted, each attribute's constraints
    /// in insertion order) followed by one `rule: <expr>` line per
    /// tuple-level rule. This is both the CLI constraints-file format and
    /// the constraints section of persisted model artifacts; parsing the
    /// text back with [`ConstraintSet::from_spec_text`] yields a set with
    /// identical check semantics.
    ///
    /// Errors when the set cannot be represented: closure-backed custom
    /// constraints, sources containing `#` / newlines (which the line
    /// format reserves for comments and separators), sources with leading
    /// or trailing whitespace (the parser trims, so they would silently
    /// reload as different constraints), or an attribute literally named
    /// `rule` (the parser would reinterpret its lines as tuple rules).
    pub fn to_spec_text(&self) -> Result<String, String> {
        let mut out = String::new();
        let escapable = |spec: &str| -> Result<(), String> {
            if spec.contains('#') || spec.contains('\n') || spec.contains('\r') {
                Err(format!("spec {spec:?} contains `#` or a newline, which the line format reserves"))
            } else if spec != spec.trim() {
                Err(format!(
                    "spec {spec:?} has leading/trailing whitespace, which the line format cannot preserve"
                ))
            } else {
                Ok(())
            }
        };
        for attribute in self.constrained_attributes() {
            if attribute.contains(':')
                || attribute.contains('#')
                || attribute.contains('\n')
                || attribute != attribute.trim()
                || attribute.eq_ignore_ascii_case("rule")
            {
                return Err(format!("attribute name {attribute:?} is not representable in spec text"));
            }
            for constraint in self.by_attribute[attribute].constraints() {
                let spec = constraint.to_spec()?;
                escapable(&spec)?;
                out.push_str(attribute);
                out.push_str(": ");
                out.push_str(&spec);
                out.push('\n');
            }
        }
        for rule in &self.row_rules {
            escapable(rule.source())?;
            out.push_str("rule: ");
            out.push_str(rule.source());
            out.push('\n');
        }
        Ok(out)
    }

    /// Parse spec text (see [`ConstraintSet::to_spec_text`] for the
    /// format). Blank lines and `#` comments are ignored; errors carry the
    /// 1-based line number.
    pub fn from_spec_text(text: &str) -> Result<ConstraintSet, String> {
        let mut set = ConstraintSet::new();
        for (lineno, raw_line) in text.lines().enumerate() {
            let line = match raw_line.find('#') {
                Some(pos) => &raw_line[..pos],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (attribute, spec) = line
                .split_once(':')
                .ok_or(format!("line {}: expected `attribute: specification`", lineno + 1))?;
            let attribute = attribute.trim();
            let spec = spec.trim();
            if attribute.eq_ignore_ascii_case("rule") {
                set.add_row_rule(spec).map_err(|e| format!("line {}: {e}", lineno + 1))?;
                continue;
            }
            let constraint =
                UserConstraint::parse_spec(spec).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            set.add(attribute, constraint);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::dataset_from;

    #[test]
    fn length_constraints() {
        assert!(UserConstraint::MinLength(3).check(&Value::text("abc")));
        assert!(!UserConstraint::MinLength(4).check(&Value::text("abc")));
        assert!(UserConstraint::MaxLength(3).check(&Value::text("abc")));
        assert!(!UserConstraint::MaxLength(2).check(&Value::text("abc")));
        // Nulls pass length constraints (only NotNull rejects them).
        assert!(UserConstraint::MinLength(4).check(&Value::Null));
    }

    #[test]
    fn value_constraints() {
        assert!(UserConstraint::MinValue(0.0).check(&Value::Number(1.5)));
        assert!(!UserConstraint::MinValue(2.0).check(&Value::Number(1.5)));
        assert!(UserConstraint::MaxValue(2.0).check(&Value::Number(1.5)));
        assert!(!UserConstraint::MaxValue(1.0).check(&Value::Number(1.5)));
        // Non-numeric text violates numeric bounds.
        assert!(!UserConstraint::MinValue(0.0).check(&Value::text("abc")));
        // Numeric-looking text passes through its numeric view.
        assert!(UserConstraint::MaxValue(100.0).check(&Value::text("42")));
    }

    #[test]
    fn not_null_and_pattern() {
        assert!(!UserConstraint::NotNull.check(&Value::Null));
        assert!(UserConstraint::NotNull.check(&Value::text("x")));
        let zip = UserConstraint::pattern("^[1-9][0-9]{4,4}$").unwrap();
        assert!(zip.check(&Value::parse("35150")));
        assert!(!zip.check(&Value::text("3960")));
        assert!(!zip.check(&Value::text("1xx18")));
        assert!(UserConstraint::pattern("(").is_err());
    }

    #[test]
    fn custom_constraint() {
        let even =
            UserConstraint::custom("even", |v: &Value| v.as_number().is_some_and(|n| (n as i64) % 2 == 0));
        assert!(even.check(&Value::Number(4.0)));
        assert!(!even.check(&Value::Number(3.0)));
        assert_eq!(even.kind(), ConstraintKind::Custom);
        assert!(format!("{even:?}").contains("even"));
    }

    #[test]
    fn kinds() {
        assert_eq!(UserConstraint::MaxLength(1).kind(), ConstraintKind::Max);
        assert_eq!(UserConstraint::MinValue(0.0).kind(), ConstraintKind::Min);
        assert_eq!(UserConstraint::NotNull.kind(), ConstraintKind::NotNull);
        assert_eq!(UserConstraint::pattern("a").unwrap().kind(), ConstraintKind::Pattern);
    }

    #[test]
    fn attribute_constraints_all_must_hold() {
        let c =
            AttributeConstraints::new().with(UserConstraint::MinLength(2)).with(UserConstraint::MaxLength(5));
        assert!(c.check(&Value::text("abc")));
        assert!(!c.check(&Value::text("a")));
        assert!(!c.check(&Value::text("abcdef")));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    fn zip_state_constraints() -> ConstraintSet {
        let mut ucs = ConstraintSet::new();
        ucs.add("ZipCode", UserConstraint::pattern("^[1-9][0-9]{4,4}$").unwrap());
        ucs.add("State", UserConstraint::MinLength(2));
        ucs.add("State", UserConstraint::MaxLength(2));
        ucs.add("State", UserConstraint::NotNull);
        ucs
    }

    #[test]
    fn constraint_set_checks_by_name_and_col() {
        let ucs = zip_state_constraints();
        assert!(ucs.check("ZipCode", &Value::parse("35150")));
        assert!(!ucs.check("ZipCode", &Value::text("3960")));
        assert!(ucs.check("Unconstrained", &Value::text("anything")));
        let schema = Schema::from_names(&["ZipCode", "State"]).unwrap();
        assert!(!ucs.check_col(&schema, 1, &Value::text("California")));
        assert!(ucs.check_col(&schema, 1, &Value::text("CA")));
        assert!(ucs.check_col(&schema, 99, &Value::text("x")));
        assert_eq!(ucs.len(), 4);
        assert!(!ucs.is_empty());
        assert_eq!(ucs.constrained_attributes(), vec!["State", "ZipCode"]);
    }

    #[test]
    fn tuple_confidence_matches_equation_3() {
        let ucs = zip_state_constraints();
        let schema = Schema::from_names(&["ZipCode", "State"]).unwrap();
        let clean = vec![Value::parse("35150"), Value::text("CA")];
        assert!((ucs.tuple_confidence(&schema, &clean, 1.0) - 1.0).abs() < 1e-12);
        let one_bad = vec![Value::text("3960"), Value::text("CA")];
        // (1 − 1·1)/2 = 0
        assert_eq!(ucs.tuple_confidence(&schema, &one_bad, 1.0), 0.0);
        // With λ = 0.25: (1 − 0.25)/2 = 0.375
        assert!((ucs.tuple_confidence(&schema, &one_bad, 0.25) - 0.375).abs() < 1e-12);
        // Confidence is clamped at zero.
        let both_bad = vec![Value::text("x"), Value::Null];
        assert_eq!(ucs.tuple_confidence(&schema, &both_bad, 5.0), 0.0);
        assert_eq!(ucs.tuple_confidence(&schema, &[], 1.0), 0.0);
    }

    #[test]
    fn without_kind_strips_only_that_kind() {
        let ucs = zip_state_constraints();
        let no_pat = ucs.without_kind(ConstraintKind::Pattern);
        assert!(no_pat.check("ZipCode", &Value::text("3960")));
        assert!(!no_pat.check("State", &Value::text("California")));
        let no_max = ucs.without_kind(ConstraintKind::Max);
        assert!(no_max.check("State", &Value::text("California")));
        assert_eq!(ucs.len(), 4);
        assert_eq!(no_pat.len(), 3);
    }

    #[test]
    fn add_all_and_satisfaction_rate() {
        let mut ucs = ConstraintSet::new();
        ucs.add_all(&["a", "b"], UserConstraint::NotNull);
        let d = dataset_from(&["a", "b"], &[vec!["x", ""], vec!["y", "z"]]);
        assert!((ucs.satisfaction_rate(&d) - 0.75).abs() < 1e-12);
        let empty = ConstraintSet::new();
        assert_eq!(empty.satisfaction_rate(&d), 1.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn expression_constraint_checks_single_values() {
        let zip = UserConstraint::expression("len(value) == 5 && num(value) >= 10000").unwrap();
        assert!(zip.check(&Value::parse("35150")));
        assert!(!zip.check(&Value::text("3960")));
        assert!(!zip.check(&Value::text("1xx18")));
        // Nulls only violate NotNull, mirroring the other format constraints.
        assert!(zip.check(&Value::Null));
        assert_eq!(zip.kind(), ConstraintKind::Expression);
        assert!(format!("{zip:?}").contains("len(value)"));
        assert!(UserConstraint::expression("len(").is_err());
    }

    #[test]
    fn expression_constraints_participate_in_the_set() {
        let mut ucs = ConstraintSet::new();
        ucs.add("abv", UserConstraint::expression("num(value) >= 0 && num(value) <= 1").unwrap());
        assert!(ucs.check("abv", &Value::number(0.05)));
        assert!(!ucs.check("abv", &Value::number(5.0)));
        // Figure-5 style ablation removes expression constraints as their own kind.
        let stripped = ucs.without_kind(ConstraintKind::Expression);
        assert!(stripped.check("abv", &Value::number(5.0)));
    }

    /// Every representable constraint must round-trip through its spec
    /// line with identical semantics (the persistence path for user
    /// constraints).
    #[test]
    fn spec_codec_round_trips() {
        let mut ucs = zip_state_constraints();
        ucs.add("score", UserConstraint::MinValue(0.125));
        ucs.add("score", UserConstraint::MaxValue(10.5));
        ucs.add("abv", UserConstraint::expression("num(value) >= 0 && num(value) <= 1").unwrap());
        ucs.add_row_rule("num(arr) >= num(dep)").unwrap();
        let text = ucs.to_spec_text().unwrap();
        let back = ConstraintSet::from_spec_text(&text).unwrap();
        assert_eq!(back.len(), ucs.len());
        assert_eq!(back.num_row_rules(), 1);
        assert_eq!(back.constrained_attributes(), ucs.constrained_attributes());
        // Identical verdicts over a probe battery.
        let probes = [
            Value::parse("35150"),
            Value::text("3960"),
            Value::text("California"),
            Value::text("CA"),
            Value::number(0.5),
            Value::number(20.0),
            Value::Null,
        ];
        for attr in ["ZipCode", "State", "score", "abv", "unconstrained"] {
            for probe in &probes {
                assert_eq!(back.check(attr, probe), ucs.check(attr, probe), "{attr} {probe:?}");
            }
        }
        // Text form is deterministic (sorted attributes).
        assert_eq!(ucs.to_spec_text().unwrap(), text);
        // Idempotent through a second round-trip.
        assert_eq!(back.to_spec_text().unwrap(), text);
    }

    #[test]
    fn spec_codec_rejects_the_unrepresentable() {
        let mut custom = ConstraintSet::new();
        custom.add("a", UserConstraint::custom("opaque", |_| true));
        let err = custom.to_spec_text().unwrap_err();
        assert!(err.contains("opaque"), "{err}");
        let mut hashy = ConstraintSet::new();
        hashy.add("a", UserConstraint::pattern("x#y").unwrap());
        assert!(hashy.to_spec_text().is_err());
        assert!(ConstraintSet::from_spec_text("no colon here").is_err());
        assert!(ConstraintSet::from_spec_text("a: min_len xyz").is_err());
        assert!(ConstraintSet::from_spec_text("rule: ends_with(").is_err());
        // An attribute literally named `rule` would reload as tuple rules —
        // refuse at save time rather than silently transform.
        for name in ["rule", "RULE", "Rule"] {
            let mut rulish = ConstraintSet::new();
            rulish.add(name, UserConstraint::NotNull);
            let err = rulish.to_spec_text().unwrap_err();
            assert!(err.contains("not representable"), "{name}: {err}");
        }
        // Whitespace the line parser would trim away is refused too.
        let mut spacey = ConstraintSet::new();
        spacey.add("a", UserConstraint::pattern("ab ").unwrap());
        assert!(spacey.to_spec_text().is_err());
        let mut padded_name = ConstraintSet::new();
        padded_name.add(" a", UserConstraint::NotNull);
        assert!(padded_name.to_spec_text().is_err());
    }

    #[test]
    fn row_rules_check_tuples() {
        let schema = Schema::from_names(&["dep", "arr"]).unwrap();
        let ucs = ConstraintSet::new().with_row_rule("num(arr) >= num(dep)").unwrap();
        assert_eq!(ucs.num_row_rules(), 1);
        assert!(!ucs.is_empty());
        assert_eq!(ucs.len(), 0, "row rules are not per-attribute constraints");
        let good = vec![Value::number(700.0), Value::number(930.0)];
        let bad = vec![Value::number(930.0), Value::number(700.0)];
        assert!(ucs.check_tuple(&schema, &good));
        assert!(!ucs.check_tuple(&schema, &bad));
        assert_eq!(ucs.count_row_rule_violations(&schema, &bad), 1);
        assert_eq!(ucs.count_row_rule_violations(&schema, &good), 0);
        assert!(ConstraintSet::new().with_row_rule("len(").is_err());
    }

    #[test]
    fn row_rules_lower_tuple_confidence() {
        let schema = Schema::from_names(&["dep", "arr"]).unwrap();
        let ucs = ConstraintSet::new().with_row_rule("num(arr) >= num(dep)").unwrap();
        let good = vec![Value::number(700.0), Value::number(930.0)];
        let bad = vec![Value::number(930.0), Value::number(700.0)];
        // 2 unconstrained cells + 1 satisfied rule over denominator 3.
        assert!((ucs.tuple_confidence(&schema, &good, 1.0) - 1.0).abs() < 1e-12);
        // 2 satisfied cells − 1 violated rule over denominator 3 = 1/3.
        assert!((ucs.tuple_confidence(&schema, &bad, 1.0) - (1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn check_tuple_with_substitutes_candidates() {
        let schema = Schema::from_names(&["dep", "arr", "airline"]).unwrap();
        let ucs = ConstraintSet::new().with_row_rule("num(arr) >= num(dep)").unwrap();
        let row = vec![Value::number(930.0), Value::number(700.0), Value::text("AA")];
        // Repairing `arr` with a later time satisfies the relevant rule.
        assert!(ucs.check_tuple_with(&schema, &row, 1, &Value::number(1000.0)));
        assert!(!ucs.check_tuple_with(&schema, &row, 1, &Value::number(600.0)));
        // The airline column is not mentioned by any rule: all candidates pass.
        assert!(ucs.check_tuple_with(&schema, &row, 2, &Value::text("DL")));
        // Without rules everything passes.
        assert!(ConstraintSet::new().check_tuple_with(&schema, &row, 1, &Value::number(1.0)));
    }

    #[test]
    fn without_kind_preserves_row_rules() {
        let mut ucs = ConstraintSet::new().with_row_rule("num(arr) >= num(dep)").unwrap();
        ucs.add("dep", UserConstraint::NotNull);
        let no_null = ucs.without_kind(ConstraintKind::NotNull);
        assert_eq!(no_null.num_row_rules(), 1);
        assert_eq!(no_null.len(), 0);
        let no_expr = ucs.without_kind(ConstraintKind::Expression);
        assert_eq!(no_expr.num_row_rules(), 0);
        assert_eq!(no_expr.len(), 1);
    }
}
