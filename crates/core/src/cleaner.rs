//! The BClean cleaning algorithm (paper Algorithm 1 with the §6 optimisations).
//!
//! Usage is a two-step *fit / clean* flow mirroring the paper's construction
//! and inference stages:
//!
//! 1. [`BClean::fit`] learns the Bayesian-network structure from the dirty
//!    dataset (FDX similarity sampling + graphical lasso), learns the CPTs,
//!    and builds the compensatory co-occurrence model (Algorithm 2). The
//!    resulting [`BCleanModel`] can optionally be adjusted through the
//!    network editor before inference (paper §4's user interaction).
//! 2. [`BCleanModel::clean`] runs MAP inference over every cell: for each
//!    candidate value `c` satisfying the user constraints it scores
//!    `log BN[A_j](c) + log CS[A_j](c)` and keeps the arg-max (Algorithm 1),
//!    with optional tuple pruning (pre-detection) and domain pruning (§6.2).
//!
//! # The dictionary-encoded engine
//!
//! Both stages run in code space. Fitting dictionary-encodes the dataset
//! ([`bclean_data::encoded`]) once and then never hashes a `Value` again:
//! structure learning samples similarities through memoised code pairs and
//! prunes edges with dense contingency tables, CPT estimation accumulates
//! mixed-radix [`NodeCounts`] per node (fanned out over the shared
//! [`ParallelExecutor`]) and builds the [`CompiledNetwork`] directly from
//! those counts, the compensatory dictionary builds its code-pair counters
//! in parallel, and the per-attribute user constraints are pre-evaluated
//! over each attribute's domain. Inference then runs entirely over `u32`
//! code rows — candidate generation, anchor selection, pruning filters and
//! scoring perform no `Value` hashing and no `Value` cloning; values are
//! only decoded when a [`Repair`] is emitted. Both paths are equivalent to
//! the original `Value`-keyed implementations, which survive as
//! [`BClean::fit_reference`] and [`BCleanModel::clean_reference`] (see
//! [`crate::reference`]) and serve as equivalence oracles and performance
//! baselines (`BENCH_fit.json`, `BENCH_clean.json`).

use std::sync::Arc;
use std::time::Instant;

use bclean_bayesnet::{
    learn_structure_budgeted, learn_structure_encoded, BayesianNetwork, CompiledNetwork, Dag, NetworkEdit,
    NetworkEditor, NodeCounts,
};
use bclean_data::{AttrType, CellRef, ColumnDict, Dataset, Domains, EncodedDataset, Schema, Value};
use bclean_rules::Rule;

use crate::compensatory::CompensatoryModel;
use crate::config::BCleanConfig;
use crate::constraints::ConstraintSet;
use crate::exec::{merge_cleaning_batches, ParallelExecutor};
use crate::report::{CleaningResult, CleaningStats, Repair};

/// Minimum projected fit work — `columns × rows` cell visits — below which
/// the fit-stage executors stay serial regardless of the configured thread
/// count.
///
/// Fanning a fit out has a fixed cost (thread spawns, the block queue, the
/// ordered merge of per-task results) of a few tens of microseconds that the
/// per-cell counting work must amortise. On small inputs it never does:
/// `BENCH_fit.json` showed the encoded Hospital fit (1 000 rows × 20
/// columns ≈ 2×10⁴ cell visits) *slowing down* from one thread to two
/// (0.0217 s → 0.0269 s) because every fit stage paid the fan-out toll for
/// sub-millisecond work items. 2¹⁶ cell visits is the measured break-even
/// neighbourhood on that benchmark — roughly a millisecond of counting —
/// while anything bench-scale (10⁴+ rows × dozens of columns) clears the
/// threshold immediately and parallelises as before. Results are unaffected
/// either way: every fit stage is bit-identical at all thread counts, so the
/// threshold only moves wall-clock.
const FIT_PARALLEL_MIN_WORK: usize = 1 << 16;

/// The BClean system: configuration plus user constraints.
#[derive(Debug, Clone, Default)]
pub struct BClean {
    config: BCleanConfig,
    constraints: ConstraintSet,
}

impl BClean {
    /// Create a cleaner with the given configuration and no constraints.
    pub fn new(config: BCleanConfig) -> BClean {
        BClean { config, constraints: ConstraintSet::new() }
    }

    /// Attach user constraints (builder style).
    pub fn with_constraints(mut self, constraints: ConstraintSet) -> BClean {
        self.constraints = constraints;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &BCleanConfig {
        &self.config
    }

    /// The attached constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Construction stage: learn structure, CPTs and the compensatory model
    /// from the observed dataset.
    ///
    /// Runs entirely through the code-space fit pipeline: the dataset is
    /// dictionary-encoded once, structure learning and every statistic below
    /// it count dense `u32` codes, and per-node/per-column work spreads
    /// across the shared [`ParallelExecutor`]. Internally the fit first
    /// assembles a [`crate::ModelArtifact`] (the detachable sufficient
    /// statistics) and then compiles it; [`BClean::fit_artifact`] returns
    /// the artifact itself for streaming/incremental use. The pre-refactor
    /// `Value`-path construction survives as [`BClean::fit_reference`] (see
    /// [`crate::reference`]) and produces the same model.
    pub fn fit(&self, dataset: &Dataset) -> BCleanModel {
        let start = Instant::now();
        self.fit_artifact(dataset).into_model_timed(start)
    }

    /// Construction stage returning the detachable [`crate::ModelArtifact`]
    /// instead of a compiled model: learned structure plus every sufficient
    /// statistic (`NodeCounts`, compensatory counters, constraint tables in
    /// spirit). The artifact can be compiled into a [`BCleanModel`] any
    /// number of times and absorbs new batches incrementally (see
    /// [`crate::CleaningSession`]).
    pub fn fit_artifact(&self, dataset: &Dataset) -> crate::ModelArtifact {
        let encoded = EncodedDataset::from_dataset(dataset);
        let types: Vec<AttrType> = (0..dataset.num_columns())
            .map(|c| dataset.schema().attribute(c).expect("column in range").ty)
            .collect();
        // With a fit budget, structure learning runs over a deterministic
        // row reservoir and bucketed contingency tables (see
        // `bclean_bayesnet::structure::budgeted`); everything downstream of
        // the structure choice still sees every row.
        let structure = match self.config.fit_budget.params() {
            Some(budget) => learn_structure_budgeted(&encoded, &types, self.config.structure, budget),
            None => learn_structure_encoded(&encoded, &types, self.config.structure),
        };
        self.artifact_from_encoded(dataset, &encoded, structure.dag)
    }

    /// Construction stage with a user-provided (or user-edited) structure.
    pub fn fit_with_structure(&self, dataset: &Dataset, dag: Dag) -> BCleanModel {
        let start = Instant::now();
        let encoded = EncodedDataset::from_dataset(dataset);
        self.artifact_from_encoded(dataset, &encoded, dag).into_model_timed(start)
    }

    /// Assemble the sufficient statistics of a fit over an already-encoded
    /// dataset: per-node [`NodeCounts`] (one independent pass per node,
    /// fanned out through the executor) and the parallel compensatory build.
    /// With `config.num_shards > 1` both statistics are instead accumulated
    /// as per-shard partials over a (task × shard) grid and merged in shard
    /// order — bit-identical to the single-shard fit (see [`crate::shard`]).
    /// Shared by the one-shot fits above and the first batch of a
    /// [`crate::CleaningSession`] (whose encoding may carry appended
    /// dictionaries).
    pub(crate) fn artifact_from_encoded(
        &self,
        dataset: &Dataset,
        encoded: &EncodedDataset,
        dag: Dag,
    ) -> crate::ModelArtifact {
        let m = dataset.num_columns();
        assert_eq!(encoded.num_rows(), dataset.num_rows(), "encoded dataset must match the value dataset");
        let names: Vec<String> = dataset.schema().names().iter().map(|s| s.to_string()).collect();
        let types: Vec<AttrType> =
            (0..m).map(|c| dataset.schema().attribute(c).expect("column in range").ty).collect();
        let constraints =
            if self.config.use_constraints { self.constraints.clone() } else { ConstraintSet::new() };
        let row_executor = self.fit_executor(m, dataset.num_rows(), dataset.num_rows());
        let confidences = crate::compensatory::tuple_confidences(
            dataset,
            &constraints,
            self.config.params.lambda,
            &row_executor,
        );
        self.artifact_from_encoded_parts(names, types, encoded, dag, &confidences)
    }

    /// The encoded-only core of [`BClean::artifact_from_encoded`]: assembles
    /// an artifact from the encoding, the learned structure and
    /// pre-computed per-row tuple confidences, never touching a raw `Value`
    /// dataset. The streaming pipeline (`crate::stream`) lands here after
    /// accumulating the encoding and confidences chunk-by-chunk; because
    /// the confidence sweep is the fit's only use of raw rows, the artifact
    /// is bit-identical to the in-RAM one-shot fit.
    pub(crate) fn artifact_from_encoded_parts(
        &self,
        names: Vec<String>,
        types: Vec<AttrType>,
        encoded: &EncodedDataset,
        dag: Dag,
        confidences: &[f64],
    ) -> crate::ModelArtifact {
        let m = encoded.num_columns();
        let rows = encoded.num_rows();
        assert_eq!(dag.num_nodes(), m, "DAG node count must match the dataset's attribute count");
        assert_eq!(confidences.len(), rows, "one tuple confidence per encoded row");
        let shards = self.config.effective_shards().min(rows.max(1));
        let shard_plan = if shards > 1 { Some(bclean_data::shard_ranges(rows, shards)) } else { None };
        let executor = self.fit_executor(m, rows, m);
        let node_counts: Vec<NodeCounts> = match &shard_plan {
            Some(ranges) => crate::shard::sharded_node_counts(encoded, &dag, &executor, ranges),
            None => executor.map(m, |node| NodeCounts::accumulate(encoded, node, &dag.parents(node))),
        };
        let constraints =
            if self.config.use_constraints { self.constraints.clone() } else { ConstraintSet::new() };
        let row_executor = self.fit_executor(m, rows, rows);
        let compensatory = match (self.config.fit_budget.params(), &shard_plan) {
            // The budgeted pair pass ignores the shard grid: hybrid
            // core/tail tallies are integers owned per target column and
            // filled in row order, so the result is shard-invariant by
            // construction.
            (Some(budget), _) => CompensatoryModel::build_budgeted_with_confidences(
                encoded,
                self.config.params,
                &row_executor,
                budget,
                confidences,
            ),
            (None, Some(ranges)) => CompensatoryModel::build_sharded_with_confidences(
                encoded,
                self.config.params,
                &row_executor,
                ranges,
                confidences,
            ),
            (None, None) => CompensatoryModel::build_parallel_with_confidences(
                encoded,
                self.config.params,
                &row_executor,
                confidences,
            ),
        };
        crate::ModelArtifact::from_parts(
            self.config.clone(),
            constraints,
            names,
            types,
            dag,
            node_counts,
            compensatory,
        )
    }

    /// The executor for one fit stage over `items` work units: serial when
    /// the dataset's projected fit work (`cols × rows` cell visits) falls
    /// below [`FIT_PARALLEL_MIN_WORK`], the configured thread count
    /// otherwise. See the threshold's docs for the measured rationale.
    fn fit_executor(&self, cols: usize, rows: usize, items: usize) -> ParallelExecutor {
        if cols.saturating_mul(rows) < FIT_PARALLEL_MIN_WORK {
            ParallelExecutor::new(1)
        } else {
            ParallelExecutor::for_config(&self.config, items)
        }
    }
}

/// Pre-evaluate the per-attribute user constraints over every code of every
/// column (domain values plus null): `table[col][code]` is `UC(decode(code))`.
/// Evaluating regex/length/predicate constraints once per domain value
/// instead of once per candidate per cell removes them from the hot loop;
/// columns are independent, so they fan out across the executor (results
/// return in column order — the table is identical for every thread count).
pub(crate) fn attr_uc_table(
    network: &BayesianNetwork,
    dicts: &[ColumnDict],
    constraints: &ConstraintSet,
    use_constraints: bool,
    executor: &ParallelExecutor,
) -> Vec<Vec<bool>> {
    if !use_constraints {
        return Vec::new();
    }
    executor
        .map(dicts.len(), |col| attr_uc_column(network.attribute_names().get(col), &dicts[col], constraints))
}

/// One column of the pre-evaluated constraint table: `UC(decode(code))` for
/// every decodable code of the dictionary. Shared by [`attr_uc_table`] and
/// the incremental compile path in [`crate::artifact`], so the verdict
/// semantics can never diverge between the one-shot and streaming engines.
pub(crate) fn attr_uc_column(
    name: Option<&String>,
    dict: &ColumnDict,
    constraints: &ConstraintSet,
) -> Vec<bool> {
    (0..dict.code_space() as u32)
        .map(|code| name.is_none_or(|n| constraints.check(n, dict.decode(code))))
        .collect()
}

/// A repair still in code space: the inference hot loop emits these and the
/// final ordered merge decodes them into [`Repair`]s in one batched pass
/// (attribute names resolved once per column, winning codes decoded in a
/// single traversal of the merged batch).
#[derive(Debug, Clone)]
struct CodeRepair {
    at: CellRef,
    from: Value,
    to_code: u32,
    score_gain: f64,
}

/// A fitted BClean model, ready to clean datasets that share the training
/// dataset's schema.
///
/// Fields are crate-visible so the retained `Value`-path oracle
/// ([`crate::reference`]) can score through the same fitted state.
#[derive(Debug, Clone)]
pub struct BCleanModel {
    pub(crate) config: BCleanConfig,
    pub(crate) constraints: ConstraintSet,
    pub(crate) network: BayesianNetwork,
    /// Code-indexed compilation of `network` (shared dictionary order).
    pub(crate) compiled: CompiledNetwork,
    /// Shared with the producing [`crate::ModelArtifact`] copy-on-write:
    /// the artifact's next absorb detaches its own copy, so the model's
    /// counters are an immutable snapshot as of its compile.
    pub(crate) compensatory: std::sync::Arc<CompensatoryModel>,
    pub(crate) domains: Domains,
    pub(crate) fd_confidence: Vec<Vec<f64>>,
    /// `attr_uc_ok[col][code]`: pre-evaluated per-attribute constraint
    /// verdicts over the column's code space (empty when constraints are off).
    pub(crate) attr_uc_ok: Vec<Vec<bool>>,
    pub(crate) fit_duration: std::time::Duration,
}

impl BCleanModel {
    /// The learned Bayesian network.
    pub fn network(&self) -> &BayesianNetwork {
        &self.network
    }

    /// The compensatory model.
    pub fn compensatory(&self) -> &CompensatoryModel {
        &self.compensatory
    }

    /// The configuration used to fit the model.
    pub fn config(&self) -> &BCleanConfig {
        &self.config
    }

    /// Per-attribute observed domains.
    pub fn domains(&self) -> &Domains {
        &self.domains
    }

    /// The per-attribute dictionaries defining the model's code space.
    pub fn dicts(&self) -> &[ColumnDict] {
        self.compensatory.dicts()
    }

    /// Apply user edits to the network (paper §4's interaction step) and
    /// relearn the CPTs affected by the edits.
    pub fn edit_network(
        &mut self,
        dataset: &Dataset,
        edits: impl IntoIterator<Item = NetworkEdit>,
    ) -> Result<(), bclean_bayesnet::EditError> {
        let mut editor = NetworkEditor::new(dataset, &self.network, self.config.alpha);
        editor.apply_all(edits)?;
        self.network = editor.finish(&self.network);
        self.compiled = CompiledNetwork::compile(&self.network, self.compensatory.dicts());
        Ok(())
    }

    /// Score every candidate repair for one cell, returning `(candidate,
    /// score)` pairs sorted by decreasing score. The observed value is always
    /// included (it is the arg-max baseline of Algorithm 1).
    pub fn score_candidates(&self, dataset: &Dataset, row: usize, col: usize) -> Vec<(Value, f64)> {
        let row_values = dataset.row(row).expect("row index in range");
        let dicts = self.compensatory.dicts();
        let row_codes: Vec<u32> = row_values.iter().zip(dicts).map(|(v, d)| d.encode_lossy(v)).collect();
        let original = &row_values[col];
        let original_code = row_codes[col];
        let anchor = self.anchor_context_codes(&row_codes, col);
        let rules = self.relevant_rules(dataset.schema(), col);
        let mut candidates = Vec::new();
        let mut scratch = Vec::new();
        self.candidate_codes(
            dataset.schema(),
            row_values,
            &row_codes,
            col,
            original_code,
            anchor,
            &rules,
            &mut candidates,
            &mut scratch,
        );
        let dict = &dicts[col];
        let mut scored: Vec<(Value, f64)> = candidates
            .iter()
            .map(|&c| {
                // The pushed original may be outside the dictionary; decode
                // everything else from the shared code order.
                let value = if c == original_code { original.clone() } else { dict.decode(c).clone() };
                (value, self.score_codes(&row_codes, col, c))
            })
            .collect();
        let original_score = self.score_codes(&row_codes, col, original_code);
        if !scored.iter().any(|(c, _)| c == original) {
            scored.push((original.clone(), original_score));
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
    }

    /// Clean a dataset (inference stage, Algorithm 1). Row ranges are
    /// processed through the shared [`ParallelExecutor`], whose ordered merge
    /// makes the result identical for every thread count. With
    /// `config.num_shards > 1` the rows are instead partitioned into
    /// contiguous shards (see [`crate::shard`]) cleaned concurrently against
    /// this shared model; per-row inference is independent, so the
    /// shard-ordered merge is bit-identical to the single-shard run.
    ///
    /// The dataset is dictionary-encoded against the model's fit-time
    /// [`ColumnDict`]s up front (values the model never observed map to
    /// per-column unseen sentinels that score through the same fallbacks as
    /// the `Value` path); all per-cell inference below runs over `u32` codes.
    /// Repairs stay in code space until the final ordered merge, where the
    /// winning codes are decoded in one batched pass.
    pub fn clean(&self, dataset: &Dataset) -> CleaningResult {
        let start = Instant::now();
        let n = dataset.num_rows();
        let m = dataset.num_columns();
        let dicts = self.compensatory.dicts();
        // Row-major encode: the only Value hashing of the whole run.
        let mut codes: Vec<u32> = Vec::with_capacity(n * m);
        for row in dataset.rows() {
            for (col, value) in row.iter().enumerate() {
                codes.push(dicts[col].encode_lossy(value));
            }
        }
        let rules_by_col = self.rules_by_col(dataset.schema());
        let pruned_by_col = self.pruned_candidate_lists();
        let shards = self.config.effective_shards().min(n.max(1));
        let batches = if shards > 1 {
            let ranges = bclean_data::shard_ranges(n, shards);
            let executor = ParallelExecutor::for_config(&self.config, shards);
            executor.map(shards, |s| {
                self.clean_rows(
                    dataset,
                    &codes,
                    &rules_by_col,
                    &pruned_by_col,
                    ranges[s].start,
                    ranges[s].end,
                )
            })
        } else {
            let executor = ParallelExecutor::for_config(&self.config, n);
            executor.execute(n, |rows| {
                self.clean_rows(dataset, &codes, &rules_by_col, &pruned_by_col, rows.start, rows.end)
            })
        };
        let (code_repairs, mut stats) = merge_cleaning_batches(batches);
        debug_assert!(
            code_repairs.windows(2).all(|w| (w[0].at.row, w[0].at.col) < (w[1].at.row, w[1].at.col)),
            "ordered block merge must yield (row, col)-sorted repairs"
        );
        // Batched decode: resolve attribute names once per column and decode
        // every winning code in one tight pass over the merged batch.
        let attr_names: Vec<String> = (0..m)
            .map(|c| dataset.schema().attribute(c).map(|a| a.name.clone()).unwrap_or_default())
            .collect();
        let repairs: Vec<Repair> = code_repairs
            .into_iter()
            .map(|r| Repair {
                at: r.at,
                attribute: attr_names[r.at.col].clone(),
                from: r.from,
                to: dicts[r.at.col].decode(r.to_code).clone(),
                score_gain: r.score_gain,
            })
            .collect();
        let mut cleaned = dataset.clone();
        for repair in &repairs {
            cleaned
                .set_cell(repair.at.row, repair.at.col, repair.to.clone())
                .expect("repair coordinates are valid");
        }
        stats.repairs = repairs.len();
        stats.duration = start.elapsed();
        stats.fit_duration = self.fit_duration;
        CleaningResult { cleaned, repairs, stats }
    }

    /// Per-column pruned candidate enumerations for the scale-only
    /// high-cardinality pruning (`config.candidate_top_k`): for each column
    /// whose dictionary exceeds the threshold, the `top_k` most frequent
    /// value codes (ties broken in sorted-value order), re-sorted into the
    /// dictionary's sorted-value enumeration order so downstream tie
    /// breaking behaves exactly as on the unpruned walk. Columns at or below
    /// the threshold stay `None` (exact enumeration); with the default
    /// `usize::MAX` threshold every column is exact.
    fn pruned_candidate_lists(&self) -> Vec<Option<Vec<u32>>> {
        let top_k = self.config.candidate_top_k;
        let dicts = self.compensatory.dicts();
        dicts
            .iter()
            .enumerate()
            .map(|(col, dict)| {
                if dict.cardinality() <= top_k {
                    return None;
                }
                // Enumerate in sorted-value order (exactly like the unpruned
                // walk), stably keep the most frequent `top_k`, then restore
                // enumeration order via the sorted rank.
                let mut ranked: Vec<u32> = match dict.code_order() {
                    None => (0..dict.cardinality() as u32).collect(),
                    Some(order) => order.to_vec(),
                };
                ranked.sort_by_key(|&c| std::cmp::Reverse(self.compensatory.value_count_code(col, c)));
                ranked.truncate(top_k);
                ranked.sort_by_key(|&c| dict.sort_rank(c));
                Some(ranked)
            })
            .collect()
    }

    /// Clean a contiguous range of rows (one parallel work unit) over the
    /// row-major code matrix. Repairs are emitted in code space; the caller
    /// decodes them after the ordered merge.
    #[allow(clippy::too_many_arguments)]
    fn clean_rows(
        &self,
        dataset: &Dataset,
        codes: &[u32],
        rules_by_col: &[Vec<Arc<Rule>>],
        pruned_by_col: &[Option<Vec<u32>>],
        lo: usize,
        hi: usize,
    ) -> (Vec<CodeRepair>, CleaningStats) {
        let m = dataset.num_columns();
        let mut repairs = Vec::new();
        let mut stats = CleaningStats::default();
        let mut candidates: Vec<u32> = Vec::new();
        let mut scratch: Vec<Value> = Vec::new();
        for row_idx in lo..hi {
            let row = dataset.row(row_idx).expect("row index in range");
            let row_codes = &codes[row_idx * m..(row_idx + 1) * m];
            for col in 0..m {
                // Pre-detection / tuple pruning (§6.2): skip cells that already
                // co-occur strongly with the rest of their tuple.
                if self.config.tuple_pruning
                    && !row[col].is_null()
                    && self.compensatory.filter_score_codes(row_codes, col) >= self.config.tau_clean
                {
                    stats.cells_skipped += 1;
                    continue;
                }
                stats.cells_examined += 1;
                if let Some(repair) = self.infer_cell_codes(
                    dataset,
                    row_idx,
                    row,
                    row_codes,
                    col,
                    &rules_by_col[col],
                    pruned_by_col[col].as_deref(),
                    &mut candidates,
                    &mut scratch,
                    &mut stats,
                ) {
                    repairs.push(repair);
                }
            }
        }
        (repairs, stats)
    }

    /// Algorithm 1 for one cell over dictionary codes: return a repair when
    /// some candidate beats the observed value. Values are only touched for
    /// tuple-rule checks (columns referenced by row rules); the winning
    /// candidate stays a code — [`BCleanModel::clean`] decodes the merged
    /// batch in one pass.
    #[allow(clippy::too_many_arguments)]
    fn infer_cell_codes(
        &self,
        dataset: &Dataset,
        row_idx: usize,
        row: &[Value],
        row_codes: &[u32],
        col: usize,
        rules: &[Arc<Rule>],
        pruned: Option<&[u32]>,
        candidates: &mut Vec<u32>,
        scratch: &mut Vec<Value>,
        stats: &mut CleaningStats,
    ) -> Option<CodeRepair> {
        let original = &row[col];
        let original_code = row_codes[col];
        let anchor = self.anchor_context_codes(row_codes, col);
        // A value that violates its own user constraints is known to be wrong
        // (Eq. 1 restricts the arg-max to UC-satisfying values), so it cannot
        // defend its cell: the best constraint-satisfying candidate wins.
        let original_satisfies_uc = !self.config.use_constraints
            || (self.attr_ok(col, original_code, original)
                && (rules.is_empty() || rules.iter().all(|r| r.check_row(dataset.schema(), row))));
        let original_score = if original_satisfies_uc {
            self.score_codes(row_codes, col, original_code)
        } else {
            f64::NEG_INFINITY
        };
        let mut best_code: Option<u32> = None;
        let mut best_score = original_score;

        let base_margin =
            if anchor.is_some() { self.config.repair_margin } else { self.config.no_anchor_margin };
        self.candidate_codes_pruned(
            dataset.schema(),
            row,
            row_codes,
            col,
            original_code,
            anchor,
            rules,
            pruned,
            candidates,
            scratch,
        );
        for &candidate in candidates.iter() {
            if candidate == original_code {
                continue;
            }
            stats.candidates_evaluated += 1;
            let score = self.score_codes(row_codes, col, candidate);
            let margin = if best_code.is_none() && original_score.is_finite() { base_margin } else { 0.0 };
            if score > best_score + margin {
                best_score = score;
                best_code = Some(candidate);
            }
        }

        best_code.map(|code| CodeRepair {
            at: CellRef::new(row_idx, col),
            from: original.clone(),
            to_code: code,
            score_gain: if original_score.is_finite() { best_score - original_score } else { f64::INFINITY },
        })
    }

    /// Per-attribute `UC(value)` verdict for one code, using the
    /// pre-evaluated table and falling back to a direct check for values
    /// outside the model's dictionaries.
    #[inline]
    fn attr_ok(&self, col: usize, code: u32, value: &Value) -> bool {
        if let Some(flags) = self.attr_uc_ok.get(col) {
            if let Some(&ok) = flags.get(code as usize) {
                return ok;
            }
        }
        self.network.attribute_names().get(col).is_none_or(|name| self.constraints.check(name, value))
    }

    /// The tuple-level rules relevant to one column of `schema`: the rules
    /// whose referenced attributes include the column's name.
    fn relevant_rules(&self, schema: &Schema, col: usize) -> Vec<Arc<Rule>> {
        if !self.config.use_constraints || self.constraints.row_rules().is_empty() {
            return Vec::new();
        }
        match schema.attribute(col) {
            Ok(attr) => self
                .constraints
                .row_rules()
                .iter()
                .filter(|rule| {
                    rule.referenced_attributes().iter().any(|name| name.eq_ignore_ascii_case(&attr.name))
                })
                .cloned()
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    /// [`BCleanModel::relevant_rules`] for every column, resolved once per
    /// cleaning run instead of once per candidate.
    fn rules_by_col(&self, schema: &Schema) -> Vec<Vec<Arc<Rule>>> {
        (0..schema.arity()).map(|col| self.relevant_rules(schema, col)).collect()
    }

    /// The cell's *anchor context* over codes: the most selective other
    /// attribute of the tuple that (a) reliably determines the cell's
    /// attribute (softened-FD confidence above the configured threshold) and
    /// (b) whose value in this tuple is shared by at least one more tuple.
    /// Repairs must be corroborated by a tuple sharing this value when such
    /// an anchor exists.
    fn anchor_context_codes(&self, row_codes: &[u32], col: usize) -> Option<usize> {
        if !self.config.anchored_candidates {
            return None;
        }
        let dicts = self.compensatory.dicts();
        let mut best: Option<(usize, usize)> = None;
        for (k, &code) in row_codes.iter().enumerate() {
            if k == col || code == dicts[k].null_code() {
                continue;
            }
            if self.fd_confidence[k][col] < self.config.anchor_min_confidence {
                continue;
            }
            let count = self.compensatory.value_count_code(k, code);
            if count < 2 {
                continue;
            }
            if best.is_none_or(|(_, c)| count < c) {
                best = Some((k, count));
            }
        }
        best.map(|(k, _)| k)
    }

    /// Candidate generation over codes: the column's domain codes, filtered
    /// by the pre-evaluated per-attribute constraints, by the tuple-level
    /// rules relevant to the column (Eq. 1's `UC(c) = 1`), by the
    /// anchor-corroboration requirement, and optionally by domain pruning
    /// (§6.2). The observed value's code is appended when absent.
    #[allow(clippy::too_many_arguments)]
    fn candidate_codes(
        &self,
        schema: &Schema,
        row: &[Value],
        row_codes: &[u32],
        col: usize,
        original_code: u32,
        anchor: Option<usize>,
        rules: &[Arc<Rule>],
        out: &mut Vec<u32>,
        scratch: &mut Vec<Value>,
    ) {
        self.candidate_codes_pruned(
            schema,
            row,
            row_codes,
            col,
            original_code,
            anchor,
            rules,
            None,
            out,
            scratch,
        )
    }

    /// [`BCleanModel::candidate_codes`] with an optional pre-pruned
    /// enumeration (see [`BCleanModel::pruned_candidate_lists`]): when
    /// `pruned` is set, only those codes — already in sorted-value order —
    /// are walked instead of the whole domain.
    #[allow(clippy::too_many_arguments)]
    fn candidate_codes_pruned(
        &self,
        schema: &Schema,
        row: &[Value],
        row_codes: &[u32],
        col: usize,
        original_code: u32,
        anchor: Option<usize>,
        rules: &[Arc<Rule>],
        pruned: Option<&[u32]>,
        out: &mut Vec<u32>,
        scratch: &mut Vec<Value>,
    ) {
        let dict = &self.compensatory.dicts()[col];
        let card = dict.cardinality() as u32;
        let check_rules = self.config.use_constraints && !rules.is_empty();
        if check_rules {
            // Tuple rules are arbitrary value expressions: candidates are
            // substituted into a scratch copy of the row, cloned once per
            // cell (only slot `col` changes between candidates).
            scratch.clear();
            scratch.extend_from_slice(row);
        }
        out.clear();
        // Candidates are enumerated in sorted value order — for fresh
        // dictionaries that *is* the code order; appended dictionaries
        // (streaming sessions) walk their code→sorted-rank remap so tie
        // breaking, pruning truncation and candidate caps behave exactly as
        // over a freshly sorted dictionary.
        let accept = |code: u32, scratch: &mut Vec<Value>, out: &mut Vec<u32>| {
            if self.config.use_constraints {
                if !self.attr_uc_ok[col][code as usize] {
                    return;
                }
                if check_rules {
                    scratch[col] = dict.decode(code).clone();
                    if !rules.iter().all(|r| r.check_row(schema, scratch)) {
                        return;
                    }
                }
            }
            if let Some(k) = anchor {
                if self.compensatory.pair_count_codes(col, code, k, row_codes[k]) < 1 {
                    return;
                }
            }
            out.push(code);
        };
        match (pruned, dict.code_order()) {
            (Some(kept), _) => {
                for &code in kept {
                    accept(code, scratch, out);
                }
            }
            (None, None) => {
                for code in 0..card {
                    accept(code, scratch, out);
                }
            }
            (None, Some(order)) => {
                for &code in order {
                    accept(code, scratch, out);
                }
            }
        }

        if self.config.domain_pruning && out.len() > self.config.domain_top_k {
            // Treat the cell's sub-network as the semantic context and keep the
            // TF-IDF top-k candidates.
            let mut context = self.network.dag().joint_set(col);
            if context.len() <= 1 {
                context = (0..row.len()).collect();
            }
            let mut scored: Vec<(f64, u32)> = out
                .iter()
                .map(|&c| (self.compensatory.tfidf_score_codes(row_codes, col, c, &context), c))
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            out.clear();
            out.extend(scored.into_iter().take(self.config.domain_top_k).map(|(_, c)| c));
        }

        if out.len() > self.config.max_candidates {
            // Deterministic cap for pathological domains: keep the most frequent values.
            out.sort_by_key(|&c| std::cmp::Reverse(self.compensatory.value_count_code(col, c)));
            out.truncate(self.config.max_candidates);
        }

        if !row[col].is_null() && !out.contains(&original_code) {
            out.push(original_code);
        }
    }

    /// The Algorithm 1 score of one candidate code:
    /// `log BN[A_j](c) + log CS[A_j](c)`, evaluated entirely through the
    /// compiled (code-indexed) models.
    ///
    /// Nodes without parents are scored with a uniform prior (paper §6.1):
    /// only the likelihood of their children and the compensatory score
    /// discriminate between candidates, which prevents the raw value
    /// frequency from overwriting rare-but-correct values.
    fn score_codes(&self, row_codes: &[u32], col: usize, candidate: u32) -> f64 {
        let has_parents = self.compiled.has_parents(col);
        let bn_score = if self.config.partitioned_inference {
            if has_parents {
                self.compiled.blanket_log_score(row_codes, col, candidate)
            } else {
                self.compiled.children_log_likelihood(row_codes, col, candidate)
            }
        } else {
            // Whole-network scoring: every factor of the joint is evaluated.
            let joint = self.compiled.log_joint_with(row_codes, col, candidate);
            if has_parents {
                joint
            } else {
                // Remove the node's own prior factor (uniform-prior treatment).
                joint - self.compiled.log_marginal(col, candidate)
            }
        };
        let comp_score = if self.config.use_compensatory {
            self.compensatory.log_score_codes(row_codes, col, candidate)
        } else {
            0.0
        };
        bn_score + comp_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::constraints::{ConstraintSet, UserConstraint};
    use bclean_data::dataset_from;

    /// A Customer-like dataset with a Zip->State dependency, one typo, one
    /// missing value and one inconsistency.
    fn dirty_dataset() -> Dataset {
        dataset_from(
            &["City", "State", "ZipCode"],
            &[
                vec!["sylacauga", "CA", "35150"],
                vec!["sylacauga", "CA", "35150"],
                vec!["sylacauga", "KT", "35150"], // inconsistency: should be CA
                vec!["sylacaugq", "CA", "35150"], // typo in City
                vec!["centre", "KT", "35960"],
                vec!["centre", "KT", "35960"],
                vec!["centre", "", "35960"], // missing State
                vec!["centre", "KT", "35960"],
                vec!["sylacauga", "CA", "35150"],
                vec!["sylacauga", "CA", "35150"],
            ],
        )
    }

    fn constraints() -> ConstraintSet {
        let mut ucs = ConstraintSet::new();
        ucs.add("ZipCode", UserConstraint::pattern("^[1-9][0-9]{4,4}$").unwrap());
        ucs.add("State", UserConstraint::MinLength(2));
        ucs.add("State", UserConstraint::MaxLength(2));
        ucs.add("State", UserConstraint::NotNull);
        ucs.add("City", UserConstraint::NotNull);
        ucs
    }

    fn clean_with(variant: Variant) -> CleaningResult {
        let data = dirty_dataset();
        let cleaner = BClean::new(variant.config()).with_constraints(constraints());
        let model = cleaner.fit(&data);
        model.clean(&data)
    }

    #[test]
    fn repairs_inconsistent_state() {
        let result = clean_with(Variant::Basic);
        assert_eq!(result.cleaned.cell(2, 1).unwrap(), &Value::text("CA"), "repairs: {:?}", result.repairs);
    }

    #[test]
    fn repairs_missing_state() {
        let result = clean_with(Variant::Basic);
        assert_eq!(result.cleaned.cell(6, 1).unwrap(), &Value::text("KT"));
        // The repair is recorded with its provenance.
        let r = result.repairs.iter().find(|r| r.at == CellRef::new(6, 1)).unwrap();
        assert_eq!(r.attribute, "State");
        assert_eq!(r.from, Value::Null);
        assert!(r.score_gain > 0.0);
    }

    #[test]
    fn repairs_city_typo() {
        let result = clean_with(Variant::Basic);
        assert_eq!(result.cleaned.cell(3, 0).unwrap(), &Value::text("sylacauga"));
    }

    #[test]
    fn does_not_break_clean_cells() {
        let result = clean_with(Variant::Basic);
        // Every repair must touch one of the three known-dirty cells.
        for r in &result.repairs {
            assert!(
                [(2usize, 1usize), (3, 0), (6, 1)].contains(&(r.at.row, r.at.col)),
                "unexpected repair {r:?}"
            );
        }
    }

    #[test]
    fn partitioned_variant_matches_basic_on_small_data() {
        let basic = clean_with(Variant::Basic);
        let pi = clean_with(Variant::PartitionedInference);
        assert_eq!(basic.cleaned, pi.cleaned);
    }

    #[test]
    fn pruning_variant_still_fixes_errors() {
        let pip = clean_with(Variant::PartitionedInferencePruning);
        assert_eq!(pip.cleaned.cell(2, 1).unwrap(), &Value::text("CA"));
        assert_eq!(pip.cleaned.cell(6, 1).unwrap(), &Value::text("KT"));
        // Pruning must actually skip some cells.
        assert!(pip.stats.cells_skipped > 0);
        assert!(pip.stats.cells_examined < 30);
    }

    #[test]
    fn no_uc_variant_runs_without_constraints() {
        let result = clean_with(Variant::NoUserConstraints);
        // It still fixes the State inconsistency (driven by the BN + compensatory score).
        assert_eq!(result.cleaned.cell(2, 1).unwrap(), &Value::text("CA"));
    }

    #[test]
    fn stats_are_populated() {
        let result = clean_with(Variant::Basic);
        assert!(result.stats.cells_examined > 0);
        assert!(result.stats.candidates_evaluated > 0);
        assert_eq!(result.stats.repairs, result.repairs.len());
        assert!(result.stats.duration.as_nanos() > 0);
    }

    #[test]
    fn score_candidates_ranks_truth_first() {
        let data = dirty_dataset();
        let model = BClean::new(Variant::Basic.config()).with_constraints(constraints()).fit(&data);
        let ranked = model.score_candidates(&data, 2, 1);
        assert_eq!(ranked[0].0, Value::text("CA"));
        assert!(ranked.len() >= 2);
        assert!(ranked[0].1 >= ranked[ranked.len() - 1].1);
    }

    #[test]
    fn constraints_filter_candidates() {
        // A candidate violating the UC pattern must never be proposed.
        let data = dataset_from(
            &["Zip", "State"],
            &[
                vec!["35150", "CA"],
                vec!["35150", "CA"],
                vec!["3515", "CA"], // bad zip, satisfies nothing
                vec!["35960", "KT"],
                vec!["35960", "KT"],
            ],
        );
        let mut ucs = ConstraintSet::new();
        ucs.add("Zip", UserConstraint::pattern("^[1-9][0-9]{4,4}$").unwrap());
        let model = BClean::new(Variant::Basic.config()).with_constraints(ucs).fit(&data);
        let result = model.clean(&data);
        // The bad zip is repaired to a value satisfying the pattern.
        let repaired = result.cleaned.cell(2, 0).unwrap();
        assert_eq!(repaired, &Value::parse("35150"));
    }

    #[test]
    fn edit_network_changes_structure() {
        let data = dirty_dataset();
        let mut model = BClean::new(Variant::Basic.config()).with_constraints(constraints()).fit(&data);
        // Clear whatever was learned automatically, then impose ZipCode -> City.
        let removals: Vec<NetworkEdit> = model
            .network()
            .dag()
            .edges()
            .into_iter()
            .map(|(from, to)| NetworkEdit::RemoveEdge { from, to })
            .collect();
        model.edit_network(&data, removals).unwrap();
        model.edit_network(&data, vec![NetworkEdit::AddEdge { from: 2, to: 0 }]).unwrap();
        assert_eq!(model.network().dag().num_edges(), 1);
        assert!(model.network().dag().has_edge(2, 0));
        // Cleaning still works after the edit.
        let result = model.clean(&data);
        assert_eq!(result.cleaned.cell(2, 1).unwrap(), &Value::text("CA"));
    }

    #[test]
    fn parallel_and_serial_results_agree() {
        // Build a dataset large enough to trigger the parallel path.
        let mut rows = Vec::new();
        for i in 0..200usize {
            let (city, state, zip) =
                if i % 2 == 0 { ("sylacauga", "CA", "35150") } else { ("centre", "KT", "35960") };
            // Inject an inconsistency every 20 rows.
            if i % 20 == 5 {
                rows.push(vec![city.to_string(), "XX".to_string(), zip.to_string()]);
            } else {
                rows.push(vec![city.to_string(), state.to_string(), zip.to_string()]);
            }
        }
        let refs: Vec<Vec<&str>> = rows.iter().map(|r| r.iter().map(|s| s.as_str()).collect()).collect();
        let data = dataset_from(&["City", "State", "ZipCode"], &refs);
        let serial_model = BClean::new(Variant::PartitionedInference.config().with_threads(1))
            .with_constraints(constraints())
            .fit(&data);
        let parallel_model = BClean::new(Variant::PartitionedInference.config().with_threads(4))
            .with_constraints(constraints())
            .fit(&data);
        let serial = serial_model.clean(&data);
        let parallel = parallel_model.clean(&data);
        assert_eq!(serial.cleaned, parallel.cleaned);
        assert_eq!(serial.repairs.len(), parallel.repairs.len());
        assert!(serial.repairs.len() >= 10);
    }

    #[test]
    fn accessors() {
        let data = dirty_dataset();
        let cleaner = BClean::new(Variant::Basic.config()).with_constraints(constraints());
        assert_eq!(cleaner.constraints().len(), 5);
        assert!(cleaner.config().use_constraints);
        let model = cleaner.fit(&data);
        assert_eq!(model.network().num_nodes(), 3);
        assert_eq!(model.domains().len(), 3);
        assert!(model.compensatory().num_rows() == 10);
        assert!(model.config().use_compensatory);
        assert_eq!(model.dicts().len(), 3);
    }

    /// Cleaning a dataset containing values the model never saw must not
    /// panic and must leave well-supported cells intact.
    #[test]
    fn cleaning_unseen_values_is_safe() {
        let data = dirty_dataset();
        let model =
            BClean::new(Variant::PartitionedInference.config()).with_constraints(constraints()).fit(&data);
        let other = dataset_from(
            &["City", "State", "ZipCode"],
            &[
                vec!["gadsden", "ZZ", "99999"], // entirely unseen tuple
                vec!["sylacauga", "CA", "35150"],
            ],
        );
        let result = model.clean(&other);
        assert_eq!(result.cleaned.num_rows(), 2);
        assert_eq!(result.cleaned.cell(1, 0).unwrap(), &Value::text("sylacauga"));
    }

    /// Tuple-level rules keep filtering candidates on the encoded path.
    #[test]
    fn row_rules_filter_candidates() {
        let data = dataset_from(
            &["lo", "hi"],
            &[
                vec!["1", "5"],
                vec!["1", "5"],
                vec!["1", "5"],
                vec!["2", "6"],
                vec!["2", "6"],
                vec!["6", "2"], // violates lo <= hi
            ],
        );
        let ucs = ConstraintSet::new().with_row_rule("num(lo) <= num(hi)").unwrap();
        let model = BClean::new(Variant::Basic.config()).with_constraints(ucs).fit(&data);
        let result = model.clean(&data);
        for row in result.cleaned.rows() {
            let lo = row[0].as_number().unwrap();
            let hi = row[1].as_number().unwrap();
            assert!(lo <= hi, "row rule violated after cleaning: {lo} > {hi}");
        }
    }
}
