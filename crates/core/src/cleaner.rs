//! The BClean cleaning algorithm (paper Algorithm 1 with the §6 optimisations).
//!
//! Usage is a two-step *fit / clean* flow mirroring the paper's construction
//! and inference stages:
//!
//! 1. [`BClean::fit`] learns the Bayesian-network structure from the dirty
//!    dataset (FDX similarity sampling + graphical lasso), learns the CPTs,
//!    and builds the compensatory co-occurrence model (Algorithm 2). The
//!    resulting [`BCleanModel`] can optionally be adjusted through the
//!    network editor before inference (paper §4's user interaction).
//! 2. [`BCleanModel::clean`] runs MAP inference over every cell: for each
//!    candidate value `c` satisfying the user constraints it scores
//!    `log BN[A_j](c) + log CS[A_j](c)` and keeps the arg-max (Algorithm 1),
//!    with optional tuple pruning (pre-detection) and domain pruning (§6.2).

use std::time::Instant;

use bclean_bayesnet::{learn_structure, BayesianNetwork, Dag, NetworkEdit, NetworkEditor};
use bclean_data::{CellRef, Dataset, Domains, Value};

use crate::compensatory::CompensatoryModel;
use crate::config::BCleanConfig;
use crate::constraints::ConstraintSet;
use crate::exec::{merge_cleaning_batches, ParallelExecutor};
use crate::report::{CleaningResult, CleaningStats, Repair};

/// The BClean system: configuration plus user constraints.
#[derive(Debug, Clone, Default)]
pub struct BClean {
    config: BCleanConfig,
    constraints: ConstraintSet,
}

impl BClean {
    /// Create a cleaner with the given configuration and no constraints.
    pub fn new(config: BCleanConfig) -> BClean {
        BClean { config, constraints: ConstraintSet::new() }
    }

    /// Attach user constraints (builder style).
    pub fn with_constraints(mut self, constraints: ConstraintSet) -> BClean {
        self.constraints = constraints;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &BCleanConfig {
        &self.config
    }

    /// The attached constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Construction stage: learn structure, CPTs and the compensatory model
    /// from the observed dataset.
    pub fn fit(&self, dataset: &Dataset) -> BCleanModel {
        let start = Instant::now();
        let structure = learn_structure(dataset, self.config.structure);
        self.fit_with_dag(dataset, structure.dag, start)
    }

    /// Construction stage with a user-provided (or user-edited) structure.
    pub fn fit_with_structure(&self, dataset: &Dataset, dag: Dag) -> BCleanModel {
        self.fit_with_dag(dataset, dag, Instant::now())
    }

    fn fit_with_dag(&self, dataset: &Dataset, dag: Dag, start: Instant) -> BCleanModel {
        let network = BayesianNetwork::learn(dataset, dag, self.config.alpha);
        let constraints = if self.config.use_constraints {
            self.constraints.clone()
        } else {
            ConstraintSet::new()
        };
        let compensatory = CompensatoryModel::build(dataset, &constraints, self.config.params);
        let domains = Domains::compute(dataset);
        let fd_confidence = fd_confidence_matrix(dataset);
        BCleanModel {
            config: self.config.clone(),
            constraints,
            network,
            compensatory,
            domains,
            fd_confidence,
            fit_duration: start.elapsed(),
        }
    }
}

/// Softened-FD confidence matrix: entry `(k, j)` is how reliably attribute `k`
/// determines attribute `j` (average majority share within `k`-value groups of
/// size ≥ 2). Used to pick anchor contexts during inference.
fn fd_confidence_matrix(dataset: &Dataset) -> Vec<Vec<f64>> {
    use std::collections::HashMap;
    let m = dataset.num_columns();
    let mut matrix = vec![vec![0.0; m]; m];
    for k in 0..m {
        // Group rows by the value of attribute k.
        let mut groups: HashMap<&Value, Vec<usize>> = HashMap::new();
        for (r, row) in dataset.rows().enumerate() {
            if !row[k].is_null() {
                groups.entry(&row[k]).or_default().push(r);
            }
        }
        for j in 0..m {
            if j == k {
                matrix[k][j] = 1.0;
                continue;
            }
            let mut consistent = 0usize;
            let mut total = 0usize;
            for rows in groups.values() {
                if rows.len() < 2 {
                    continue;
                }
                let mut counts: HashMap<&Value, usize> = HashMap::new();
                for &r in rows {
                    let v = dataset.cell(r, j).expect("cell in range");
                    if !v.is_null() {
                        *counts.entry(v).or_insert(0) += 1;
                    }
                }
                let group_total: usize = counts.values().sum();
                consistent += counts.values().copied().max().unwrap_or(0);
                total += group_total;
            }
            matrix[k][j] = if total == 0 { 0.0 } else { consistent as f64 / total as f64 };
        }
    }
    matrix
}

/// A fitted BClean model, ready to clean datasets that share the training
/// dataset's schema.
#[derive(Debug, Clone)]
pub struct BCleanModel {
    config: BCleanConfig,
    constraints: ConstraintSet,
    network: BayesianNetwork,
    compensatory: CompensatoryModel,
    domains: Domains,
    fd_confidence: Vec<Vec<f64>>,
    fit_duration: std::time::Duration,
}

impl BCleanModel {
    /// The learned Bayesian network.
    pub fn network(&self) -> &BayesianNetwork {
        &self.network
    }

    /// The compensatory model.
    pub fn compensatory(&self) -> &CompensatoryModel {
        &self.compensatory
    }

    /// The configuration used to fit the model.
    pub fn config(&self) -> &BCleanConfig {
        &self.config
    }

    /// Per-attribute observed domains.
    pub fn domains(&self) -> &Domains {
        &self.domains
    }

    /// Apply user edits to the network (paper §4's interaction step) and
    /// relearn the CPTs affected by the edits.
    pub fn edit_network(
        &mut self,
        dataset: &Dataset,
        edits: impl IntoIterator<Item = NetworkEdit>,
    ) -> Result<(), bclean_bayesnet::EditError> {
        let mut editor = NetworkEditor::new(dataset, &self.network, self.config.alpha);
        editor.apply_all(edits)?;
        self.network = editor.finish(&self.network);
        Ok(())
    }

    /// Score every candidate repair for one cell, returning `(candidate,
    /// score)` pairs sorted by decreasing score. The observed value is always
    /// included (it is the arg-max baseline of Algorithm 1).
    pub fn score_candidates(&self, dataset: &Dataset, row: usize, col: usize) -> Vec<(Value, f64)> {
        let row_values = dataset.row(row).expect("row index in range");
        let original = &row_values[col];
        let anchor = self.anchor_context(row_values, col);
        let candidates = self.candidates_for(dataset.schema(), row_values, col, original, anchor);
        let mut scored: Vec<(Value, f64)> = candidates
            .into_iter()
            .map(|c| {
                let s = self.score(row_values, col, &c);
                (c, s)
            })
            .collect();
        let original_score = self.score(row_values, col, original);
        if !scored.iter().any(|(c, _)| c == original) {
            scored.push((original.clone(), original_score));
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
    }

    /// Clean a dataset (inference stage, Algorithm 1). Row ranges are
    /// processed through the shared [`ParallelExecutor`], whose ordered merge
    /// makes the result identical for every thread count.
    pub fn clean(&self, dataset: &Dataset) -> CleaningResult {
        let start = Instant::now();
        let n = dataset.num_rows();
        let executor = ParallelExecutor::for_config(&self.config, n);
        let batches = executor.execute(n, |rows| self.clean_rows(dataset, rows.start, rows.end));
        let (repairs, mut stats) = merge_cleaning_batches(batches);
        debug_assert!(
            repairs.windows(2).all(|w| (w[0].at.row, w[0].at.col) < (w[1].at.row, w[1].at.col)),
            "ordered block merge must yield (row, col)-sorted repairs"
        );
        let mut cleaned = dataset.clone();
        for repair in &repairs {
            cleaned
                .set_cell(repair.at.row, repair.at.col, repair.to.clone())
                .expect("repair coordinates are valid");
        }
        stats.repairs = repairs.len();
        stats.duration = start.elapsed();
        stats.fit_duration = self.fit_duration;
        CleaningResult { cleaned, repairs, stats }
    }

    /// Clean a contiguous range of rows (one parallel work unit).
    fn clean_rows(&self, dataset: &Dataset, lo: usize, hi: usize) -> (Vec<Repair>, CleaningStats) {
        let mut repairs = Vec::new();
        let mut stats = CleaningStats::default();
        for row_idx in lo..hi {
            let row = dataset.row(row_idx).expect("row index in range");
            for col in 0..dataset.num_columns() {
                // Pre-detection / tuple pruning (§6.2): skip cells that already
                // co-occur strongly with the rest of their tuple.
                if self.config.tuple_pruning
                    && !row[col].is_null()
                    && self.compensatory.filter_score(row, col) >= self.config.tau_clean
                {
                    stats.cells_skipped += 1;
                    continue;
                }
                stats.cells_examined += 1;
                if let Some(repair) = self.infer_cell(dataset, row_idx, row, col, &mut stats) {
                    repairs.push(repair);
                }
            }
        }
        (repairs, stats)
    }

    /// Algorithm 1 for one cell: return a repair when some candidate beats the
    /// observed value.
    fn infer_cell(
        &self,
        dataset: &Dataset,
        row_idx: usize,
        row: &[Value],
        col: usize,
        stats: &mut CleaningStats,
    ) -> Option<Repair> {
        let original = &row[col];
        let anchor = self.anchor_context(row, col);
        // A value that violates its own user constraints is known to be wrong
        // (Eq. 1 restricts the arg-max to UC-satisfying values), so it cannot
        // defend its cell: the best constraint-satisfying candidate wins.
        let original_satisfies_uc = !self.config.use_constraints
            || (self
                .network
                .attribute_names()
                .get(col)
                .map_or(true, |name| self.constraints.check(name, original))
                && self.constraints.check_tuple_with(dataset.schema(), row, col, original));
        let original_score = if original_satisfies_uc {
            self.score(row, col, original)
        } else {
            f64::NEG_INFINITY
        };
        let mut best_value: Option<Value> = None;
        let mut best_score = original_score;

        let base_margin = if anchor.is_some() { self.config.repair_margin } else { self.config.no_anchor_margin };
        for candidate in self.candidates_for(dataset.schema(), row, col, original, anchor) {
            if &candidate == original {
                continue;
            }
            stats.candidates_evaluated += 1;
            let score = self.score(row, col, &candidate);
            let margin = if best_value.is_none() && original_score.is_finite() {
                base_margin
            } else {
                0.0
            };
            if score > best_score + margin {
                best_score = score;
                best_value = Some(candidate);
            }
        }

        best_value.map(|to| Repair {
            at: CellRef::new(row_idx, col),
            attribute: dataset
                .schema()
                .attribute(col)
                .map(|a| a.name.clone())
                .unwrap_or_default(),
            from: original.clone(),
            to,
            score_gain: if original_score.is_finite() { best_score - original_score } else { f64::INFINITY },
        })
    }

    /// The cell's *anchor context*: the most selective other attribute of the
    /// tuple that (a) reliably determines the cell's attribute (softened-FD
    /// confidence above the configured threshold) and (b) whose value in this
    /// tuple is shared by at least one more tuple. Repairs must be
    /// corroborated by a tuple sharing this value when such an anchor exists.
    fn anchor_context(&self, row: &[Value], col: usize) -> Option<usize> {
        if !self.config.anchored_candidates {
            return None;
        }
        let mut best: Option<(usize, usize)> = None;
        for k in 0..row.len() {
            if k == col || row[k].is_null() {
                continue;
            }
            if self.fd_confidence[k][col] < self.config.anchor_min_confidence {
                continue;
            }
            let count = self.compensatory.value_count(k, &row[k]);
            if count < 2 {
                continue;
            }
            if best.map_or(true, |(_, c)| count < c) {
                best = Some((k, count));
            }
        }
        best.map(|(k, _)| k)
    }

    /// Candidate generation: domain values, filtered by user constraints
    /// (Eq. 1's `UC(c) = 1`, both per-attribute and tuple-level rules), by the
    /// anchor-corroboration requirement, and optionally by domain pruning (§6.2).
    fn candidates_for(
        &self,
        schema: &bclean_data::Schema,
        row: &[Value],
        col: usize,
        original: &Value,
        anchor: Option<usize>,
    ) -> Vec<Value> {
        let domain = self.domains.attribute(col);
        let schema_check = |v: &Value| {
            !self.config.use_constraints
                || (self
                    .network
                    .attribute_names()
                    .get(col)
                    .map_or(true, |name| self.constraints.check(name, v))
                    && self.constraints.check_tuple_with(schema, row, col, v))
        };
        let anchored = |v: &Value| match anchor {
            Some(k) => self.compensatory.pair_count(col, v, k, &row[k]) >= 1,
            None => true,
        };
        let mut candidates: Vec<Value> = domain
            .values()
            .iter()
            .filter(|v| schema_check(v) && anchored(v))
            .cloned()
            .collect();

        if self.config.domain_pruning && candidates.len() > self.config.domain_top_k {
            // Treat the cell's sub-network as the semantic context and keep the
            // TF-IDF top-k candidates.
            let mut context = self.network.dag().joint_set(col);
            if context.len() <= 1 {
                context = (0..row.len()).collect();
            }
            let mut scored: Vec<(f64, Value)> = candidates
                .into_iter()
                .map(|c| (self.compensatory.tfidf_score(row, col, &c, &context), c))
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            candidates = scored.into_iter().take(self.config.domain_top_k).map(|(_, c)| c).collect();
        }

        if candidates.len() > self.config.max_candidates {
            // Deterministic cap for pathological domains: keep the most frequent values.
            candidates.sort_by_key(|c| std::cmp::Reverse(domain.count(c)));
            candidates.truncate(self.config.max_candidates);
        }

        if !original.is_null() && !candidates.iter().any(|c| c == original) {
            candidates.push(original.clone());
        }
        candidates
    }

    /// The Algorithm 1 score of one candidate:
    /// `log BN[A_j](c) + log CS[A_j](c)`.
    ///
    /// Nodes without parents are scored with a uniform prior (paper §6.1):
    /// only the likelihood of their children and the compensatory score
    /// discriminate between candidates, which prevents the raw value
    /// frequency from overwriting rare-but-correct values.
    fn score(&self, row: &[Value], col: usize, candidate: &Value) -> f64 {
        let has_parents = !self.network.dag().parents(col).is_empty();
        let bn_score = if self.config.partitioned_inference {
            if has_parents {
                self.network.blanket_log_score(row, col, candidate)
            } else {
                self.network.children_log_likelihood(row, col, candidate)
            }
        } else {
            // Whole-network scoring: every factor of the joint is evaluated.
            let joint = self.network.log_joint_with(row, col, candidate);
            if has_parents {
                joint
            } else {
                // Remove the node's own prior factor (uniform-prior treatment).
                joint - self.network.cpt(col).marginal_prob(candidate).max(1e-300).ln()
            }
        };
        let comp_score = if self.config.use_compensatory {
            self.compensatory.log_score(row, col, candidate)
        } else {
            0.0
        };
        bn_score + comp_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::constraints::{ConstraintSet, UserConstraint};
    use bclean_data::dataset_from;

    /// A Customer-like dataset with a Zip->State dependency, one typo, one
    /// missing value and one inconsistency.
    fn dirty_dataset() -> Dataset {
        dataset_from(
            &["City", "State", "ZipCode"],
            &[
                vec!["sylacauga", "CA", "35150"],
                vec!["sylacauga", "CA", "35150"],
                vec!["sylacauga", "KT", "35150"],  // inconsistency: should be CA
                vec!["sylacaugq", "CA", "35150"],  // typo in City
                vec!["centre", "KT", "35960"],
                vec!["centre", "KT", "35960"],
                vec!["centre", "", "35960"],       // missing State
                vec!["centre", "KT", "35960"],
                vec!["sylacauga", "CA", "35150"],
                vec!["sylacauga", "CA", "35150"],
            ],
        )
    }

    fn constraints() -> ConstraintSet {
        let mut ucs = ConstraintSet::new();
        ucs.add("ZipCode", UserConstraint::pattern("^[1-9][0-9]{4,4}$").unwrap());
        ucs.add("State", UserConstraint::MinLength(2));
        ucs.add("State", UserConstraint::MaxLength(2));
        ucs.add("State", UserConstraint::NotNull);
        ucs.add("City", UserConstraint::NotNull);
        ucs
    }

    fn clean_with(variant: Variant) -> CleaningResult {
        let data = dirty_dataset();
        let cleaner = BClean::new(variant.config()).with_constraints(constraints());
        let model = cleaner.fit(&data);
        model.clean(&data)
    }

    #[test]
    fn repairs_inconsistent_state() {
        let result = clean_with(Variant::Basic);
        assert_eq!(result.cleaned.cell(2, 1).unwrap(), &Value::text("CA"), "repairs: {:?}", result.repairs);
    }

    #[test]
    fn repairs_missing_state() {
        let result = clean_with(Variant::Basic);
        assert_eq!(result.cleaned.cell(6, 1).unwrap(), &Value::text("KT"));
        // The repair is recorded with its provenance.
        let r = result.repairs.iter().find(|r| r.at == CellRef::new(6, 1)).unwrap();
        assert_eq!(r.attribute, "State");
        assert_eq!(r.from, Value::Null);
        assert!(r.score_gain > 0.0);
    }

    #[test]
    fn repairs_city_typo() {
        let result = clean_with(Variant::Basic);
        assert_eq!(result.cleaned.cell(3, 0).unwrap(), &Value::text("sylacauga"));
    }

    #[test]
    fn does_not_break_clean_cells() {
        let result = clean_with(Variant::Basic);
        // Every repair must touch one of the three known-dirty cells.
        for r in &result.repairs {
            assert!(
                [(2usize, 1usize), (3, 0), (6, 1)].contains(&(r.at.row, r.at.col)),
                "unexpected repair {r:?}"
            );
        }
    }

    #[test]
    fn partitioned_variant_matches_basic_on_small_data() {
        let basic = clean_with(Variant::Basic);
        let pi = clean_with(Variant::PartitionedInference);
        assert_eq!(basic.cleaned, pi.cleaned);
    }

    #[test]
    fn pruning_variant_still_fixes_errors() {
        let pip = clean_with(Variant::PartitionedInferencePruning);
        assert_eq!(pip.cleaned.cell(2, 1).unwrap(), &Value::text("CA"));
        assert_eq!(pip.cleaned.cell(6, 1).unwrap(), &Value::text("KT"));
        // Pruning must actually skip some cells.
        assert!(pip.stats.cells_skipped > 0);
        assert!(pip.stats.cells_examined < 30);
    }

    #[test]
    fn no_uc_variant_runs_without_constraints() {
        let result = clean_with(Variant::NoUserConstraints);
        // It still fixes the State inconsistency (driven by the BN + compensatory score).
        assert_eq!(result.cleaned.cell(2, 1).unwrap(), &Value::text("CA"));
    }

    #[test]
    fn stats_are_populated() {
        let result = clean_with(Variant::Basic);
        assert!(result.stats.cells_examined > 0);
        assert!(result.stats.candidates_evaluated > 0);
        assert_eq!(result.stats.repairs, result.repairs.len());
        assert!(result.stats.duration.as_nanos() > 0);
    }

    #[test]
    fn score_candidates_ranks_truth_first() {
        let data = dirty_dataset();
        let model = BClean::new(Variant::Basic.config()).with_constraints(constraints()).fit(&data);
        let ranked = model.score_candidates(&data, 2, 1);
        assert_eq!(ranked[0].0, Value::text("CA"));
        assert!(ranked.len() >= 2);
        assert!(ranked[0].1 >= ranked[ranked.len() - 1].1);
    }

    #[test]
    fn constraints_filter_candidates() {
        // A candidate violating the UC pattern must never be proposed.
        let data = dataset_from(
            &["Zip", "State"],
            &[
                vec!["35150", "CA"],
                vec!["35150", "CA"],
                vec!["3515", "CA"], // bad zip, satisfies nothing
                vec!["35960", "KT"],
                vec!["35960", "KT"],
            ],
        );
        let mut ucs = ConstraintSet::new();
        ucs.add("Zip", UserConstraint::pattern("^[1-9][0-9]{4,4}$").unwrap());
        let model = BClean::new(Variant::Basic.config()).with_constraints(ucs).fit(&data);
        let result = model.clean(&data);
        // The bad zip is repaired to a value satisfying the pattern.
        let repaired = result.cleaned.cell(2, 0).unwrap();
        assert_eq!(repaired, &Value::parse("35150"));
    }

    #[test]
    fn edit_network_changes_structure() {
        let data = dirty_dataset();
        let mut model = BClean::new(Variant::Basic.config()).with_constraints(constraints()).fit(&data);
        // Clear whatever was learned automatically, then impose ZipCode -> City.
        let removals: Vec<NetworkEdit> = model
            .network()
            .dag()
            .edges()
            .into_iter()
            .map(|(from, to)| NetworkEdit::RemoveEdge { from, to })
            .collect();
        model.edit_network(&data, removals).unwrap();
        model
            .edit_network(&data, vec![NetworkEdit::AddEdge { from: 2, to: 0 }])
            .unwrap();
        assert_eq!(model.network().dag().num_edges(), 1);
        assert!(model.network().dag().has_edge(2, 0));
        // Cleaning still works after the edit.
        let result = model.clean(&data);
        assert_eq!(result.cleaned.cell(2, 1).unwrap(), &Value::text("CA"));
    }

    #[test]
    fn parallel_and_serial_results_agree() {
        // Build a dataset large enough to trigger the parallel path.
        let mut rows = Vec::new();
        for i in 0..200usize {
            let (city, state, zip) = if i % 2 == 0 {
                ("sylacauga", "CA", "35150")
            } else {
                ("centre", "KT", "35960")
            };
            // Inject an inconsistency every 20 rows.
            if i % 20 == 5 {
                rows.push(vec![city.to_string(), "XX".to_string(), zip.to_string()]);
            } else {
                rows.push(vec![city.to_string(), state.to_string(), zip.to_string()]);
            }
        }
        let refs: Vec<Vec<&str>> = rows.iter().map(|r| r.iter().map(|s| s.as_str()).collect()).collect();
        let data = dataset_from(&["City", "State", "ZipCode"], &refs);
        let serial_model = BClean::new(Variant::PartitionedInference.config().with_threads(1))
            .with_constraints(constraints())
            .fit(&data);
        let parallel_model = BClean::new(Variant::PartitionedInference.config().with_threads(4))
            .with_constraints(constraints())
            .fit(&data);
        let serial = serial_model.clean(&data);
        let parallel = parallel_model.clean(&data);
        assert_eq!(serial.cleaned, parallel.cleaned);
        assert_eq!(serial.repairs.len(), parallel.repairs.len());
        assert!(serial.repairs.len() >= 10);
    }

    #[test]
    fn accessors() {
        let data = dirty_dataset();
        let cleaner = BClean::new(Variant::Basic.config()).with_constraints(constraints());
        assert_eq!(cleaner.constraints().len(), 5);
        assert!(cleaner.config().use_constraints);
        let model = cleaner.fit(&data);
        assert_eq!(model.network().num_nodes(), 3);
        assert_eq!(model.domains().len(), 3);
        assert!(model.compensatory().num_rows() == 10);
        assert!(model.config().use_compensatory);
    }
}
