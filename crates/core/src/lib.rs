//! # bclean-core
//!
//! The BClean Bayesian data cleaning algorithm (Qin et al., ICDE 2024):
//! user constraints, the compensatory scoring model, MAP inference over a
//! learned Bayesian network (Algorithm 1), and the §6 efficiency
//! optimisations (partitioned inference, tuple pruning, domain pruning).
//!
//! The typical flow is:
//!
//! ```
//! use bclean_core::{BClean, BCleanConfig, ConstraintSet, UserConstraint, Variant};
//! use bclean_data::dataset_from;
//!
//! // A dirty table: row 2 has an inconsistent State for its ZipCode.
//! let dirty = dataset_from(
//!     &["City", "State", "ZipCode"],
//!     &[
//!         vec!["sylacauga", "CA", "35150"],
//!         vec!["sylacauga", "CA", "35150"],
//!         vec!["sylacauga", "KT", "35150"],
//!         vec!["sylacauga", "CA", "35150"],
//!         vec!["sylacauga", "CA", "35150"],
//!         vec!["centre", "KT", "35960"],
//!         vec!["centre", "KT", "35960"],
//!         vec!["centre", "KT", "35960"],
//!     ],
//! );
//!
//! // Lightweight user constraints (Table 3 style).
//! let mut ucs = ConstraintSet::new();
//! ucs.add("ZipCode", UserConstraint::pattern("^[1-9][0-9]{4,4}$").unwrap());
//! ucs.add("State", UserConstraint::MaxLength(2));
//!
//! let model = BClean::new(Variant::PartitionedInference.config())
//!     .with_constraints(ucs)
//!     .fit(&dirty);
//! let result = model.clean(&dirty);
//! assert_eq!(result.cleaned.cell(2, 1).unwrap().to_string(), "CA");
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod cleaner;
pub mod compensatory;
pub mod config;
pub mod constraints;
pub mod exec;
pub mod persist;
pub mod reference;
pub mod report;
pub mod session;
pub mod shard;
pub mod stream;

pub use artifact::{CompileCache, ModelArtifact};
pub use cleaner::{BClean, BCleanModel};
pub use compensatory::{CompensatoryModel, CompensatoryParams};
pub use config::{BCleanConfig, Variant};
pub use constraints::{AttributeConstraints, ConstraintKind, ConstraintSet, UserConstraint};
pub use exec::ParallelExecutor;
pub use report::{repairs_to_csv, CleaningResult, CleaningStats, Repair};
pub use session::{CleaningSession, SessionStats};
pub use stream::{
    clean_stream, clean_stream_with_model, schema_from_meta, StreamError, StreamOptions, StreamOutcome,
};

// Re-export the pieces of the substrate crates that appear in this crate's
// public API, so downstream users need only one import path.
pub use bclean_bayesnet::{NetworkEdit, StructureConfig};
pub use bclean_sketch::{BudgetParams, FitBudget};
pub use bclean_store::{SchemaMeta, SourceFingerprint, StoreError, FORMAT_VERSION};
