//! Streaming batch-cleaning sessions.
//!
//! [`CleaningSession`] turns the one-shot fit/clean pipeline into a
//! long-lived consumer of row batches:
//!
//! 1. [`CleaningSession::ingest`] appends the batch to the session's
//!    dictionary encoding (values never seen before get fresh tail codes —
//!    see `bclean_data::encoded`'s appending docs), absorbs the batch into
//!    the [`ModelArtifact`]'s sufficient statistics, refits on the
//!    configured cadence and cleans the batch against the current model,
//!    returning repairs with session-global row indices.
//! 2. [`CleaningSession::refit`] relearns the structure over everything
//!    absorbed so far (through delta-updatable similarity and contingency
//!    caches), recounts only the nodes whose parent sets changed, and
//!    recompiles only the tables whose inputs changed.
//! 3. [`CleaningSession::finalize`] forces a refit and recleans the whole
//!    accumulated dataset against the final model — the authoritative
//!    output.
//!
//! # Equivalence to one-shot cleaning
//!
//! A session that refits after every batch ends up — by construction, and
//! guarded by `tests/stream_equivalence.rs` — with **bit-identical** model
//! state (structure, CPTs, domains, compensatory counters) to a one-shot
//! [`BClean::fit`] on the concatenation of its batches, and
//! [`CleaningSession::finalize`] then reproduces the one-shot
//! [`BCleanModel::clean`] repairs byte for byte, for every variant and
//! thread count. The per-ingest repair streams are *provisional*: each
//! batch is cleaned against the model as of that ingest, so early batches
//! may be judged with less evidence than the final model has.

use std::time::Instant;

use bclean_bayesnet::{learn_structure_budgeted, learn_structure_encoded_cached, StructureCaches};
use bclean_data::{AttrType, Dataset, EncodedDataset, Schema};

use crate::artifact::{CompileCache, ModelArtifact};
use crate::cleaner::{BClean, BCleanModel};
use crate::report::{CleaningResult, Repair};

/// Wall-clock accounting of a session's lifetime, split by phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Batches ingested.
    pub batches: usize,
    /// Rows ingested.
    pub rows: usize,
    /// Refits performed (structure relearn + recompile).
    pub refits: usize,
    /// Seconds spent absorbing batch statistics (dictionary appends included).
    pub absorb_seconds: f64,
    /// Seconds spent refitting (structure + recounts + recompiles).
    pub refit_seconds: f64,
    /// Seconds spent cleaning ingested batches.
    pub clean_seconds: f64,
}

/// A streaming cleaning session over a fixed schema (see the module docs).
#[derive(Debug)]
pub struct CleaningSession {
    cleaner: BClean,
    schema: Schema,
    types: Vec<AttrType>,
    accumulated: Dataset,
    encoded: EncodedDataset,
    artifact: Option<ModelArtifact>,
    model: Option<BCleanModel>,
    structure_caches: StructureCaches,
    compile_cache: CompileCache,
    refit_every: usize,
    batches_since_refit: usize,
    stats: SessionStats,
}

impl CleaningSession {
    /// Open a session for `schema` with the given cleaner (configuration +
    /// constraints). The default cadence refits after every batch — the
    /// setting under which the session is exactly equivalent to one-shot
    /// cleaning; raise it with [`CleaningSession::with_refit_every`] to
    /// trade model freshness for ingest throughput.
    pub fn new(cleaner: BClean, schema: Schema) -> CleaningSession {
        let types: Vec<AttrType> =
            (0..schema.arity()).map(|c| schema.attribute(c).expect("column in range").ty).collect();
        let accumulated = Dataset::new(schema.clone());
        let encoded = EncodedDataset::from_dataset(&accumulated);
        CleaningSession {
            cleaner,
            schema,
            types,
            accumulated,
            encoded,
            artifact: None,
            model: None,
            structure_caches: StructureCaches::default(),
            compile_cache: CompileCache::default(),
            refit_every: 1,
            batches_since_refit: 0,
            stats: SessionStats::default(),
        }
    }

    /// Set the refit cadence: the session refits after every `batches`-th
    /// absorbed batch (clamped to at least 1).
    pub fn with_refit_every(mut self, batches: usize) -> CleaningSession {
        self.refit_every = batches.max(1);
        self
    }

    /// The session's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows ingested so far.
    pub fn num_rows(&self) -> usize {
        self.accumulated.num_rows()
    }

    /// The current compiled model, once any data has been ingested.
    pub fn model(&self) -> Option<&BCleanModel> {
        self.model.as_ref()
    }

    /// The current model artifact (sufficient statistics), once any data
    /// has been ingested.
    pub fn artifact(&self) -> Option<&ModelArtifact> {
        self.artifact.as_ref()
    }

    /// Phase-split wall-clock accounting.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Ingest one batch: append + absorb it, refit if the cadence says so,
    /// then clean the batch against the current model. Returned repairs
    /// carry session-global row indices. See the module docs for how these
    /// provisional repairs relate to [`CleaningSession::finalize`].
    pub fn ingest(&mut self, batch: &Dataset) -> Vec<Repair> {
        assert_eq!(
            batch.schema().names(),
            self.schema.names(),
            "ingested batch must share the session schema"
        );
        self.stats.batches += 1;
        if batch.num_rows() == 0 {
            return Vec::new();
        }
        self.stats.rows += batch.num_rows();

        let absorb_start = Instant::now();
        let report = self.encoded.append_batch(batch);
        for row in batch.rows() {
            self.accumulated.push_row(row.to_vec()).expect("batch row arity matches the schema");
        }
        match &mut self.artifact {
            None => {
                // First data: a full fit over the (freshly sorted) encoding,
                // warming the structure caches along the way.
                self.stats.absorb_seconds += absorb_start.elapsed().as_secs_f64();
                let refit_start = Instant::now();
                let structure = self.learn_structure();
                let artifact =
                    self.cleaner.artifact_from_encoded(&self.accumulated, &self.encoded, structure.dag);
                self.model = Some(artifact.compile_cached(&mut self.compile_cache, None));
                self.artifact = Some(artifact);
                self.batches_since_refit = 0;
                self.stats.refits += 1;
                self.stats.refit_seconds += refit_start.elapsed().as_secs_f64();
            }
            Some(artifact) => {
                artifact.absorb(batch, &self.encoded, report.rows.clone());
                self.stats.absorb_seconds += absorb_start.elapsed().as_secs_f64();
                self.batches_since_refit += 1;
                if self.batches_since_refit >= self.refit_every {
                    self.refit();
                }
            }
        }

        let clean_start = Instant::now();
        let model = self.model.as_ref().expect("ingesting rows always leaves a model behind");
        let mut repairs = model.clean(batch).repairs;
        for repair in &mut repairs {
            repair.at.row += report.rows.start;
        }
        self.stats.clean_seconds += clean_start.elapsed().as_secs_f64();
        repairs
    }

    /// Refit now, regardless of cadence: relearn the structure over all
    /// absorbed rows (warm caches), recount only parent-changed nodes and
    /// recompile only changed tables. A refit with no new data since the
    /// last one is a cheap no-op that leaves the model unchanged.
    pub fn refit(&mut self) {
        if self.artifact.is_none() {
            return;
        }
        let start = Instant::now();
        let structure = self.learn_structure();
        let artifact = self.artifact.as_mut().expect("checked above");
        artifact.set_structure(structure.dag, &self.encoded);
        self.model = Some(artifact.compile_cached(&mut self.compile_cache, self.model.as_ref()));
        self.batches_since_refit = 0;
        self.stats.refits += 1;
        self.stats.refit_seconds += start.elapsed().as_secs_f64();
    }

    /// Structure learning over everything absorbed so far, honouring the
    /// configured fit budget: exact configs go through the delta-updatable
    /// similarity/contingency caches; budgeted configs re-learn from a fresh
    /// deterministic reservoir of the accumulated encoding each refit (the
    /// budgeted learner is already sub-linear, so cache reuse buys little).
    fn learn_structure(&mut self) -> bclean_bayesnet::LearnedStructure {
        let config = self.cleaner.config();
        match config.fit_budget.params() {
            Some(budget) => learn_structure_budgeted(&self.encoded, &self.types, config.structure, budget),
            None => learn_structure_encoded_cached(
                &self.encoded,
                &self.types,
                config.structure,
                &mut self.structure_caches,
            ),
        }
    }

    /// Force a final refit and reclean the entire accumulated dataset
    /// against the resulting model — the authoritative repair set. With a
    /// refit-after-every-batch cadence this is bit-identical to one-shot
    /// `fit` + `clean` on the concatenated batches.
    pub fn finalize(&mut self) -> CleaningResult {
        if self.batches_since_refit > 0 || self.model.is_none() {
            self.refit();
        }
        match &self.model {
            Some(model) => model.clean(&self.accumulated),
            None => CleaningResult {
                cleaned: self.accumulated.clone(),
                repairs: Vec::new(),
                stats: Default::default(),
            },
        }
    }

    /// Tear the session down, keeping the compiled model (if any data was
    /// ever ingested).
    pub fn into_model(self) -> Option<BCleanModel> {
        self.model
    }
}
