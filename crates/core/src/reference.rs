//! The pre-compilation `Value`-keyed fit and scoring paths, retained as
//! oracles.
//!
//! [`BClean::fit`] constructs every model in code space and
//! [`BCleanModel::clean`] runs Algorithm 1 over dictionary codes through the
//! compiled models ([`bclean_bayesnet::CompiledNetwork`] + the code-indexed
//! compensatory tables). This module keeps the original implementations —
//! construction that learns `HashMap<Value, _>` tallies and then compiles
//! them ([`BClean::fit_reference`]), and scoring that hashes `Value`s
//! through the uncompiled [`bclean_bayesnet::BayesianNetwork`]
//! ([`BCleanModel::clean_reference`]) — for two purposes:
//!
//! * **equivalence testing**: the encoded engine must produce the same
//!   models and byte-identical repairs (`tests/encoded_equivalence.rs` and
//!   `tests/fit_equivalence.rs` check every variant and thread count);
//! * **benchmarking**: the speedups of the code-space fit and clean paths
//!   are measured against these (`BENCH_fit.json`, `BENCH_clean.json`,
//!   `benches/encoded.rs`).
//!
//! Neither is part of the supported API; both carry the allocation and
//! hashing costs the code-space engine was built to retire.

use std::time::Instant;

use bclean_bayesnet::{learn_structure, BayesianNetwork, CompiledNetwork, Dag};
use bclean_data::{CellRef, Dataset, Domains, EncodedDataset, Value};

use crate::cleaner::{attr_uc_table, BClean, BCleanModel};
use crate::compensatory::CompensatoryModel;
use crate::constraints::ConstraintSet;
use crate::exec::{merge_cleaning_batches, ParallelExecutor};
use crate::report::{CleaningResult, CleaningStats, Repair};

impl BClean {
    /// Construction through the original `Value`-keyed path: structure
    /// learning groups `Value`s, CPTs are learned into `HashMap<Value, _>`
    /// tables and then compiled, the compensatory model builds serially and
    /// the FD-confidence matrix re-groups the rows. Produces the same fitted
    /// model as [`BClean::fit`], at pre-refactor speed. Kept as the
    /// equivalence oracle and performance baseline of the code-space fit
    /// pipeline.
    pub fn fit_reference(&self, dataset: &Dataset) -> BCleanModel {
        let start = Instant::now();
        let structure = learn_structure(dataset, self.config().structure);
        self.fit_reference_with_dag(dataset, structure.dag, start)
    }

    /// The pre-refactor construction stage (see [`BClean::fit_reference`]).
    fn fit_reference_with_dag(&self, dataset: &Dataset, dag: Dag, start: Instant) -> BCleanModel {
        let config = self.config().clone();
        let network = BayesianNetwork::learn(dataset, dag, config.alpha);
        let constraints =
            if config.use_constraints { self.constraints().clone() } else { ConstraintSet::new() };
        // Dictionary-encode once; the compiled models share the resulting
        // code space (see the code-order invariant in `bclean_data::encoded`).
        let encoded = EncodedDataset::from_dataset(dataset);
        let compiled = CompiledNetwork::compile(&network, encoded.dicts());
        let attr_uc_ok = attr_uc_table(
            &network,
            encoded.dicts(),
            &constraints,
            config.use_constraints,
            &ParallelExecutor::new(1),
        );
        let compensatory = std::sync::Arc::new(CompensatoryModel::build_encoded(
            dataset,
            &encoded,
            &constraints,
            config.params,
        ));
        let domains = Domains::compute(dataset);
        let fd_confidence = fd_confidence_matrix(dataset);
        BCleanModel {
            config,
            constraints,
            network,
            compiled,
            compensatory,
            domains,
            fd_confidence,
            attr_uc_ok,
            fit_duration: start.elapsed(),
        }
    }
}

/// Softened-FD confidence matrix over `Value` rows: entry `(k, j)` is how
/// reliably attribute `k` determines attribute `j` (average majority share
/// within `k`-value groups of size ≥ 2). The code-space fit derives the same
/// matrix from the compensatory model's co-occurrence counters
/// ([`CompensatoryModel::fd_confidence_matrix`]); this grouping
/// implementation is kept for the reference fit.
fn fd_confidence_matrix(dataset: &Dataset) -> Vec<Vec<f64>> {
    use std::collections::HashMap;
    let m = dataset.num_columns();
    let mut matrix = vec![vec![0.0; m]; m];
    for k in 0..m {
        // Group rows by the value of attribute k.
        let mut groups: HashMap<&Value, Vec<usize>> = HashMap::new();
        for (r, row) in dataset.rows().enumerate() {
            if !row[k].is_null() {
                groups.entry(&row[k]).or_default().push(r);
            }
        }
        for (j, slot) in matrix[k].iter_mut().enumerate() {
            if j == k {
                *slot = 1.0;
                continue;
            }
            let mut consistent = 0usize;
            let mut total = 0usize;
            for rows in groups.values() {
                if rows.len() < 2 {
                    continue;
                }
                let mut counts: HashMap<&Value, usize> = HashMap::new();
                for &r in rows {
                    let v = dataset.cell(r, j).expect("cell in range");
                    if !v.is_null() {
                        *counts.entry(v).or_insert(0) += 1;
                    }
                }
                let group_total: usize = counts.values().sum();
                consistent += counts.values().copied().max().unwrap_or(0);
                total += group_total;
            }
            *slot = if total == 0 { 0.0 } else { consistent as f64 / total as f64 };
        }
    }
    matrix
}

impl BCleanModel {
    /// Clean a dataset through the original `Value`-keyed scoring path.
    ///
    /// Produces exactly the repairs, statistics and cleaned dataset of
    /// [`BCleanModel::clean`], at pre-compilation speed. Kept as the
    /// equivalence oracle and performance baseline of the encoded engine.
    pub fn clean_reference(&self, dataset: &Dataset) -> CleaningResult {
        let start = Instant::now();
        let n = dataset.num_rows();
        let executor = ParallelExecutor::for_config(&self.config, n);
        let batches = executor.execute(n, |rows| self.clean_rows_value(dataset, rows.start, rows.end));
        let (repairs, mut stats) = merge_cleaning_batches(batches);
        let mut cleaned = dataset.clone();
        for repair in &repairs {
            cleaned
                .set_cell(repair.at.row, repair.at.col, repair.to.clone())
                .expect("repair coordinates are valid");
        }
        stats.repairs = repairs.len();
        stats.duration = start.elapsed();
        stats.fit_duration = self.fit_duration;
        CleaningResult { cleaned, repairs, stats }
    }

    /// Clean a contiguous range of rows (one parallel work unit).
    fn clean_rows_value(&self, dataset: &Dataset, lo: usize, hi: usize) -> (Vec<Repair>, CleaningStats) {
        let mut repairs = Vec::new();
        let mut stats = CleaningStats::default();
        for row_idx in lo..hi {
            let row = dataset.row(row_idx).expect("row index in range");
            for col in 0..dataset.num_columns() {
                if self.config.tuple_pruning
                    && !row[col].is_null()
                    && self.compensatory.filter_score(row, col) >= self.config.tau_clean
                {
                    stats.cells_skipped += 1;
                    continue;
                }
                stats.cells_examined += 1;
                if let Some(repair) = self.infer_cell_value(dataset, row_idx, row, col, &mut stats) {
                    repairs.push(repair);
                }
            }
        }
        (repairs, stats)
    }

    /// Algorithm 1 for one cell, over `Value`s.
    fn infer_cell_value(
        &self,
        dataset: &Dataset,
        row_idx: usize,
        row: &[Value],
        col: usize,
        stats: &mut CleaningStats,
    ) -> Option<Repair> {
        let original = &row[col];
        let anchor = self.anchor_context_value(row, col);
        let original_satisfies_uc = !self.config.use_constraints
            || (self
                .network
                .attribute_names()
                .get(col)
                .is_none_or(|name| self.constraints.check(name, original))
                && self.constraints.check_tuple_with(dataset.schema(), row, col, original));
        let original_score =
            if original_satisfies_uc { self.score_value(row, col, original) } else { f64::NEG_INFINITY };
        let mut best_value: Option<Value> = None;
        let mut best_score = original_score;

        let base_margin =
            if anchor.is_some() { self.config.repair_margin } else { self.config.no_anchor_margin };
        for candidate in self.candidates_for_value(dataset.schema(), row, col, original, anchor) {
            if &candidate == original {
                continue;
            }
            stats.candidates_evaluated += 1;
            let score = self.score_value(row, col, &candidate);
            let margin = if best_value.is_none() && original_score.is_finite() { base_margin } else { 0.0 };
            if score > best_score + margin {
                best_score = score;
                best_value = Some(candidate);
            }
        }

        best_value.map(|to| Repair {
            at: CellRef::new(row_idx, col),
            attribute: dataset.schema().attribute(col).map(|a| a.name.clone()).unwrap_or_default(),
            from: original.clone(),
            to,
            score_gain: if original_score.is_finite() { best_score - original_score } else { f64::INFINITY },
        })
    }

    /// The cell's anchor context (see the encoded twin for the definition).
    fn anchor_context_value(&self, row: &[Value], col: usize) -> Option<usize> {
        if !self.config.anchored_candidates {
            return None;
        }
        let mut best: Option<(usize, usize)> = None;
        for (k, value) in row.iter().enumerate() {
            if k == col || value.is_null() {
                continue;
            }
            if self.fd_confidence[k][col] < self.config.anchor_min_confidence {
                continue;
            }
            let count = self.compensatory.value_count(k, value);
            if count < 2 {
                continue;
            }
            if best.is_none_or(|(_, c)| count < c) {
                best = Some((k, count));
            }
        }
        best.map(|(k, _)| k)
    }

    /// Candidate generation over `Value`s (see the encoded twin).
    fn candidates_for_value(
        &self,
        schema: &bclean_data::Schema,
        row: &[Value],
        col: usize,
        original: &Value,
        anchor: Option<usize>,
    ) -> Vec<Value> {
        let domain = self.domains.attribute(col);
        let schema_check = |v: &Value| {
            !self.config.use_constraints
                || (self
                    .network
                    .attribute_names()
                    .get(col)
                    .is_none_or(|name| self.constraints.check(name, v))
                    && self.constraints.check_tuple_with(schema, row, col, v))
        };
        let anchored = |v: &Value| match anchor {
            Some(k) => self.compensatory.pair_count(col, v, k, &row[k]) >= 1,
            None => true,
        };
        let mut candidates: Vec<Value> =
            domain.values().iter().filter(|v| schema_check(v) && anchored(v)).cloned().collect();

        if self.config.domain_pruning && candidates.len() > self.config.domain_top_k {
            let mut context = self.network.dag().joint_set(col);
            if context.len() <= 1 {
                context = (0..row.len()).collect();
            }
            let mut scored: Vec<(f64, Value)> = candidates
                .into_iter()
                .map(|c| (self.compensatory.tfidf_score(row, col, &c, &context), c))
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            candidates = scored.into_iter().take(self.config.domain_top_k).map(|(_, c)| c).collect();
        }

        if candidates.len() > self.config.max_candidates {
            candidates.sort_by_key(|c| std::cmp::Reverse(domain.count(c)));
            candidates.truncate(self.config.max_candidates);
        }

        if !original.is_null() && !candidates.iter().any(|c| c == original) {
            candidates.push(original.clone());
        }
        candidates
    }

    /// The Algorithm 1 score of one candidate over `Value`s (see the encoded
    /// twin for the scoring rationale).
    fn score_value(&self, row: &[Value], col: usize, candidate: &Value) -> f64 {
        let has_parents = !self.network.dag().parents(col).is_empty();
        let bn_score = if self.config.partitioned_inference {
            if has_parents {
                self.network.blanket_log_score(row, col, candidate)
            } else {
                self.network.children_log_likelihood(row, col, candidate)
            }
        } else {
            let joint = self.network.log_joint_with(row, col, candidate);
            if has_parents {
                joint
            } else {
                joint - self.network.cpt(col).marginal_prob(candidate).max(1e-300).ln()
            }
        };
        let comp_score =
            if self.config.use_compensatory { self.compensatory.log_score(row, col, candidate) } else { 0.0 };
        bn_score + comp_score
    }
}

#[cfg(test)]
mod tests {
    use crate::cleaner::BClean;
    use crate::config::Variant;
    use crate::constraints::{ConstraintSet, UserConstraint};
    use bclean_data::dataset_from;

    /// The compiled engine and the reference path must agree repair-for-repair
    /// (the large-fixture equivalence lives in `tests/encoded_equivalence.rs`).
    #[test]
    fn reference_path_matches_compiled_engine() {
        let data = dataset_from(
            &["City", "State", "ZipCode"],
            &[
                vec!["sylacauga", "CA", "35150"],
                vec!["sylacauga", "CA", "35150"],
                vec!["sylacauga", "KT", "35150"],
                vec!["sylacaugq", "CA", "35150"],
                vec!["centre", "KT", "35960"],
                vec!["centre", "KT", "35960"],
                vec!["centre", "", "35960"],
                vec!["centre", "KT", "35960"],
            ],
        );
        let mut ucs = ConstraintSet::new();
        ucs.add("ZipCode", UserConstraint::pattern("^[1-9][0-9]{4,4}$").unwrap());
        ucs.add("State", UserConstraint::NotNull);
        for variant in Variant::all() {
            let model = BClean::new(variant.config()).with_constraints(ucs.clone()).fit(&data);
            let compiled = model.clean(&data);
            let reference = model.clean_reference(&data);
            assert_eq!(compiled.repairs, reference.repairs, "variant {variant:?}");
            assert_eq!(compiled.cleaned, reference.cleaned, "variant {variant:?}");
            assert_eq!(compiled.stats.cells_examined, reference.stats.cells_examined);
            assert_eq!(compiled.stats.candidates_evaluated, reference.stats.candidates_evaluated);
        }
    }
}
