//! Property-based tests for the constraint-expression language.
//!
//! The central oracle is the pretty-printer: `Display` emits fully
//! parenthesised source, so parsing it back must reproduce the exact AST.
//! Further properties check that compilation and evaluation never panic and
//! behave deterministically for arbitrary inputs.

use bclean_data::Value;
use bclean_rules::{parse, BinaryOp, Expr, Literal, Rule, UnaryOp};
use proptest::prelude::*;

/// Identifiers that cannot collide with keywords or literals.
fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("avoid keywords", |s| {
        !matches!(s.as_str(), "true" | "false" | "null" | "and" | "or" | "not")
    })
}

/// String literals restricted to characters whose Rust debug-escape form the
/// lexer understands verbatim.
fn string_literal_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 _.-]{0,8}".prop_map(|s| s)
}

fn literal_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0.0f64..1e6).prop_map(|n| Expr::Literal(Literal::Number((n * 100.0).round() / 100.0))),
        string_literal_strategy().prop_map(|s| Expr::Literal(Literal::Str(s))),
        any::<bool>().prop_map(|b| Expr::Literal(Literal::Bool(b))),
        Just(Expr::Literal(Literal::Null)),
    ]
}

fn binary_op_strategy() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Rem),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Less),
        Just(BinaryOp::LessEq),
        Just(BinaryOp::Greater),
        Just(BinaryOp::GreaterEq),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
    ]
}

/// Random well-formed expressions using only known functions with correct
/// arities (so `Rule::compile` must accept them).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal_strategy(), ident_strategy().prop_map(Expr::Ident)];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), prop_oneof![Just(UnaryOp::Not), Just(UnaryOp::Neg)])
                .prop_map(|(expr, op)| Expr::Unary { op, expr: Box::new(expr) }),
            (inner.clone(), inner.clone(), binary_op_strategy()).prop_map(|(lhs, rhs, op)| Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs)
            }),
            (
                prop_oneof![Just("len"), Just("num"), Just("abs"), Just("lower"), Just("is_null")],
                inner.clone()
            )
                .prop_map(|(name, arg)| Expr::Call { name: name.to_string(), args: vec![arg] }),
            (prop_oneof![Just("contains"), Just("starts_with"), Just("min")], inner.clone(), inner.clone())
                .prop_map(|(name, a, b)| Expr::Call { name: name.to_string(), args: vec![a, b] }),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| Expr::Call { name: "if".to_string(), args: vec![c, a, b] }),
        ]
    })
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-1e6f64..1e6).prop_map(Value::number),
        "[a-zA-Z0-9 ]{0,10}".prop_map(Value::text),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pretty-printer emits fully parenthesised source, so a
    /// print → parse round trip must reproduce the exact AST.
    #[test]
    fn display_parse_round_trip(expr in expr_strategy()) {
        let printed = expr.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(reparsed, expr);
    }

    /// Every generated expression compiles as a rule, and evaluating it
    /// against arbitrary cell values never panics and is deterministic.
    #[test]
    fn compile_and_eval_never_panic(expr in expr_strategy(), value in value_strategy()) {
        let rule = Rule::compile(&expr.to_string()).expect("generated expressions use valid functions");
        let first = rule.check_value(&value);
        let second = rule.check_value(&value);
        prop_assert_eq!(first, second);
        // Row evaluation against an empty resolver is also total.
        let row_result = rule.eval_with(&|_| None);
        prop_assert_eq!(row_result.is_truthy(), rule.eval_with(&|_| None).is_truthy());
    }

    /// Numeric comparison operators agree with the native f64 ordering.
    #[test]
    fn numeric_comparisons_match_f64(a in -1e5f64..1e5, b in -1e5f64..1e5) {
        // Format with enough precision to round-trip.
        let source_lt = format!("({a:.6}) < ({b:.6})");
        let source_ge = format!("({a:.6}) >= ({b:.6})");
        let a6: f64 = format!("{a:.6}").parse().unwrap();
        let b6: f64 = format!("{b:.6}").parse().unwrap();
        let lt = Rule::compile(&source_lt).unwrap().check_value(&Value::Null);
        let ge = Rule::compile(&source_ge).unwrap().check_value(&Value::Null);
        prop_assert_eq!(lt, a6 < b6);
        prop_assert_eq!(ge, a6 >= b6);
        prop_assert_ne!(lt, ge);
    }

    /// Arithmetic on literals matches native arithmetic (away from division
    /// by zero and the float-equality tolerance).
    #[test]
    fn arithmetic_matches_native(a in -1e4f64..1e4, b in 1.0f64..1e4) {
        let sum = format!("({a:.3}) + ({b:.3}) >= ({a:.3})");
        prop_assert!(Rule::compile(&sum).unwrap().check_value(&Value::Null));
        let ratio = format!("(({a:.3}) * ({b:.3})) / ({b:.3})");
        let rule = Rule::compile(&format!("abs({ratio} - ({a:.3})) < 0.001")).unwrap();
        prop_assert!(rule.check_value(&Value::Null));
    }

    /// De Morgan: `!(p && q)` ⇔ `!p || !q` for arbitrary truthy/falsy leaves.
    #[test]
    fn de_morgan_holds(p in any::<bool>(), q in any::<bool>(), value in value_strategy()) {
        let lhs = format!("!({p} && {q})");
        let rhs = format!("!{p} || !{q}");
        let l = Rule::compile(&lhs).unwrap().check_value(&value);
        let r = Rule::compile(&rhs).unwrap().check_value(&value);
        prop_assert_eq!(l, r);
    }

    /// `len(value)` equals the character count of the cell's textual rendering.
    #[test]
    fn len_matches_char_count(value in value_strategy()) {
        let rule = Rule::compile("len(value)").unwrap();
        let expected = value.as_text().chars().count() as f64;
        match rule.eval_value(&value) {
            bclean_rules::ExprValue::Number(n) => prop_assert!((n - expected).abs() < 1e-9),
            other => prop_assert!(false, "unexpected result {other:?}"),
        }
    }

    /// Single-value rules never claim to reference other attributes.
    #[test]
    fn referenced_attributes_are_consistent(expr in expr_strategy()) {
        let rule = Rule::compile(&expr.to_string()).unwrap();
        let refs = rule.referenced_attributes();
        prop_assert_eq!(refs.len(), expr.identifiers().len());
        let single = rule.is_single_value();
        let only_value = refs.iter().all(|r| r.eq_ignore_ascii_case("value"));
        prop_assert_eq!(single, only_value);
    }
}
