//! Abstract syntax tree of the constraint-expression language.

use std::fmt;

/// A literal value appearing in an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A numeric literal.
    Number(f64),
    /// A string literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+` (numeric addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Less,
    /// `<=`
    LessEq,
    /// `>`
    Greater,
    /// `>=`
    GreaterEq,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Eq => "==",
            BinaryOp::NotEq => "!=",
            BinaryOp::Less => "<",
            BinaryOp::LessEq => "<=",
            BinaryOp::Greater => ">",
            BinaryOp::GreaterEq => ">=",
            BinaryOp::And => "&&",
            BinaryOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation `!`.
    Not,
    /// Numeric negation `-`.
    Neg,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Literal),
    /// A reference to an attribute of the tuple being checked (or the
    /// pseudo-attribute `value` for single-cell rules).
    Ident(String),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A call to one of the built-in functions, e.g. `len(ZipCode)`.
    Call {
        /// Lower-cased function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Every identifier referenced by the expression, in first-appearance order.
    pub fn identifiers(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_identifiers(&mut out);
        out
    }

    fn collect_identifiers<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Ident(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Unary { expr, .. } => expr.collect_identifiers(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_identifiers(out);
                rhs.collect_identifiers(out);
            }
            Expr::Call { args, .. } => {
                for arg in args {
                    arg.collect_identifiers(out);
                }
            }
        }
    }

    /// Every string literal used as the pattern argument of `matches(...)`.
    /// These are pre-compiled once when the rule is compiled.
    pub fn regex_patterns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_patterns(&mut out);
        out
    }

    fn collect_patterns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal(_) | Expr::Ident(_) => {}
            Expr::Unary { expr, .. } => expr.collect_patterns(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_patterns(out);
                rhs.collect_patterns(out);
            }
            Expr::Call { name, args } => {
                if name == "matches" && args.len() == 2 {
                    if let Expr::Literal(Literal::Str(pattern)) = &args[1] {
                        if !out.contains(&pattern.as_str()) {
                            out.push(pattern);
                        }
                    }
                }
                for arg in args {
                    arg.collect_patterns(out);
                }
            }
        }
    }

    /// Number of nodes in the tree (used to bound rule complexity in tests).
    pub fn size(&self) -> usize {
        match self {
            Expr::Literal(_) | Expr::Ident(_) => 1,
            Expr::Unary { expr, .. } => 1 + expr.size(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.size() + rhs.size(),
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Literal::Number(n)) => write!(f, "{n}"),
            Expr::Literal(Literal::Str(s)) => write!(f, "{s:?}"),
            Expr::Literal(Literal::Bool(b)) => write!(f, "{b}"),
            Expr::Literal(Literal::Null) => write!(f, "null"),
            Expr::Ident(name) => write!(f, "{name}"),
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "!({expr})"),
            Expr::Unary { op: UnaryOp::Neg, expr } => write!(f, "-({expr})"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // len(ZipCode) == 5 && num(abv) <= 20
        Expr::Binary {
            op: BinaryOp::And,
            lhs: Box::new(Expr::Binary {
                op: BinaryOp::Eq,
                lhs: Box::new(Expr::Call { name: "len".into(), args: vec![Expr::Ident("ZipCode".into())] }),
                rhs: Box::new(Expr::Literal(Literal::Number(5.0))),
            }),
            rhs: Box::new(Expr::Binary {
                op: BinaryOp::LessEq,
                lhs: Box::new(Expr::Call { name: "num".into(), args: vec![Expr::Ident("abv".into())] }),
                rhs: Box::new(Expr::Literal(Literal::Number(20.0))),
            }),
        }
    }

    #[test]
    fn identifiers_are_collected_once() {
        let expr = Expr::Binary {
            op: BinaryOp::Or,
            lhs: Box::new(Expr::Ident("a".into())),
            rhs: Box::new(Expr::Binary {
                op: BinaryOp::Eq,
                lhs: Box::new(Expr::Ident("a".into())),
                rhs: Box::new(Expr::Ident("b".into())),
            }),
        };
        assert_eq!(expr.identifiers(), vec!["a", "b"]);
    }

    #[test]
    fn regex_patterns_are_collected() {
        let expr = Expr::Call {
            name: "matches".into(),
            args: vec![Expr::Ident("Zip".into()), Expr::Literal(Literal::Str("[0-9]{5}".into()))],
        };
        assert_eq!(expr.regex_patterns(), vec!["[0-9]{5}"]);
        assert!(sample().regex_patterns().is_empty());
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Expr::Ident("x".into()).size(), 1);
        assert_eq!(sample().size(), 9);
    }

    #[test]
    fn display_round_trips_structure() {
        let printed = sample().to_string();
        assert!(printed.contains("len(ZipCode)"));
        assert!(printed.contains("&&"));
        assert!(printed.contains("<="));
    }
}
