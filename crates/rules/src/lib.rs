//! # bclean-rules
//!
//! An expression language for BClean user constraints.
//!
//! The BClean paper defines a user constraint (UC) as *any* function with a
//! binary output over a cell, a tuple or a dataset (§2) and explicitly lists
//! arithmetic expressions and dependency rules as admissible forms beyond the
//! simple length / null / pattern constraints. This crate provides that
//! richer form: a small, safe expression language with
//!
//! * arithmetic (`+ - * / %`), comparisons and boolean connectives,
//! * string helpers (`len`, `lower`, `upper`, `trim`, `starts_with`,
//!   `ends_with`, `contains`),
//! * numeric helpers (`num`, `abs`, `floor`, `ceil`, `round`, `min`, `max`),
//! * null handling (`is_null`, `is_number`, the `null` literal),
//! * full-match regular expressions via `matches(x, "pattern")` (compiled
//!   once, using the `bclean-regex` engine), and
//! * a conditional `if(cond, a, b)`.
//!
//! Rules are compiled once into a [`Rule`] and then checked against either a
//! single cell (the pseudo-attribute `value`) or a whole tuple (identifiers
//! resolve to attribute names):
//!
//! ```
//! use bclean_rules::Rule;
//! use bclean_data::{dataset_from, Value};
//!
//! // A single-cell rule, attachable to one column:
//! let zip = Rule::compile("matches(value, '[1-9][0-9]{4}') && len(value) == 5").unwrap();
//! assert!(zip.check_value(&Value::parse("35150")));
//! assert!(!zip.check_value(&Value::text("3515x")));
//!
//! // A tuple-level rule relating two attributes:
//! let data = dataset_from(&["ounces", "abv"], &[vec!["12", "0.05"], vec!["0", "0.05"]]);
//! let positive = Rule::compile("num(ounces) > 0 && num(abv) >= 0 && num(abv) <= 1").unwrap();
//! assert!(positive.check_row(data.schema(), data.row(0).unwrap()));
//! assert!(!positive.check_row(data.schema(), data.row(1).unwrap()));
//! ```
//!
//! `bclean-core` integrates this crate as [`UserConstraint::expression`] for
//! per-attribute rules and as row rules inside its `ConstraintSet`, so that
//! expression constraints participate in candidate filtering and in the
//! tuple-confidence term of the compensatory score exactly like the built-in
//! constraint forms.
//!
//! [`UserConstraint::expression`]: https://docs.rs/bclean-core

#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod parser;
pub mod token;

pub use ast::{BinaryOp, Expr, Literal, UnaryOp};
pub use eval::{ExprValue, Rule, RuleError};
pub use parser::{parse, ParseError};
pub use token::{tokenize, LexError, Token, TokenKind};
