//! Evaluation of constraint expressions against cell values and tuples.

use std::collections::HashMap;
use std::fmt;

use bclean_data::{Schema, Value};
use bclean_regex::Regex;

use crate::ast::{BinaryOp, Expr, Literal, UnaryOp};
use crate::parser::{parse, ParseError};

/// The result of evaluating an expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprValue {
    /// A number.
    Number(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// Null / missing.
    Null,
}

impl ExprValue {
    /// Truthiness used by the boolean connectives and by rule checking:
    /// `false`, `0`, the empty string and `null` are falsy, everything else
    /// is truthy.
    pub fn is_truthy(&self) -> bool {
        match self {
            ExprValue::Bool(b) => *b,
            ExprValue::Number(n) => *n != 0.0,
            ExprValue::Str(s) => !s.is_empty(),
            ExprValue::Null => false,
        }
    }

    /// Numeric view, if one exists.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            ExprValue::Number(n) => Some(*n),
            ExprValue::Str(s) => s.trim().parse::<f64>().ok().filter(|n| n.is_finite()),
            ExprValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            ExprValue::Null => None,
        }
    }

    /// Textual view. Null renders as the empty string.
    pub fn as_text(&self) -> String {
        match self {
            ExprValue::Number(n) => bclean_data::format_number(*n),
            ExprValue::Str(s) => s.clone(),
            ExprValue::Bool(b) => b.to_string(),
            ExprValue::Null => String::new(),
        }
    }

    /// Convert a dataset cell value into an expression value.
    pub fn from_cell(value: &Value) -> ExprValue {
        match value {
            Value::Null => ExprValue::Null,
            Value::Number(n) => ExprValue::Number(*n),
            Value::Text(s) => ExprValue::Str(s.clone()),
        }
    }
}

/// An error produced while compiling or evaluating a rule.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleError {
    /// The source did not parse.
    Parse(ParseError),
    /// A `matches(...)` pattern did not compile.
    Regex {
        /// The offending pattern.
        pattern: String,
        /// The regex engine's message.
        message: String,
    },
    /// A call to an unknown function.
    UnknownFunction(String),
    /// A call with the wrong number of arguments.
    Arity {
        /// The function name.
        function: String,
        /// The expected argument count.
        expected: usize,
        /// The supplied argument count.
        actual: usize,
    },
    /// The second argument of `matches(...)` must be a string literal so the
    /// pattern can be pre-compiled.
    NonLiteralPattern,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Parse(err) => write!(f, "{err}"),
            RuleError::Regex { pattern, message } => write!(f, "invalid pattern {pattern:?}: {message}"),
            RuleError::UnknownFunction(name) => write!(f, "unknown function {name:?}"),
            RuleError::Arity { function, expected, actual } => {
                write!(f, "{function}() takes {expected} argument(s), got {actual}")
            }
            RuleError::NonLiteralPattern => {
                write!(f, "the pattern argument of matches() must be a string literal")
            }
        }
    }
}

impl std::error::Error for RuleError {}

impl From<ParseError> for RuleError {
    fn from(err: ParseError) -> RuleError {
        RuleError::Parse(err)
    }
}

/// Built-in function names and their arities, used for compile-time validation.
const FUNCTIONS: &[(&str, usize)] = &[
    ("len", 1),
    ("lower", 1),
    ("upper", 1),
    ("trim", 1),
    ("abs", 1),
    ("floor", 1),
    ("ceil", 1),
    ("round", 1),
    ("num", 1),
    ("is_null", 1),
    ("is_number", 1),
    ("starts_with", 2),
    ("ends_with", 2),
    ("contains", 2),
    ("matches", 2),
    ("min", 2),
    ("max", 2),
    ("if", 3),
];

/// A compiled, reusable rule: a parsed expression plus pre-compiled regexes.
///
/// Rules are evaluated against either a single cell value (the identifier
/// `value`) or a whole tuple (identifiers are attribute names, resolved
/// case-insensitively against the schema).
#[derive(Debug, Clone)]
pub struct Rule {
    source: String,
    expr: Expr,
    regexes: HashMap<String, Regex>,
}

impl Rule {
    /// Compile a rule from its source text.
    pub fn compile(source: &str) -> Result<Rule, RuleError> {
        let expr = parse(source)?;
        validate_calls(&expr)?;
        let mut regexes = HashMap::new();
        for pattern in expr.regex_patterns() {
            let regex = Regex::new(pattern)
                .map_err(|err| RuleError::Regex { pattern: pattern.to_string(), message: err.to_string() })?;
            regexes.insert(pattern.to_string(), regex);
        }
        Ok(Rule { source: source.to_string(), expr, regexes })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The attribute names referenced by the rule (including `value`, if used).
    pub fn referenced_attributes(&self) -> Vec<&str> {
        self.expr.identifiers()
    }

    /// True when the rule only references the pseudo-attribute `value` (and
    /// can therefore be attached to a single column).
    pub fn is_single_value(&self) -> bool {
        self.expr.identifiers().iter().all(|name| name.eq_ignore_ascii_case("value"))
    }

    /// Evaluate the rule against a single cell value bound to `value`.
    pub fn eval_value(&self, value: &Value) -> ExprValue {
        self.eval_with(&|name| {
            if name.eq_ignore_ascii_case("value") {
                Some(ExprValue::from_cell(value))
            } else {
                None
            }
        })
    }

    /// `UC(value)`: the rule holds for a single cell value.
    pub fn check_value(&self, value: &Value) -> bool {
        self.eval_value(value).is_truthy()
    }

    /// Evaluate the rule against a whole tuple. Identifiers resolve to the
    /// tuple's attribute values (case-insensitive); `value` is not bound.
    pub fn eval_row(&self, schema: &Schema, row: &[Value]) -> ExprValue {
        self.eval_with(&|name| {
            schema
                .names()
                .iter()
                .position(|attr| attr.eq_ignore_ascii_case(name))
                .and_then(|col| row.get(col))
                .map(ExprValue::from_cell)
        })
    }

    /// `UC(tuple)`: the rule holds for a whole tuple.
    pub fn check_row(&self, schema: &Schema, row: &[Value]) -> bool {
        self.eval_row(schema, row).is_truthy()
    }

    /// Evaluate with an arbitrary identifier resolver. Unresolved identifiers
    /// evaluate to [`ExprValue::Null`].
    pub fn eval_with(&self, resolver: &dyn Fn(&str) -> Option<ExprValue>) -> ExprValue {
        eval_expr(&self.expr, resolver, &self.regexes)
    }
}

fn validate_calls(expr: &Expr) -> Result<(), RuleError> {
    match expr {
        Expr::Literal(_) | Expr::Ident(_) => Ok(()),
        Expr::Unary { expr, .. } => validate_calls(expr),
        Expr::Binary { lhs, rhs, .. } => {
            validate_calls(lhs)?;
            validate_calls(rhs)
        }
        Expr::Call { name, args } => {
            let spec = FUNCTIONS.iter().find(|(n, _)| n == name);
            match spec {
                None => return Err(RuleError::UnknownFunction(name.clone())),
                Some((_, arity)) if *arity != args.len() => {
                    return Err(RuleError::Arity {
                        function: name.clone(),
                        expected: *arity,
                        actual: args.len(),
                    })
                }
                _ => {}
            }
            if name == "matches" && !matches!(args[1], Expr::Literal(Literal::Str(_))) {
                return Err(RuleError::NonLiteralPattern);
            }
            for arg in args {
                validate_calls(arg)?;
            }
            Ok(())
        }
    }
}

fn eval_expr(
    expr: &Expr,
    resolver: &dyn Fn(&str) -> Option<ExprValue>,
    regexes: &HashMap<String, Regex>,
) -> ExprValue {
    match expr {
        Expr::Literal(Literal::Number(n)) => ExprValue::Number(*n),
        Expr::Literal(Literal::Str(s)) => ExprValue::Str(s.clone()),
        Expr::Literal(Literal::Bool(b)) => ExprValue::Bool(*b),
        Expr::Literal(Literal::Null) => ExprValue::Null,
        Expr::Ident(name) => resolver(name).unwrap_or(ExprValue::Null),
        Expr::Unary { op: UnaryOp::Not, expr } => {
            ExprValue::Bool(!eval_expr(expr, resolver, regexes).is_truthy())
        }
        Expr::Unary { op: UnaryOp::Neg, expr } => match eval_expr(expr, resolver, regexes).as_number() {
            Some(n) => ExprValue::Number(-n),
            None => ExprValue::Null,
        },
        Expr::Binary { op, lhs, rhs } => {
            // Short-circuit the boolean connectives.
            match op {
                BinaryOp::And => {
                    let left = eval_expr(lhs, resolver, regexes);
                    if !left.is_truthy() {
                        return ExprValue::Bool(false);
                    }
                    return ExprValue::Bool(eval_expr(rhs, resolver, regexes).is_truthy());
                }
                BinaryOp::Or => {
                    let left = eval_expr(lhs, resolver, regexes);
                    if left.is_truthy() {
                        return ExprValue::Bool(true);
                    }
                    return ExprValue::Bool(eval_expr(rhs, resolver, regexes).is_truthy());
                }
                _ => {}
            }
            let left = eval_expr(lhs, resolver, regexes);
            let right = eval_expr(rhs, resolver, regexes);
            eval_binary(*op, &left, &right)
        }
        Expr::Call { name, args } => {
            let values: Vec<ExprValue> = args.iter().map(|arg| eval_expr(arg, resolver, regexes)).collect();
            eval_call(name, args, &values, regexes)
        }
    }
}

fn eval_binary(op: BinaryOp, left: &ExprValue, right: &ExprValue) -> ExprValue {
    match op {
        BinaryOp::Add => match (left.as_number(), right.as_number()) {
            (Some(a), Some(b)) => ExprValue::Number(a + b),
            _ => {
                if matches!(left, ExprValue::Null) || matches!(right, ExprValue::Null) {
                    ExprValue::Null
                } else {
                    ExprValue::Str(format!("{}{}", left.as_text(), right.as_text()))
                }
            }
        },
        BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => {
            match (left.as_number(), right.as_number()) {
                (Some(a), Some(b)) => {
                    let result = match op {
                        BinaryOp::Sub => a - b,
                        BinaryOp::Mul => a * b,
                        BinaryOp::Div => {
                            if b == 0.0 {
                                return ExprValue::Null;
                            }
                            a / b
                        }
                        BinaryOp::Rem => {
                            if b == 0.0 {
                                return ExprValue::Null;
                            }
                            a % b
                        }
                        _ => unreachable!(),
                    };
                    ExprValue::Number(result)
                }
                _ => ExprValue::Null,
            }
        }
        BinaryOp::Eq => ExprValue::Bool(values_equal(left, right)),
        BinaryOp::NotEq => ExprValue::Bool(!values_equal(left, right)),
        BinaryOp::Less | BinaryOp::LessEq | BinaryOp::Greater | BinaryOp::GreaterEq => {
            let ordering = compare(left, right);
            match ordering {
                None => ExprValue::Bool(false),
                Some(ord) => {
                    let holds = match op {
                        BinaryOp::Less => ord.is_lt(),
                        BinaryOp::LessEq => ord.is_le(),
                        BinaryOp::Greater => ord.is_gt(),
                        BinaryOp::GreaterEq => ord.is_ge(),
                        _ => unreachable!(),
                    };
                    ExprValue::Bool(holds)
                }
            }
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled by the caller"),
    }
}

fn values_equal(left: &ExprValue, right: &ExprValue) -> bool {
    match (left, right) {
        (ExprValue::Null, ExprValue::Null) => true,
        (ExprValue::Null, _) | (_, ExprValue::Null) => false,
        _ => match (left.as_number(), right.as_number()) {
            (Some(a), Some(b)) => (a - b).abs() <= f64::EPSILON * a.abs().max(b.abs()).max(1.0),
            _ => left.as_text() == right.as_text(),
        },
    }
}

fn compare(left: &ExprValue, right: &ExprValue) -> Option<std::cmp::Ordering> {
    if matches!(left, ExprValue::Null) || matches!(right, ExprValue::Null) {
        return None;
    }
    match (left.as_number(), right.as_number()) {
        (Some(a), Some(b)) => a.partial_cmp(&b),
        _ => Some(left.as_text().cmp(&right.as_text())),
    }
}

fn eval_call(name: &str, args: &[Expr], values: &[ExprValue], regexes: &HashMap<String, Regex>) -> ExprValue {
    match name {
        "len" => ExprValue::Number(values[0].as_text().chars().count() as f64),
        "lower" => ExprValue::Str(values[0].as_text().to_lowercase()),
        "upper" => ExprValue::Str(values[0].as_text().to_uppercase()),
        "trim" => ExprValue::Str(values[0].as_text().trim().to_string()),
        "abs" => values[0].as_number().map(|n| ExprValue::Number(n.abs())).unwrap_or(ExprValue::Null),
        "floor" => values[0].as_number().map(|n| ExprValue::Number(n.floor())).unwrap_or(ExprValue::Null),
        "ceil" => values[0].as_number().map(|n| ExprValue::Number(n.ceil())).unwrap_or(ExprValue::Null),
        "round" => values[0].as_number().map(|n| ExprValue::Number(n.round())).unwrap_or(ExprValue::Null),
        "num" => values[0].as_number().map(ExprValue::Number).unwrap_or(ExprValue::Null),
        "is_null" => ExprValue::Bool(matches!(values[0], ExprValue::Null)),
        "is_number" => ExprValue::Bool(values[0].as_number().is_some()),
        "starts_with" => ExprValue::Bool(values[0].as_text().starts_with(&values[1].as_text())),
        "ends_with" => ExprValue::Bool(values[0].as_text().ends_with(&values[1].as_text())),
        "contains" => ExprValue::Bool(values[0].as_text().contains(&values[1].as_text())),
        "matches" => {
            let pattern = match &args[1] {
                Expr::Literal(Literal::Str(p)) => p,
                _ => return ExprValue::Bool(false),
            };
            match regexes.get(pattern) {
                Some(regex) => ExprValue::Bool(regex.is_full_match(&values[0].as_text())),
                None => ExprValue::Bool(false),
            }
        }
        "min" => match (values[0].as_number(), values[1].as_number()) {
            (Some(a), Some(b)) => ExprValue::Number(a.min(b)),
            _ => ExprValue::Null,
        },
        "max" => match (values[0].as_number(), values[1].as_number()) {
            (Some(a), Some(b)) => ExprValue::Number(a.max(b)),
            _ => ExprValue::Null,
        },
        "if" => {
            if values[0].is_truthy() {
                values[1].clone()
            } else {
                values[2].clone()
            }
        }
        // Unknown functions are rejected at compile time.
        _ => ExprValue::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::dataset_from;

    fn check(source: &str, value: &Value) -> bool {
        Rule::compile(source).unwrap().check_value(value)
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert!(check("1 + 2 * 3 == 7", &Value::Null));
        assert!(check("(1 + 2) * 3 == 9", &Value::Null));
        assert!(check("10 / 4 == 2.5", &Value::Null));
        assert!(check("10 % 3 == 1", &Value::Null));
        assert!(check("2 - 5 == -3", &Value::Null));
        assert!(!check("1 > 2", &Value::Null));
        assert!(check("2 >= 2 && 2 <= 2 && 1 < 2 && 3 > 2", &Value::Null));
    }

    #[test]
    fn division_by_zero_is_null_and_falsy() {
        assert!(!check("1 / 0 > 0", &Value::Null));
        assert!(!check("5 % 0 > 0", &Value::Null));
        assert!(check("is_null(1 / 0)", &Value::Null));
        assert!(check("is_null(5 % 0)", &Value::Null));
    }

    #[test]
    fn value_identifier_binds_the_cell() {
        let v = Value::parse("35150");
        assert!(check("len(value) == 5", &v));
        assert!(check("num(value) >= 10000 && num(value) <= 99999", &v));
        assert!(check("value == 35150", &v));
        assert!(!check("value == 99999", &v));
    }

    #[test]
    fn string_functions() {
        let v = Value::text("Sylacauga");
        assert!(check("lower(value) == 'sylacauga'", &v));
        assert!(check("upper(value) == 'SYLACAUGA'", &v));
        assert!(check("starts_with(value, 'Syl')", &v));
        assert!(check("ends_with(value, 'gauga') == false", &v));
        assert!(check("contains(lower(value), 'caug')", &v));
        assert!(check("trim('  x  ') == 'x'", &Value::Null));
        assert!(check("len(value) == 9", &v));
    }

    #[test]
    fn numeric_functions() {
        assert!(check("abs(-3) == 3", &Value::Null));
        assert!(check("floor(2.7) == 2 && ceil(2.1) == 3 && round(2.5) == 3", &Value::Null));
        assert!(check("min(3, 5) == 3 && max(3, 5) == 5", &Value::Null));
        assert!(check("is_number(value)", &Value::number(12.0)));
        assert!(!check("is_number(value)", &Value::text("abc")));
    }

    #[test]
    fn null_handling() {
        assert!(check("is_null(value)", &Value::Null));
        assert!(!check("is_null(value)", &Value::text("x")));
        assert!(check("value == null", &Value::Null));
        assert!(!check("value == null", &Value::text("x")));
        // Comparisons against null are false; arithmetic with null is null.
        assert!(!check("value > 3", &Value::Null));
        assert!(check("is_null(value + 1)", &Value::Null));
    }

    #[test]
    fn regex_matching() {
        let rule = Rule::compile("matches(value, '[1-9][0-9]{4}')").unwrap();
        assert!(rule.check_value(&Value::parse("35150")));
        assert!(!rule.check_value(&Value::text("3515")));
        assert!(!rule.check_value(&Value::text("3515x")));
        // Null matches nothing but also violates nothing unless required.
        assert!(!rule.check_value(&Value::Null));
    }

    #[test]
    fn string_concatenation_with_plus() {
        assert!(check("'a' + 'b' == 'ab'", &Value::Null));
        assert!(check("value + '!' == 'hi!'", &Value::text("hi")));
    }

    #[test]
    fn if_function_selects_branch() {
        assert!(check("if(len(value) == 5, true, false)", &Value::parse("35150")));
        assert!(check("if(is_null(value), 1, 0) == 0", &Value::text("x")));
    }

    #[test]
    fn truthiness_rules() {
        assert!(check("1", &Value::Null));
        assert!(!check("0", &Value::Null));
        assert!(check("'non-empty'", &Value::Null));
        assert!(!check("''", &Value::Null));
        assert!(!check("null", &Value::Null));
        assert!(check("!null", &Value::Null));
    }

    #[test]
    fn short_circuit_evaluation() {
        // The right operand would be null-ish, but short-circuiting skips it.
        assert!(check("true || (1 / 0 == 1)", &Value::Null));
        assert!(!check("false && (1 / 0 == 1)", &Value::Null));
    }

    #[test]
    fn row_rules_resolve_attributes() {
        let data = dataset_from(
            &["ounces", "abv", "brewery"],
            &[vec!["12", "0.05", "pinhole"], vec!["12", "-1", "pinhole"]],
        );
        let rule = Rule::compile("num(abv) >= 0 && num(abv) <= 1 && num(ounces) > 0").unwrap();
        assert!(rule.check_row(data.schema(), data.row(0).unwrap()));
        assert!(!rule.check_row(data.schema(), data.row(1).unwrap()));
        assert_eq!(rule.referenced_attributes(), vec!["abv", "ounces"]);
        assert!(!rule.is_single_value());
    }

    #[test]
    fn attribute_resolution_is_case_insensitive() {
        let data = dataset_from(&["ZipCode"], &[vec!["35150"]]);
        let rule = Rule::compile("len(zipcode) == 5").unwrap();
        assert!(rule.check_row(data.schema(), data.row(0).unwrap()));
    }

    #[test]
    fn unresolved_identifiers_evaluate_to_null() {
        let data = dataset_from(&["a"], &[vec!["1"]]);
        let rule = Rule::compile("is_null(missing_column)").unwrap();
        assert!(rule.check_row(data.schema(), data.row(0).unwrap()));
    }

    #[test]
    fn single_value_detection() {
        assert!(Rule::compile("len(value) <= 5").unwrap().is_single_value());
        assert!(Rule::compile("1 == 1").unwrap().is_single_value());
        assert!(!Rule::compile("a == b").unwrap().is_single_value());
    }

    #[test]
    fn compile_time_validation() {
        assert!(matches!(Rule::compile("foo(1)"), Err(RuleError::UnknownFunction(_))));
        assert!(matches!(Rule::compile("len(1, 2)"), Err(RuleError::Arity { expected: 1, actual: 2, .. })));
        assert!(matches!(Rule::compile("matches(value, a)"), Err(RuleError::NonLiteralPattern)));
        assert!(matches!(Rule::compile("1 +"), Err(RuleError::Parse(_))));
        assert!(matches!(Rule::compile("matches(value, '[')"), Err(RuleError::Regex { .. })));
    }

    #[test]
    fn rule_exposes_source_and_expr() {
        let rule = Rule::compile("len(value) == 5").unwrap();
        assert_eq!(rule.source(), "len(value) == 5");
        assert_eq!(rule.expr().size(), 4);
    }

    #[test]
    fn numeric_equality_uses_tolerance() {
        assert!(check("0.1 + 0.2 == 0.3", &Value::Null));
        assert!(check("1e9 + 1 != 1e9", &Value::Null));
    }

    #[test]
    fn mixed_type_comparison_falls_back_to_text() {
        assert!(check("'abc' < 'abd'", &Value::Null));
        assert!(check("'10' == 10", &Value::Null));
        assert!(check("'b' > 'a'", &Value::Null));
    }
}
