//! Recursive-descent parser for the constraint-expression language.
//!
//! Grammar (highest precedence last):
//!
//! ```text
//! expr        := or_expr
//! or_expr     := and_expr ( "||" and_expr )*
//! and_expr    := cmp_expr ( "&&" cmp_expr )*
//! cmp_expr    := add_expr ( ("==" | "!=" | "<" | "<=" | ">" | ">=") add_expr )?
//! add_expr    := mul_expr ( ("+" | "-") mul_expr )*
//! mul_expr    := unary_expr ( ("*" | "/" | "%") unary_expr )*
//! unary_expr  := ("!" | "-")* primary
//! primary     := NUMBER | STRING | "true" | "false" | "null"
//!              | IDENT "(" args ")" | IDENT | "(" expr ")"
//! ```

use std::fmt;

use crate::ast::{BinaryOp, Expr, Literal, UnaryOp};
use crate::token::{tokenize, LexError, Token, TokenKind};

/// An error produced while parsing an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The lexer rejected the source.
    Lex(LexError),
    /// The parser found an unexpected token.
    Unexpected {
        /// Description of what was found.
        found: String,
        /// Description of what was expected.
        expected: String,
        /// Byte offset of the offending token (source length for end-of-input).
        offset: usize,
    },
    /// The source was empty.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(err) => write!(f, "{err}"),
            ParseError::Unexpected { found, expected, offset } => {
                write!(f, "parse error at offset {offset}: expected {expected}, found {found}")
            }
            ParseError::Empty => write!(f, "empty expression"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> ParseError {
        ParseError::Lex(err)
    }
}

/// Parse an expression source string into an AST.
pub fn parse(source: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(source)?;
    if tokens.is_empty() {
        return Err(ParseError::Empty);
    }
    let mut parser = Parser { tokens, pos: 0, source_len: source.len() };
    let expr = parser.or_expr()?;
    if let Some(token) = parser.peek() {
        return Err(ParseError::Unexpected {
            found: token.kind.to_string(),
            expected: "end of expression".to_string(),
            offset: token.offset,
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    source_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{kind}'")))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(token) => ParseError::Unexpected {
                found: token.kind.to_string(),
                expected: expected.to_string(),
                offset: token.offset,
            },
            None => ParseError::Unexpected {
                found: "end of expression".to_string(),
                expected: expected.to_string(),
                offset: self.source_len,
            },
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinaryOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary { op: BinaryOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::EqEq) => Some(BinaryOp::Eq),
            Some(TokenKind::NotEq) => Some(BinaryOp::NotEq),
            Some(TokenKind::Less) => Some(BinaryOp::Less),
            Some(TokenKind::LessEq) => Some(BinaryOp::LessEq),
            Some(TokenKind::Greater) => Some(BinaryOp::Greater),
            Some(TokenKind::GreaterEq) => Some(BinaryOp::GreaterEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                Some(TokenKind::Percent) => BinaryOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Bang) {
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(expr) });
        }
        if self.eat(&TokenKind::Minus) {
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(expr) });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let token = match self.advance() {
            Some(token) => token,
            None => return Err(self.unexpected("an expression")),
        };
        match token.kind {
            TokenKind::Number(n) => Ok(Expr::Literal(Literal::Number(n))),
            TokenKind::Str(s) => Ok(Expr::Literal(Literal::Str(s))),
            TokenKind::LeftParen => {
                let expr = self.or_expr()?;
                self.expect(TokenKind::RightParen)?;
                Ok(expr)
            }
            TokenKind::Ident(name) => {
                match name.to_ascii_lowercase().as_str() {
                    "true" => return Ok(Expr::Literal(Literal::Bool(true))),
                    "false" => return Ok(Expr::Literal(Literal::Bool(false))),
                    "null" => return Ok(Expr::Literal(Literal::Null)),
                    _ => {}
                }
                if self.eat(&TokenKind::LeftParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RightParen) {
                        loop {
                            args.push(self.or_expr()?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(TokenKind::RightParen)?;
                            break;
                        }
                    }
                    Ok(Expr::Call { name: name.to_ascii_lowercase(), args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => {
                self.pos -= 1;
                let _ = other;
                Err(self.unexpected("a literal, identifier, function call or '('"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals() {
        assert_eq!(parse("42").unwrap(), Expr::Literal(Literal::Number(42.0)));
        assert_eq!(parse("'abc'").unwrap(), Expr::Literal(Literal::Str("abc".into())));
        assert_eq!(parse("true").unwrap(), Expr::Literal(Literal::Bool(true)));
        assert_eq!(parse("FALSE").unwrap(), Expr::Literal(Literal::Bool(false)));
        assert_eq!(parse("null").unwrap(), Expr::Literal(Literal::Null));
    }

    #[test]
    fn parses_identifier_and_call() {
        assert_eq!(parse("ZipCode").unwrap(), Expr::Ident("ZipCode".into()));
        assert_eq!(
            parse("len(ZipCode)").unwrap(),
            Expr::Call { name: "len".into(), args: vec![Expr::Ident("ZipCode".into())] }
        );
        assert_eq!(parse("now()").unwrap(), Expr::Call { name: "now".into(), args: vec![] });
    }

    #[test]
    fn call_names_are_lowercased() {
        assert_eq!(
            parse("LEN(x)").unwrap(),
            Expr::Call { name: "len".into(), args: vec![Expr::Ident("x".into())] }
        );
    }

    #[test]
    fn precedence_and_before_or() {
        // a || b && c  ==  a || (b && c)
        let expr = parse("a || b && c").unwrap();
        match expr {
            Expr::Binary { op: BinaryOp::Or, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_arithmetic_before_comparison() {
        // a + b * c == d  ==  (a + (b * c)) == d
        let expr = parse("a + b * c == d").unwrap();
        match expr {
            Expr::Binary { op: BinaryOp::Eq, lhs, .. } => match *lhs {
                Expr::Binary { op: BinaryOp::Add, rhs, .. } => {
                    assert!(matches!(*rhs, Expr::Binary { op: BinaryOp::Mul, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_unary_operators() {
        assert_eq!(
            parse("!a").unwrap(),
            Expr::Unary { op: UnaryOp::Not, expr: Box::new(Expr::Ident("a".into())) }
        );
        assert_eq!(
            parse("-3").unwrap(),
            Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::Literal(Literal::Number(3.0))) }
        );
        assert_eq!(
            parse("not a").unwrap(),
            Expr::Unary { op: UnaryOp::Not, expr: Box::new(Expr::Ident("a".into())) }
        );
    }

    #[test]
    fn parses_parentheses() {
        // (a || b) && c
        let expr = parse("(a || b) && c").unwrap();
        match expr {
            Expr::Binary { op: BinaryOp::And, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinaryOp::Or, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multi_argument_calls() {
        let expr = parse("matches(ZipCode, '[0-9]{5}')").unwrap();
        match expr {
            Expr::Call { name, args } => {
                assert_eq!(name, "matches");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keyword_connectives_parse_like_symbols() {
        assert_eq!(parse("a and b or c").unwrap(), parse("a && b || c").unwrap());
    }

    #[test]
    fn reports_errors_with_positions() {
        assert_eq!(parse(""), Err(ParseError::Empty));
        assert!(matches!(parse("1 +"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("(1 + 2"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("len(a"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("1 2"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("== 3"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("a @ b"), Err(ParseError::Lex(_))));
    }

    #[test]
    fn chained_comparisons_are_rejected() {
        // Comparison is non-associative in this grammar.
        assert!(parse("1 < 2 < 3").is_err());
    }

    #[test]
    fn deeply_nested_expression_parses() {
        let source = "((((((1 + 2) * 3) - 4) / 5) % 6) >= 0) && !(len(a) == 0 || a != 'x')";
        assert!(parse(source).is_ok());
    }
}
