//! Lexer for the BClean constraint-expression language.
//!
//! The language is a small, side-effect-free expression grammar used to
//! express the "arithmetic expression" form of user constraints the paper
//! allows (§2): comparisons, boolean connectives, arithmetic, string and
//! regex helpers over the attributes of a tuple (or the single pseudo
//! attribute `value` when a rule is attached to one column).

use std::fmt;

/// A lexical token together with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind / payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token in the source string.
    pub offset: usize,
}

/// The kinds of tokens the expression language understands.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A numeric literal (always lexed as `f64`).
    Number(f64),
    /// A string literal (single or double quoted).
    Str(String),
    /// An identifier: attribute name, function name, `true`, `false`, `null`.
    Ident(String),
    /// `(`
    LeftParen,
    /// `)`
    RightParen,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Less,
    /// `<=`
    LessEq,
    /// `>`
    Greater,
    /// `>=`
    GreaterEq,
    /// `&&` (or the keyword `and`)
    AndAnd,
    /// `||` (or the keyword `or`)
    OrOr,
    /// `!` (or the keyword `not`)
    Bang,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::LeftParen => write!(f, "("),
            TokenKind::RightParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Less => write!(f, "<"),
            TokenKind::LessEq => write!(f, "<="),
            TokenKind::Greater => write!(f, ">"),
            TokenKind::GreaterEq => write!(f, ">="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Bang => write!(f, "!"),
        }
    }
}

/// An error produced while lexing an expression.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenise an expression source string.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LeftParen, offset: i });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RightParen, offset: i });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset: i });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, offset: i });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, offset: i });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, offset: i });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, offset: i });
                i += 1;
            }
            '%' => {
                tokens.push(Token { kind: TokenKind::Percent, offset: i });
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::EqEq, offset: i });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected '==' (single '=' is not assignment)".into(),
                        offset: i,
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::NotEq, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Bang, offset: i });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::LessEq, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Less, offset: i });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::GreaterEq, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Greater, offset: i });
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token { kind: TokenKind::AndAnd, offset: i });
                    i += 2;
                } else {
                    return Err(LexError { message: "expected '&&'".into(), offset: i });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token { kind: TokenKind::OrOr, offset: i });
                    i += 2;
                } else {
                    return Err(LexError { message: "expected '||'".into(), offset: i });
                }
            }
            '"' | '\'' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut out = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch == '\\' && i + 1 < bytes.len() {
                        let escaped = bytes[i + 1] as char;
                        out.push(match escaped {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                        i += 2;
                        continue;
                    }
                    if ch == quote {
                        closed = true;
                        i += 1;
                        break;
                    }
                    out.push(ch);
                    i += 1;
                }
                if !closed {
                    return Err(LexError { message: "unterminated string literal".into(), offset: start });
                }
                tokens.push(Token { kind: TokenKind::Str(out), offset: start });
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E')
                    || (i < bytes.len()
                        && matches!(bytes[i] as char, '+' | '-')
                        && i > start
                        && matches!(bytes[i - 1] as char, 'e' | 'E'))
                {
                    i += 1;
                }
                let text = &source[start..i];
                let value: f64 = text.parse().map_err(|_| LexError {
                    message: format!("invalid numeric literal {text:?}"),
                    offset: start,
                })?;
                tokens.push(Token { kind: TokenKind::Number(value), offset: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let kind = match word.to_ascii_lowercase().as_str() {
                    "and" => TokenKind::AndAnd,
                    "or" => TokenKind::OrOr,
                    "not" => TokenKind::Bang,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token { kind, offset: start });
            }
            other => {
                return Err(LexError { message: format!("unexpected character {other:?}"), offset: i });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators_and_parens() {
        assert_eq!(
            kinds("( ) , + - * / % == != < <= > >= && || !"),
            vec![
                TokenKind::LeftParen,
                TokenKind::RightParen,
                TokenKind::Comma,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Less,
                TokenKind::LessEq,
                TokenKind::Greater,
                TokenKind::GreaterEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("3"), vec![TokenKind::Number(3.0)]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Number(3.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Number(1000.0)]);
        assert_eq!(kinds("2.5e-2"), vec![TokenKind::Number(0.025)]);
        assert!(tokenize("1.2.3").is_err());
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds("\"abc\""), vec![TokenKind::Str("abc".into())]);
        assert_eq!(kinds("'x y'"), vec![TokenKind::Str("x y".into())]);
        assert_eq!(kinds(r#""a\"b""#), vec![TokenKind::Str("a\"b".into())]);
        assert_eq!(kinds(r#""a\nb""#), vec![TokenKind::Str("a\nb".into())]);
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn lexes_identifiers_and_keywords() {
        assert_eq!(
            kinds("ZipCode and value or not abv_2"),
            vec![
                TokenKind::Ident("ZipCode".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("value".into()),
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Ident("abv_2".into()),
            ]
        );
    }

    #[test]
    fn identifier_may_contain_dots() {
        assert_eq!(kinds("t.ZipCode"), vec![TokenKind::Ident("t.ZipCode".into())]);
    }

    #[test]
    fn reports_offsets() {
        let tokens = tokenize("a == 12").unwrap();
        assert_eq!(tokens[0].offset, 0);
        assert_eq!(tokens[1].offset, 2);
        assert_eq!(tokens[2].offset, 5);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("a = b").is_err());
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("a | b").is_err());
    }

    #[test]
    fn empty_source_is_no_tokens() {
        assert!(tokenize("   \t\n ").unwrap().is_empty());
    }
}
