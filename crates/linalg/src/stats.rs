//! Summary statistics, standardisation and covariance estimation.
//!
//! The FDX-style structure learner treats per-tuple attribute-similarity
//! vectors as draws from a multivariate Gaussian; this module provides the
//! empirical moments of that sample matrix (paper §4).

use crate::matrix::{LinalgError, LinalgResult, Matrix};

/// Arithmetic mean of a slice; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation (population).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation of two equally-long slices. Returns 0 when either
/// side has no variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> LinalgResult<f64> {
    if xs.len() != ys.len() {
        return Err(LinalgError::DimensionMismatch { op: "pearson", lhs: (xs.len(), 1), rhs: (ys.len(), 1) });
    }
    if xs.len() < 2 {
        return Ok(0.0);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Column means of a samples-by-features matrix.
pub fn column_means(samples: &Matrix) -> Vec<f64> {
    (0..samples.ncols()).map(|c| mean(&samples.col(c))).collect()
}

/// Standardise columns to zero mean and unit variance. Columns with zero
/// variance are centred only.
pub fn standardize_columns(samples: &Matrix) -> Matrix {
    let mut out = samples.clone();
    for c in 0..samples.ncols() {
        let col = samples.col(c);
        let m = mean(&col);
        let s = std_dev(&col);
        for r in 0..samples.nrows() {
            let v = samples.get(r, c) - m;
            out.set(r, c, if s > 1e-12 { v / s } else { v });
        }
    }
    out
}

/// Empirical covariance matrix of a samples-by-features matrix
/// (rows = observations). Uses the population (1/n) normaliser.
pub fn covariance_matrix(samples: &Matrix) -> LinalgResult<Matrix> {
    let n = samples.nrows();
    let p = samples.ncols();
    if n == 0 || p == 0 {
        return Err(LinalgError::InvalidInput("empty sample matrix".into()));
    }
    let means = column_means(samples);
    // Centered column-major copy: each (i, j) accumulation below then runs
    // over two contiguous slices instead of stride-`p` row-major reads. The
    // centered values and the per-pair summation order are exactly those of
    // the naive nested loop, so the result is bit-identical.
    let mut centered: Vec<Vec<f64>> = vec![vec![0.0; n]; p];
    for r in 0..n {
        let row = samples.row(r);
        for i in 0..p {
            centered[i][r] = row[i] - means[i];
        }
    }
    let mut cov = Matrix::zeros(p, p);
    for i in 0..p {
        for j in i..p {
            let mut s = 0.0;
            for (ci, cj) in centered[i].iter().zip(&centered[j]) {
                s += ci * cj;
            }
            let v = s / n as f64;
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    Ok(cov)
}

/// Correlation matrix (covariance normalised by standard deviations).
pub fn correlation_matrix(samples: &Matrix) -> LinalgResult<Matrix> {
    let cov = covariance_matrix(samples)?;
    let p = cov.nrows();
    let sd: Vec<f64> = (0..p).map(|i| cov.get(i, i).max(0.0).sqrt()).collect();
    let mut corr = Matrix::identity(p);
    for i in 0..p {
        for j in 0..p {
            if i != j {
                let denom = sd[i] * sd[j];
                corr.set(i, j, if denom > 1e-12 { cov.get(i, j) / denom } else { 0.0 });
            }
        }
    }
    Ok(corr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]).unwrap(), 0.0);
        assert!(pearson(&x, &[1.0]).is_err());
        assert_eq!(pearson(&[1.0], &[1.0]).unwrap(), 0.0);
    }

    #[test]
    fn standardize_gives_zero_mean_unit_variance() {
        let samples = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 10.0], vec![3.0, 10.0]]).unwrap();
        let z = standardize_columns(&samples);
        let c0 = z.col(0);
        assert!(mean(&c0).abs() < 1e-12);
        assert!((variance(&c0) - 1.0).abs() < 1e-9);
        // Constant column stays centred at zero without dividing by zero.
        assert!(z.col(1).iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn covariance_matrix_matches_hand_computation() {
        let samples = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let cov = covariance_matrix(&samples).unwrap();
        assert!((cov.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 4.0 / 3.0).abs() < 1e-12);
        assert!(cov.is_symmetric(1e-12));
    }

    #[test]
    fn correlation_matrix_diag_ones() {
        let samples =
            Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 3.0], vec![3.0, 1.0], vec![4.0, 0.0]]).unwrap();
        let corr = correlation_matrix(&samples).unwrap();
        assert!((corr.get(0, 0) - 1.0).abs() < 1e-12);
        assert!(corr.get(0, 1) < 0.0);
        assert!(corr.get(0, 1) >= -1.0 - 1e-12);
    }

    #[test]
    fn covariance_rejects_empty() {
        let empty = Matrix::zeros(0, 0);
        assert!(covariance_matrix(&empty).is_err());
    }
}
