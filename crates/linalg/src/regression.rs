//! Ordinary least squares and ℓ₁-penalised (lasso) regression.
//!
//! The graphical lasso's inner loop solves an ℓ₁-penalised quadratic problem
//! per column; we implement it with cyclic coordinate descent and the
//! soft-thresholding operator.

use crate::decomposition::solve;
use crate::matrix::{LinalgError, LinalgResult, Matrix};

/// Soft-thresholding operator `S(x, t) = sign(x)·max(|x| − t, 0)`.
pub fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Ordinary least squares: find `beta` minimising `‖y − X beta‖²` via the
/// normal equations (with a tiny ridge term for numerical stability).
pub fn ols(x: &Matrix, y: &[f64]) -> LinalgResult<Vec<f64>> {
    if x.nrows() != y.len() {
        return Err(LinalgError::DimensionMismatch { op: "ols", lhs: x.shape(), rhs: (y.len(), 1) });
    }
    let xt = x.transpose();
    let mut xtx = xt.matmul(x)?;
    for i in 0..xtx.nrows() {
        let v = xtx.get(i, i) + 1e-10;
        xtx.set(i, i, v);
    }
    let xty = xt.matvec(y)?;
    solve(&xtx, &xty)
}

/// Configuration for coordinate-descent solvers.
#[derive(Debug, Clone, Copy)]
pub struct CdConfig {
    /// Maximum number of full passes over the coordinates.
    pub max_iter: usize,
    /// Convergence tolerance on the max coefficient change per pass.
    pub tol: f64,
}

impl Default for CdConfig {
    fn default() -> Self {
        CdConfig { max_iter: 200, tol: 1e-6 }
    }
}

/// Lasso regression on raw data: minimise
/// `1/(2n)·‖y − X beta‖² + lambda·‖beta‖₁` with cyclic coordinate descent.
pub fn lasso(x: &Matrix, y: &[f64], lambda: f64, cfg: CdConfig) -> LinalgResult<Vec<f64>> {
    if x.nrows() != y.len() {
        return Err(LinalgError::DimensionMismatch { op: "lasso", lhs: x.shape(), rhs: (y.len(), 1) });
    }
    let n = x.nrows() as f64;
    let p = x.ncols();
    let mut beta = vec![0.0; p];
    // Precompute column norms.
    let col_sq: Vec<f64> = (0..p).map(|j| x.col(j).iter().map(|v| v * v).sum::<f64>() / n).collect();
    let mut residual: Vec<f64> = y.to_vec();
    for _ in 0..cfg.max_iter {
        let mut max_delta: f64 = 0.0;
        for j in 0..p {
            if col_sq[j] < 1e-12 {
                continue;
            }
            let xj = x.col(j);
            // rho_j = (1/n) Σ x_ij (residual_i + x_ij beta_j)
            let mut rho = 0.0;
            for i in 0..x.nrows() {
                rho += xj[i] * (residual[i] + xj[i] * beta[j]);
            }
            rho /= n;
            let new_beta = soft_threshold(rho, lambda) / col_sq[j];
            let delta = new_beta - beta[j];
            if delta != 0.0 {
                for i in 0..x.nrows() {
                    residual[i] -= xj[i] * delta;
                }
                beta[j] = new_beta;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < cfg.tol {
            break;
        }
    }
    Ok(beta)
}

/// Lasso in "covariance form": minimise
/// `1/2·βᵀ V β − sᵀ β + lambda·‖β‖₁` given a PSD matrix `V` and vector `s`.
///
/// This is the sub-problem solved for each column inside the graphical lasso
/// (Friedman, Hastie & Tibshirani 2008).
pub fn lasso_covariance(v: &Matrix, s: &[f64], lambda: f64, cfg: CdConfig) -> LinalgResult<Vec<f64>> {
    if !v.is_square() {
        return Err(LinalgError::NotSquare);
    }
    let p = v.nrows();
    if s.len() != p {
        return Err(LinalgError::DimensionMismatch {
            op: "lasso_covariance",
            lhs: v.shape(),
            rhs: (s.len(), 1),
        });
    }
    let mut beta = vec![0.0; p];
    for _ in 0..cfg.max_iter {
        let mut max_delta: f64 = 0.0;
        for j in 0..p {
            // Row slice + split ranges around `j`: the same terms in the same
            // order as the naive `for k != j` loop, without the per-element
            // bounds checks and branch (this inner product is the hot path of
            // the whole graphical lasso).
            let row = v.row(j);
            let vjj = row[j];
            if vjj < 1e-12 {
                continue;
            }
            let mut grad = s[j];
            for k in 0..j {
                grad -= row[k] * beta[k];
            }
            for k in j + 1..p {
                grad -= row[k] * beta[k];
            }
            let new_beta = soft_threshold(grad, lambda) / vjj;
            let delta = new_beta - beta[j];
            if delta.abs() > 0.0 {
                beta[j] = new_beta;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < cfg.tol {
            break;
        }
    }
    Ok(beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(1.0, 0.0), 1.0);
    }

    fn design() -> (Matrix, Vec<f64>) {
        // y = 2*x1 - 3*x2 (no noise)
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let x1 = (i as f64) / 5.0;
                let x2 = ((i * 7 % 13) as f64) / 3.0;
                vec![x1, x2]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1]).collect();
        (x, y)
    }

    #[test]
    fn ols_recovers_exact_coefficients() {
        let (x, y) = design();
        let beta = ols(&x, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-6);
        assert!((beta[1] + 3.0).abs() < 1e-6);
        assert!(ols(&x, &[1.0]).is_err());
    }

    #[test]
    fn lasso_with_zero_penalty_matches_ols() {
        let (x, y) = design();
        let beta = lasso(&x, &y, 0.0, CdConfig::default()).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-3);
        assert!((beta[1] + 3.0).abs() < 1e-3);
    }

    #[test]
    fn lasso_large_penalty_zeroes_coefficients() {
        let (x, y) = design();
        let beta = lasso(&x, &y, 1e6, CdConfig::default()).unwrap();
        assert!(beta.iter().all(|b| *b == 0.0));
        assert!(lasso(&x, &[1.0], 0.1, CdConfig::default()).is_err());
    }

    #[test]
    fn lasso_shrinks_irrelevant_feature() {
        // y depends only on x1; x2 is noise-free but irrelevant.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 7) as f64, ((i * 3) % 5) as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 1.5 * r[0]).collect();
        let beta = lasso(&x, &y, 0.5, CdConfig::default()).unwrap();
        assert!(beta[0] > 0.5);
        assert!(beta[1].abs() < 0.2);
    }

    #[test]
    fn lasso_covariance_solves_quadratic() {
        // With lambda=0 the solution of 1/2 b'Vb - s'b is V^{-1} s.
        let v = Matrix::from_rows(&[vec![2.0, 0.3], vec![0.3, 1.0]]).unwrap();
        let s = vec![1.0, 0.5];
        let beta = lasso_covariance(&v, &s, 0.0, CdConfig { max_iter: 2000, tol: 1e-10 }).unwrap();
        let expected = crate::decomposition::solve(&v, &s).unwrap();
        assert!((beta[0] - expected[0]).abs() < 1e-6);
        assert!((beta[1] - expected[1]).abs() < 1e-6);
    }

    #[test]
    fn lasso_covariance_penalty_sparsifies() {
        let v = Matrix::from_rows(&[vec![1.0, 0.1], vec![0.1, 1.0]]).unwrap();
        let s = vec![0.05, 0.9];
        let beta = lasso_covariance(&v, &s, 0.2, CdConfig::default()).unwrap();
        assert_eq!(beta[0], 0.0);
        assert!(beta[1] > 0.0);
        assert!(lasso_covariance(&v, &[1.0], 0.1, CdConfig::default()).is_err());
        let rect = Matrix::zeros(2, 3);
        assert!(lasso_covariance(&rect, &[1.0, 1.0], 0.1, CdConfig::default()).is_err());
    }
}
