//! Matrix decompositions: Cholesky, LDLᵀ and LU with partial pivoting.
//!
//! The structure learner needs (a) a positive-definite solve inside the
//! graphical lasso, and (b) an LDLᵀ factorisation of the inverse covariance
//! matrix under a chosen attribute ordering — that factorisation yields the
//! autoregression matrix `B` of the linear model `Θ = (I − B) Ω (I − B)ᵀ`
//! used by FDX-style Bayesian-network skeleton construction (paper §4).

use crate::matrix::{LinalgError, LinalgResult, Matrix};

/// Cholesky factorisation of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `A = L Lᵀ`.
pub fn cholesky(a: &Matrix) -> LinalgResult<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.nrows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::Singular);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// LDLᵀ factorisation of a symmetric matrix: `A = L D Lᵀ` with `L` unit lower
/// triangular and `D` diagonal (returned as a vector).
pub fn ldl(a: &Matrix) -> LinalgResult<(Matrix, Vec<f64>)> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.nrows();
    let mut l = Matrix::identity(n);
    let mut d = vec![0.0; n];
    for j in 0..n {
        let mut dj = a.get(j, j);
        for k in 0..j {
            dj -= l.get(j, k) * l.get(j, k) * d[k];
        }
        if dj.abs() < 1e-12 {
            return Err(LinalgError::Singular);
        }
        d[j] = dj;
        for i in (j + 1)..n {
            let mut v = a.get(i, j);
            for k in 0..j {
                v -= l.get(i, k) * l.get(j, k) * d[k];
            }
            l.set(i, j, v / dj);
        }
    }
    Ok((l, d))
}

/// Solve `L x = b` for lower-triangular `L`.
pub fn forward_substitute(l: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    let n = l.nrows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "forward_substitute",
            lhs: l.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l.get(i, j) * x[j];
        }
        let d = l.get(i, i);
        if d.abs() < 1e-300 {
            return Err(LinalgError::Singular);
        }
        x[i] = sum / d;
    }
    Ok(x)
}

/// Solve `U x = b` for upper-triangular `U`.
pub fn back_substitute(u: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    let n = u.nrows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "back_substitute",
            lhs: u.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in (i + 1)..n {
            sum -= u.get(i, j) * x[j];
        }
        let d = u.get(i, i);
        if d.abs() < 1e-300 {
            return Err(LinalgError::Singular);
        }
        x[i] = sum / d;
    }
    Ok(x)
}

/// Solve the SPD system `A x = b` via Cholesky.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    let l = cholesky(a)?;
    let y = forward_substitute(&l, b)?;
    back_substitute(&l.transpose(), &y)
}

/// LU decomposition with partial pivoting: returns `(lu, perm, sign)` where
/// `lu` packs `L` (unit lower) and `U`, and `perm` is the row permutation.
pub fn lu_decompose(a: &Matrix) -> LinalgResult<(Matrix, Vec<usize>, f64)> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.nrows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for k in 0..n {
        // Pivot selection.
        let mut p = k;
        let mut max = lu.get(k, k).abs();
        for i in (k + 1)..n {
            if lu.get(i, k).abs() > max {
                max = lu.get(i, k).abs();
                p = i;
            }
        }
        if max < 1e-12 {
            return Err(LinalgError::Singular);
        }
        if p != k {
            for j in 0..n {
                let tmp = lu.get(k, j);
                lu.set(k, j, lu.get(p, j));
                lu.set(p, j, tmp);
            }
            perm.swap(k, p);
            sign = -sign;
        }
        for i in (k + 1)..n {
            let factor = lu.get(i, k) / lu.get(k, k);
            lu.set(i, k, factor);
            for j in (k + 1)..n {
                let v = lu.get(i, j) - factor * lu.get(k, j);
                lu.set(i, j, v);
            }
        }
    }
    Ok((lu, perm, sign))
}

/// Solve `A x = b` for general square `A` via LU.
pub fn solve(a: &Matrix, b: &[f64]) -> LinalgResult<Vec<f64>> {
    let (lu, perm, _) = lu_decompose(a)?;
    let n = a.nrows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch { op: "solve", lhs: a.shape(), rhs: (b.len(), 1) });
    }
    // Apply permutation.
    let pb: Vec<f64> = perm.iter().map(|&i| b[i]).collect();
    // Forward substitution with unit lower triangle packed in `lu`.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = pb[i];
        for j in 0..i {
            sum -= lu.get(i, j) * y[j];
        }
        y[i] = sum;
    }
    // Back substitution with U.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for j in (i + 1)..n {
            sum -= lu.get(i, j) * x[j];
        }
        x[i] = sum / lu.get(i, i);
    }
    Ok(x)
}

/// Matrix inverse via LU decomposition.
pub fn invert(a: &Matrix) -> LinalgResult<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.nrows();
    let mut inv = Matrix::zeros(n, n);
    for c in 0..n {
        let mut e = vec![0.0; n];
        e[c] = 1.0;
        let x = solve(a, &e)?;
        for r in 0..n {
            inv.set(r, c, x[r]);
        }
    }
    Ok(inv)
}

/// Determinant via LU decomposition.
pub fn determinant(a: &Matrix) -> LinalgResult<f64> {
    match lu_decompose(a) {
        Ok((lu, _, sign)) => Ok(sign * lu.diagonal().iter().product::<f64>()),
        Err(LinalgError::Singular) => Ok(0.0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    fn spd3() -> Matrix {
        m(&[vec![4.0, 2.0, 0.6], vec![2.0, 3.0, 0.4], vec![0.6, 0.4, 2.0]])
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-10);
        // L is lower triangular.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = m(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // indefinite
        assert!(matches!(cholesky(&a), Err(LinalgError::Singular)));
        assert!(cholesky(&m(&[vec![1.0, 2.0]])).is_err());
    }

    #[test]
    fn ldl_reconstructs() {
        let a = spd3();
        let (l, d) = ldl(&a).unwrap();
        let recon = l.matmul(&Matrix::diag(&d)).unwrap().matmul(&l.transpose()).unwrap();
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-10);
        // Unit diagonal.
        for i in 0..3 {
            assert!((l.get(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn triangular_solves() {
        let l = m(&[vec![2.0, 0.0], vec![1.0, 3.0]]);
        let x = forward_substitute(&l, &[2.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
        let u = l.transpose();
        let x = back_substitute(&u, &[4.0, 3.0]).unwrap();
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!(forward_substitute(&l, &[1.0]).is_err());
        assert!(back_substitute(&u, &[1.0]).is_err());
    }

    #[test]
    fn solve_spd_roundtrip() {
        let a = spd3();
        let b = vec![1.0, 2.0, 3.0];
        let x = solve_spd(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_solve_and_invert() {
        let a = m(&[vec![0.0, 2.0, 1.0], vec![1.0, -2.0, -3.0], vec![-1.0, 1.0, 2.0]]);
        let b = vec![-8.0, 0.0, 3.0];
        let x = solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-9);
    }

    #[test]
    fn singular_matrices_rejected() {
        let s = m(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(invert(&s), Err(LinalgError::Singular)));
        assert_eq!(determinant(&s).unwrap(), 0.0);
    }

    #[test]
    fn determinant_values() {
        let a = m(&[vec![3.0, 8.0], vec![4.0, 6.0]]);
        assert!((determinant(&a).unwrap() - (-14.0)).abs() < 1e-10);
        assert!((determinant(&Matrix::identity(4)).unwrap() - 1.0).abs() < 1e-12);
        // Permutation matrix has determinant -1 (odd swap).
        let p = m(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((determinant(&p).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_dimension_checks() {
        let a = spd3();
        assert!(solve(&a, &[1.0]).is_err());
        assert!(solve_spd(&a, &[1.0, 2.0, 3.0]).is_ok());
        assert!(lu_decompose(&m(&[vec![1.0, 2.0]])).is_err());
        assert!(determinant(&m(&[vec![1.0, 2.0]])).is_err());
    }
}
