//! # bclean-linalg
//!
//! Self-contained dense linear algebra for BClean's Bayesian-network
//! structure learner: matrices, Cholesky/LDLᵀ/LU decompositions, ordinary
//! least squares, lasso coordinate descent and the graphical lasso
//! (sparse inverse-covariance estimation).
//!
//! The paper's construction stage (§4) computes pairwise attribute
//! similarities per tuple, treats them as samples of a multivariate Gaussian,
//! estimates the inverse covariance matrix `Θ` with the graphical lasso and
//! decomposes `Θ = (I − B) Ω (I − B)ᵀ` to obtain the weighted adjacency
//! matrix `B` of the network skeleton. Everything needed for that pipeline
//! lives here; the decomposition itself is driven from `bclean-bayesnet`.
//!
//! ```
//! use bclean_linalg::{graphical_lasso, GlassoConfig, Matrix};
//!
//! let cov = Matrix::from_rows(&[
//!     vec![1.0, 0.8, 0.0],
//!     vec![0.8, 1.0, 0.0],
//!     vec![0.0, 0.0, 1.0],
//! ]).unwrap();
//! let result = graphical_lasso(&cov, GlassoConfig { rho: 0.05, ..Default::default() }).unwrap();
//! assert!(result.precision.get(0, 1).abs() > 0.1);   // dependency kept
//! assert!(result.precision.get(0, 2).abs() < 1e-6);  // independence kept
//! ```

#![warn(missing_docs)]
// Triangular solves, coordinate descent and pivoted eliminations index
// several matrices/vectors by the same loop variable; explicit index loops
// are the established idiom for these kernels.
#![allow(clippy::needless_range_loop)]

pub mod decomposition;
pub mod glasso;
pub mod matrix;
pub mod regression;
pub mod stats;

pub use decomposition::{
    back_substitute, cholesky, determinant, forward_substitute, invert, ldl, lu_decompose, solve, solve_spd,
};
pub use glasso::{graphical_lasso, ridge_precision, GlassoConfig, GlassoResult};
pub use matrix::{LinalgError, LinalgResult, Matrix};
pub use regression::{lasso, lasso_covariance, ols, soft_threshold, CdConfig};
pub use stats::{
    column_means, correlation_matrix, covariance_matrix, mean, pearson, standardize_columns, std_dev,
    variance,
};
