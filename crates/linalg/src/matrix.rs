//! Dense row-major matrices over `f64`.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Errors from matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible.
    DimensionMismatch {
        /// Description of the operation.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or not positive definite) where invertibility
    /// is required.
    Singular,
    /// A square matrix was required.
    NotSquare,
    /// Input data is empty or malformed.
    InvalidInput(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => {
                write!(f, "dimension mismatch in {op}: {}x{} vs {}x{}", lhs.0, lhs.1, rhs.0, rhs.1)
            }
            LinalgError::Singular => write!(f, "matrix is singular or not positive definite"),
            LinalgError::NotSquare => write!(f, "operation requires a square matrix"),
            LinalgError::InvalidInput(m) => write!(f, "invalid input: {m}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Result alias for linear algebra operations.
pub type LinalgResult<T> = Result<T, LinalgError>;

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Diagonal matrix from a vector.
    pub fn diag(values: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(values.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Build from a flat row-major buffer (`data.len()` must be
    /// `rows × cols`). The allocation-free twin of [`Matrix::from_rows`]
    /// for hot paths that assemble their samples directly.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> LinalgResult<Matrix> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidInput("empty matrix".into()));
        }
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidInput("flat buffer does not match the shape".into()));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from nested rows. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> LinalgResult<Matrix> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidInput("no rows".into()));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::InvalidInput("empty rows".into()));
        }
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::InvalidInput("ragged rows".into()));
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Is the matrix square?
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self.get(r, c);
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> LinalgResult<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> LinalgResult<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect())
    }

    /// Element-wise addition.
    pub fn add_matrix(&self, other: &Matrix) -> LinalgResult<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch { op: "add", lhs: self.shape(), rhs: other.shape() });
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Element-wise subtraction.
    pub fn sub_matrix(&self, other: &Matrix) -> LinalgResult<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch { op: "sub", lhs: self.shape(), rhs: other.shape() });
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|v| v * s).collect() }
    }

    /// Maximum absolute element difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> LinalgResult<f64> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Is the matrix symmetric within `tol`?
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Delete row `r` and column `c`, returning the minor matrix.
    pub fn minor(&self, r: usize, c: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows - 1, self.cols - 1);
        let mut oi = 0;
        for i in 0..self.rows {
            if i == r {
                continue;
            }
            let mut oj = 0;
            for j in 0..self.cols {
                if j == c {
                    continue;
                }
                out[(oi, oj)] = self.get(i, j);
                oj += 1;
            }
            oi += 1;
        }
        out
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_matrix(rhs).expect("shape mismatch in +")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_matrix(rhs).expect("shape mismatch in -")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("shape mismatch in *")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            let row: Vec<String> = self.row(r).iter().map(|v| format!("{v:>10.4}")).collect();
            writeln!(f, "[{}]", row.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a[(1, 0)], 3.0);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
        assert_eq!(a.diagonal(), vec![1.0, 4.0]);
    }

    #[test]
    fn invalid_construction() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_and_diag() {
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 2), 0.0);
        let d = Matrix::diag(&[2.0, 5.0]);
        assert_eq!(d.get(1, 1), 5.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let a = m(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_basic() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = m(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
        assert_eq!(&a * &Matrix::identity(2), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = m(&[vec![1.0, 2.0]]);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matvec() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = m(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(&a + &b, m(&[vec![2.0, 3.0], vec![4.0, 5.0]]));
        assert_eq!(&a - &b, m(&[vec![0.0, 1.0], vec![2.0, 3.0]]));
        assert_eq!(a.scale(2.0), m(&[vec![2.0, 4.0], vec![6.0, 8.0]]));
        assert!(a.add_matrix(&Matrix::identity(3)).is_err());
    }

    #[test]
    fn symmetry_check() {
        let s = m(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        assert!(s.is_symmetric(1e-12));
        let ns = m(&[vec![2.0, 1.0], vec![0.0, 2.0]]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!m(&[vec![1.0, 2.0]]).is_symmetric(1e-12));
    }

    #[test]
    fn minor_removes_row_and_col() {
        let a = m(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 9.0]]);
        let mm = a.minor(1, 0);
        assert_eq!(mm, m(&[vec![2.0, 3.0], vec![8.0, 9.0]]));
    }

    #[test]
    fn norms_and_diffs() {
        let a = m(&[vec![3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        let b = m(&[vec![3.0, 6.0]]);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 2.0);
        assert!(a.max_abs_diff(&Matrix::identity(2)).is_err());
    }

    #[test]
    fn display_smoke() {
        let a = Matrix::identity(2);
        let s = a.to_string();
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn error_display() {
        assert!(LinalgError::Singular.to_string().contains("singular"));
        assert!(LinalgError::NotSquare.to_string().contains("square"));
        let e = LinalgError::DimensionMismatch { op: "matmul", lhs: (1, 2), rhs: (3, 4) };
        assert!(e.to_string().contains("matmul"));
    }
}
