//! Graphical lasso: sparse inverse-covariance estimation.
//!
//! BClean's structure learner (paper §4, following FDX) feeds the
//! attribute-similarity sample matrix into the graphical lasso to obtain a
//! sparse estimate of the inverse covariance matrix `Θ = Σ⁻¹`. The non-zero
//! pattern of `Θ` encodes conditional dependencies between attributes, which
//! after decomposition become the edges of the Bayesian-network skeleton.
//!
//! The implementation is the block coordinate-descent algorithm of Friedman,
//! Hastie & Tibshirani (2008): each column of the working covariance `W` is
//! updated by solving an ℓ₁-penalised quadratic sub-problem.

use crate::decomposition::invert;
use crate::matrix::{LinalgError, LinalgResult, Matrix};
use crate::regression::{lasso_covariance, CdConfig};

/// Configuration for [`graphical_lasso`].
#[derive(Debug, Clone, Copy)]
pub struct GlassoConfig {
    /// ℓ₁ penalty `ρ` on off-diagonal entries of the precision matrix.
    pub rho: f64,
    /// Maximum outer iterations (full sweeps over all columns).
    pub max_iter: usize,
    /// Convergence tolerance on the working covariance matrix.
    pub tol: f64,
    /// Inner coordinate-descent configuration.
    pub inner: CdConfig,
}

impl Default for GlassoConfig {
    fn default() -> Self {
        GlassoConfig { rho: 0.1, max_iter: 100, tol: 1e-4, inner: CdConfig::default() }
    }
}

/// Result of a graphical-lasso run.
#[derive(Debug, Clone)]
pub struct GlassoResult {
    /// Estimated covariance matrix `W ≈ Σ`.
    pub covariance: Matrix,
    /// Estimated sparse precision matrix `Θ ≈ Σ⁻¹`.
    pub precision: Matrix,
    /// Number of outer iterations executed.
    pub iterations: usize,
    /// Whether the outer loop converged within `max_iter`.
    pub converged: bool,
}

/// Estimate a sparse precision matrix from an empirical covariance matrix.
pub fn graphical_lasso(emp_cov: &Matrix, cfg: GlassoConfig) -> LinalgResult<GlassoResult> {
    if !emp_cov.is_square() {
        return Err(LinalgError::NotSquare);
    }
    if !emp_cov.is_symmetric(1e-8) {
        return Err(LinalgError::InvalidInput("covariance matrix must be symmetric".into()));
    }
    let p = emp_cov.nrows();
    if p == 0 {
        return Err(LinalgError::InvalidInput("empty covariance matrix".into()));
    }
    if p == 1 {
        let var = emp_cov.get(0, 0).max(1e-12);
        let mut w = Matrix::zeros(1, 1);
        w.set(0, 0, var + cfg.rho);
        let mut theta = Matrix::zeros(1, 1);
        theta.set(0, 0, 1.0 / (var + cfg.rho));
        return Ok(GlassoResult { covariance: w, precision: theta, iterations: 0, converged: true });
    }

    // Working covariance: W = S + rho * I.
    let mut w = emp_cov.clone();
    for i in 0..p {
        let v = w.get(i, i) + cfg.rho;
        w.set(i, i, v);
    }
    // Per-column lasso coefficients, retained to reconstruct Θ at the end.
    let mut betas: Vec<Vec<f64>> = vec![vec![0.0; p - 1]; p];

    let mut iterations = 0;
    let mut converged = false;
    for _iter in 0..cfg.max_iter {
        iterations += 1;
        let w_old = w.clone();
        for j in 0..p {
            // Partition: V = W_{11} (without row/col j), s12 = S[, j] without row j.
            let v = w.minor(j, j);
            let s12: Vec<f64> = (0..p).filter(|&k| k != j).map(|k| emp_cov.get(k, j)).collect();
            let beta = lasso_covariance(&v, &s12, cfg.rho, cfg.inner)?;
            // w12 = V * beta.
            let w12 = v.matvec(&beta)?;
            let mut idx = 0;
            for k in 0..p {
                if k == j {
                    continue;
                }
                w.set(k, j, w12[idx]);
                w.set(j, k, w12[idx]);
                idx += 1;
            }
            betas[j] = beta;
        }
        if w.max_abs_diff(&w_old)? < cfg.tol {
            converged = true;
            break;
        }
    }

    // Recover Θ from the final betas: θ_jj = 1 / (w_jj − w12ᵀ β), θ_12 = −β θ_jj.
    let mut theta = Matrix::zeros(p, p);
    for j in 0..p {
        let beta = &betas[j];
        let mut w12_dot_beta = 0.0;
        let mut idx = 0;
        for k in 0..p {
            if k == j {
                continue;
            }
            w12_dot_beta += w.get(k, j) * beta[idx];
            idx += 1;
        }
        let denom = w.get(j, j) - w12_dot_beta;
        let theta_jj = if denom.abs() < 1e-12 { 1e12 } else { 1.0 / denom };
        theta.set(j, j, theta_jj);
        let mut idx = 0;
        for k in 0..p {
            if k == j {
                continue;
            }
            let v = -beta[idx] * theta_jj;
            // Symmetrise by averaging the two estimates.
            let prev = theta.get(k, j);
            let avg = if prev != 0.0 { (prev + v) / 2.0 } else { v };
            theta.set(k, j, avg);
            theta.set(j, k, avg);
            idx += 1;
        }
    }

    Ok(GlassoResult { covariance: w, precision: theta, iterations, converged })
}

/// Direct (unpenalised) precision estimate: invert the covariance after
/// adding a small ridge. Used as a fall-back and in tests.
pub fn ridge_precision(emp_cov: &Matrix, ridge: f64) -> LinalgResult<Matrix> {
    if !emp_cov.is_square() {
        return Err(LinalgError::NotSquare);
    }
    let p = emp_cov.nrows();
    let mut a = emp_cov.clone();
    for i in 0..p {
        let v = a.get(i, i) + ridge;
        a.set(i, i, v);
    }
    invert(&a)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A well-conditioned covariance with one strong dependency (0↔1) and one
    /// independent variable (2).
    fn toy_cov() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 0.8, 0.05], vec![0.8, 1.0, 0.02], vec![0.05, 0.02, 1.0]]).unwrap()
    }

    #[test]
    fn identity_covariance_gives_diagonal_precision() {
        let res = graphical_lasso(&Matrix::identity(4), GlassoConfig::default()).unwrap();
        assert!(res.converged);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(res.precision.get(i, j).abs() < 1e-6, "off-diagonal not zero");
                } else {
                    assert!(res.precision.get(i, j) > 0.0);
                }
            }
        }
    }

    #[test]
    fn strong_dependency_survives_penalty() {
        let res = graphical_lasso(&toy_cov(), GlassoConfig { rho: 0.05, ..Default::default() }).unwrap();
        // The (0,1) partial correlation is strong, the (0,2)/(1,2) ones are weak.
        assert!(res.precision.get(0, 1).abs() > 0.1);
        assert!(res.precision.get(0, 2).abs() < 0.1);
        assert!(res.precision.get(1, 2).abs() < 0.1);
    }

    #[test]
    fn large_penalty_kills_all_edges() {
        let res = graphical_lasso(&toy_cov(), GlassoConfig { rho: 10.0, ..Default::default() }).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(res.precision.get(i, j).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn precision_is_symmetric_and_psd_diagonal() {
        let res = graphical_lasso(&toy_cov(), GlassoConfig::default()).unwrap();
        assert!(res.precision.is_symmetric(1e-9));
        for i in 0..3 {
            assert!(res.precision.get(i, i) > 0.0);
        }
    }

    #[test]
    fn zero_penalty_approximates_inverse() {
        let cov = toy_cov();
        let res =
            graphical_lasso(&cov, GlassoConfig { rho: 1e-6, max_iter: 400, tol: 1e-8, ..Default::default() })
                .unwrap();
        let inv = ridge_precision(&cov, 1e-6).unwrap();
        assert!(res.precision.max_abs_diff(&inv).unwrap() < 0.05);
    }

    #[test]
    fn one_by_one_covariance() {
        let cov = Matrix::from_rows(&[vec![2.0]]).unwrap();
        let res = graphical_lasso(&cov, GlassoConfig::default()).unwrap();
        assert!(res.precision.get(0, 0) > 0.0);
        assert!(res.converged);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let rect = Matrix::zeros(2, 3);
        assert!(graphical_lasso(&rect, GlassoConfig::default()).is_err());
        let asym = Matrix::from_rows(&[vec![1.0, 0.5], vec![0.1, 1.0]]).unwrap();
        assert!(graphical_lasso(&asym, GlassoConfig::default()).is_err());
        assert!(ridge_precision(&rect, 0.1).is_err());
    }

    #[test]
    fn ridge_precision_inverts() {
        let cov = toy_cov();
        let prec = ridge_precision(&cov, 0.0).unwrap();
        let prod = cov.matmul(&prec).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-8);
    }
}
