//! Property-based tests for the linear algebra kernel.

use bclean_linalg::{
    cholesky, correlation_matrix, covariance_matrix, determinant, graphical_lasso, invert, ldl, solve,
    solve_spd, standardize_columns, GlassoConfig, Matrix,
};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-5, 5].
fn random_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, cols), rows)
        .prop_map(|rows| Matrix::from_rows(&rows).unwrap())
}

/// Strategy: a random symmetric positive-definite matrix A = MᵀM + n·I.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    random_matrix(n, n).prop_map(move |m| {
        let mtm = m.transpose().matmul(&m).unwrap();
        let mut a = mtm;
        for i in 0..n {
            let v = a.get(i, i) + n as f64;
            a.set(i, i, v);
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (Aᵀ)ᵀ = A and (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_identities(a in random_matrix(3, 4), b in random_matrix(4, 2)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(ab_t.max_abs_diff(&bt_at).unwrap() < 1e-9);
    }

    /// A·I = I·A = A.
    #[test]
    fn identity_is_neutral(a in random_matrix(4, 4)) {
        let i = Matrix::identity(4);
        prop_assert!(a.matmul(&i).unwrap().max_abs_diff(&a).unwrap() < 1e-12);
        prop_assert!(i.matmul(&a).unwrap().max_abs_diff(&a).unwrap() < 1e-12);
    }

    /// Cholesky of an SPD matrix reconstructs it, and its determinant is the
    /// squared product of the diagonal of L.
    #[test]
    fn cholesky_roundtrip(a in spd_matrix(4)) {
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        prop_assert!(recon.max_abs_diff(&a).unwrap() < 1e-6);
        let det_from_l: f64 = l.diagonal().iter().map(|d| d * d).product();
        let det = determinant(&a).unwrap();
        prop_assert!((det_from_l - det).abs() / det.abs().max(1.0) < 1e-6);
    }

    /// LDLᵀ of an SPD matrix reconstructs it with positive D.
    #[test]
    fn ldl_roundtrip(a in spd_matrix(4)) {
        let (l, d) = ldl(&a).unwrap();
        prop_assert!(d.iter().all(|&x| x > 0.0));
        let recon = l.matmul(&Matrix::diag(&d)).unwrap().matmul(&l.transpose()).unwrap();
        prop_assert!(recon.max_abs_diff(&a).unwrap() < 1e-6);
    }

    /// Solving A x = b and multiplying back recovers b (SPD and general LU paths).
    #[test]
    fn solve_roundtrip(a in spd_matrix(4), b in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let x = solve_spd(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-6);
        }
        let x2 = solve(&a, &b).unwrap();
        let ax2 = a.matvec(&x2).unwrap();
        for (u, v) in ax2.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    /// A · A⁻¹ = I for SPD matrices.
    #[test]
    fn inverse_roundtrip(a in spd_matrix(3)) {
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-6);
    }

    /// Covariance matrices are symmetric with non-negative diagonal, and
    /// correlation entries lie in [-1, 1].
    #[test]
    fn covariance_properties(samples in random_matrix(12, 4)) {
        let cov = covariance_matrix(&samples).unwrap();
        prop_assert!(cov.is_symmetric(1e-9));
        for i in 0..4 {
            prop_assert!(cov.get(i, i) >= -1e-12);
        }
        let corr = correlation_matrix(&samples).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!(corr.get(i, j) <= 1.0 + 1e-9 && corr.get(i, j) >= -1.0 - 1e-9);
            }
        }
    }

    /// Standardised columns have (near) zero mean.
    #[test]
    fn standardize_zero_mean(samples in random_matrix(10, 3)) {
        let z = standardize_columns(&samples);
        for c in 0..3 {
            let m = bclean_linalg::mean(&z.col(c));
            prop_assert!(m.abs() < 1e-9);
        }
    }

    /// The graphical lasso always returns a symmetric precision matrix with a
    /// positive diagonal, and a larger penalty never creates more non-zeros.
    #[test]
    fn glasso_penalty_monotone_sparsity(samples in random_matrix(24, 4)) {
        let cov = covariance_matrix(&samples).unwrap();
        let small = graphical_lasso(&cov, GlassoConfig { rho: 0.01, ..Default::default() }).unwrap();
        let large = graphical_lasso(&cov, GlassoConfig { rho: 1.0, ..Default::default() }).unwrap();
        prop_assert!(small.precision.is_symmetric(1e-6));
        prop_assert!(large.precision.is_symmetric(1e-6));
        let nnz = |m: &Matrix| {
            let mut count = 0;
            for i in 0..m.nrows() {
                for j in 0..m.ncols() {
                    if i != j && m.get(i, j).abs() > 1e-8 {
                        count += 1;
                    }
                }
            }
            count
        };
        prop_assert!(nnz(&large.precision) <= nnz(&small.precision));
        for i in 0..4 {
            prop_assert!(small.precision.get(i, i) > 0.0);
            prop_assert!(large.precision.get(i, i) > 0.0);
        }
    }
}
