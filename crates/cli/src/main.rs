//! The `bclean` command-line tool.
//!
//! The fit-once/clean-many lifecycle over persistent `.bclean` model
//! artifacts (see `bclean-store` and the README's "Persistence & CLI"
//! section), plus the profiling/suggestion front-end:
//!
//! ```text
//! bclean fit     data.csv -o model.bclean -c rules.bc --variant pip
//! bclean clean   fresh.csv -m model.bclean -o cleaned.csv --repairs repairs.csv
//! bclean ingest  batch.csv -m model.bclean            # absorb new rows, persist grown dictionaries
//! bclean inspect model.bclean                         # format version, schema hash, structure, sizes
//! bclean profile data.csv                             # column statistics + outlier report
//! bclean suggest data.csv                             # draft a constraints file from the data
//! bclean clean   data.csv -o cleaned.csv              # one-shot: fit in process, then clean
//! bclean serve   -m model.bclean --addr 127.0.0.1:7345  # resident cleaning daemon
//! ```
//!
//! Exit codes are distinct per failure class so scripts can react without
//! scraping stderr: `0` success, `2` usage error (bad flags/arguments —
//! usage text follows the error), `3` file I/O failure, `4` invalid input
//! content (unreadable artifact, constraint-spec error, schema mismatch).
//!
//! Constraints files (`-c`) contain one constraint per line in the
//! canonical spec format (`ConstraintSet::to_spec_text`):
//!
//! ```text
//! # attribute: specification
//! ZipCode: pattern [1-9][0-9]{4,4}
//! State:   max_len 2
//! State:   not_null
//! abv:     num(value) >= 0 && num(value) <= 1      # any expression works
//! rule:    ends_with(InsuranceCode, ZipCode)       # tuple-level rule
//! ```

use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;

use bclean_core::{
    clean_stream, clean_stream_with_model, repairs_to_csv, BClean, BudgetParams, ConstraintSet, FitBudget,
    ModelArtifact, Repair, StreamError, StreamOptions, StreamOutcome, UserConstraint, Variant,
};
use bclean_data::{read_csv_file, write_csv_file, ChunkLimits, ChunkSource, CsvFileChunks, Dataset};
use bclean_profile::{find_outliers, suggest_constraints, DatasetProfile, OutlierConfig, SuggestConfig};
use bclean_store::{read_container_file, ContainerReader, SourceFingerprint};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            // Usage text only helps when the *invocation* was wrong; for
            // I/O and content failures it would bury the actual error.
            if matches!(error, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{}", usage());
            }
            ExitCode::from(error.exit_code())
        }
    }
}

/// A classified CLI failure. Each class maps to a distinct exit code (see
/// the module docs) so callers can distinguish "you typed it wrong" from
/// "the file system failed" from "the input content is bad".
#[derive(Debug)]
enum CliError {
    /// Bad flags or arguments — exit 2, usage text printed.
    Usage(String),
    /// A filesystem read or write failed — exit 3.
    Io(String),
    /// Input content is invalid: unreadable artifact, constraint-spec
    /// error, schema mismatch — exit 4.
    Model(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Model(_) => 4,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Model(m) => write!(f, "{m}"),
        }
    }
}

fn usage_err(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

fn io_err(message: impl Into<String>) -> CliError {
    CliError::Io(message.into())
}

fn model_err(message: impl Into<String>) -> CliError {
    CliError::Model(message.into())
}

/// Classify a [`StoreError`]: transport failures are I/O, everything else
/// (bad magic, truncation, checksum, schema mismatch) is invalid content.
fn store_err(context: &str, error: bclean_store::StoreError) -> CliError {
    match error {
        bclean_store::StoreError::Io { .. } => io_err(format!("{context}: {error}")),
        _ => model_err(format!("{context}: {error}")),
    }
}

fn usage() -> &'static str {
    "usage:
  bclean fit     <data.csv> -o <model.bclean> [-c constraints.bc] [--suggest]
                            [--variant basic|nouc|pi|pip] [--threads N] [--shards N]
                            [--fit-sample ROWS] [--sketch-budget K]
  bclean clean   <data.csv> [-m model.bclean] [-o cleaned.csv] [--repairs repairs.csv]
                            [--report report.json] [-c constraints.bc]
                            [--variant basic|nouc|pi|pip] [--threads N] [--shards N]
                            [--max-repairs N] [--fit-sample ROWS] [--sketch-budget K]
                            [--stream] [--chunk-rows N] [--max-memory BYTES[K|M|G]]
                            [--encoded-cache enc.bclean]
  bclean ingest  <batch.csv> -m <model.bclean> [-o updated.bclean]
  bclean inspect <model.bclean>
  bclean profile <data.csv>
  bclean suggest <data.csv>
  bclean serve   -m <model.bclean> [-m more.bclean]... [--addr HOST:PORT]
                            [--workers N] [--threads N]"
}

fn run(args: &[String]) -> Result<(), CliError> {
    let command = args.first().ok_or_else(|| usage_err("missing command"))?;
    match command.as_str() {
        "fit" => fit_command(&args[1..]),
        "clean" => clean_command(&args[1..]),
        "ingest" => ingest_command(&args[1..]),
        "inspect" => inspect_command(&single_path(&args[1..], "<model.bclean>")?),
        "profile" => profile_command(&single_path(&args[1..], "<data.csv>")?),
        "suggest" => suggest_command(&single_path(&args[1..], "<data.csv>")?),
        "serve" => serve_command(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(usage_err(format!("unknown command {other:?}"))),
    }
}

/// The single positional argument of inspect/profile/suggest. Extra
/// arguments and stray flags are usage errors, not silently dropped — a
/// typo like `bclean inspect a.bclean b.bclean` must not exit 0 having
/// looked at only one file.
fn single_path(args: &[String], what: &str) -> Result<String, CliError> {
    match args {
        [] => Err(usage_err(format!("missing {what}"))),
        [path] if !path.starts_with('-') => Ok(path.clone()),
        [flag] => Err(usage_err(format!("unexpected flag {flag:?}; this command takes only {what}"))),
        [_, extra, ..] => {
            Err(usage_err(format!("unexpected extra argument {extra:?}; this command takes only {what}")))
        }
    }
}

fn load(path: &str) -> Result<Dataset, CliError> {
    read_csv_file(path).map_err(|e| io_err(format!("cannot read {path}: {e}")))
}

/// Shared flag parsing of the fit/clean/ingest commands.
#[derive(Debug, Default)]
struct CommonArgs {
    input: Option<String>,
    output: Option<String>,
    model: Option<String>,
    constraints: Option<String>,
    repairs: Option<String>,
    report: Option<String>,
    variant: Option<Variant>,
    threads: Option<usize>,
    shards: Option<usize>,
    suggest: bool,
    max_repairs: Option<usize>,
    fit_sample: Option<usize>,
    sketch_budget: Option<usize>,
    stream: bool,
    chunk_rows: Option<usize>,
    max_memory: Option<usize>,
    encoded_cache: Option<String>,
}

impl CommonArgs {
    /// The fit budget the budget flags spell out: either flag switches the
    /// fit to `Budgeted`, with the other parameters at their defaults.
    /// `--fit-sample` caps the rows feeding structure learning;
    /// `--sketch-budget` sets both the quantile-sketch capacity and the
    /// per-column heavy-hitter budget.
    fn fit_budget(&self) -> Option<FitBudget> {
        if self.fit_sample.is_none() && self.sketch_budget.is_none() {
            return None;
        }
        let mut params = BudgetParams::default();
        if let Some(rows) = self.fit_sample {
            params.sample_rows = rows;
        }
        if let Some(k) = self.sketch_budget {
            params.sketch_k = k;
            params.heavy_hitters = k;
        }
        Some(FitBudget::Budgeted(params))
    }

    /// The per-chunk bounds the streaming flags spell out. `--chunk-rows`
    /// caps rows per chunk; `--max-memory` caps the raw-chunk buffer at
    /// half the stated budget, leaving the other half as headroom for the
    /// resident encoded columns and the confidence vector (see
    /// docs/ARCHITECTURE.md, "Out-of-core cleaning").
    fn chunk_limits(&self) -> ChunkLimits {
        let mut limits = ChunkLimits::default();
        if let Some(rows) = self.chunk_rows {
            limits = ChunkLimits::rows(rows);
        }
        if let Some(bytes) = self.max_memory {
            limits.max_bytes = (bytes / 2).max(1);
        }
        limits
    }
}

/// Parse a byte count with an optional binary suffix: `65536`, `64K`,
/// `512M`, `2G` (powers of 1024, case-insensitive).
fn parse_bytes(text: &str) -> Result<usize, String> {
    let (digits, multiplier) = match text.char_indices().last() {
        Some((i, 'k' | 'K')) => (&text[..i], 1usize << 10),
        Some((i, 'm' | 'M')) => (&text[..i], 1usize << 20),
        Some((i, 'g' | 'G')) => (&text[..i], 1usize << 30),
        _ => (text, 1usize),
    };
    let value: usize = digits.parse().map_err(|_| format!("invalid byte count {text:?}"))?;
    value.checked_mul(multiplier).ok_or_else(|| format!("byte count {text:?} overflows"))
}

fn parse_common(args: &[String]) -> Result<CommonArgs, CliError> {
    let mut parsed = CommonArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |name: &str| -> Result<String, CliError> {
            args.get(i + 1).cloned().ok_or_else(|| usage_err(format!("missing value after {name}")))
        };
        match args[i].as_str() {
            "-o" | "--output" => {
                parsed.output = Some(flag_value("-o")?);
                i += 2;
            }
            "-m" | "--model" => {
                parsed.model = Some(flag_value("-m")?);
                i += 2;
            }
            "-c" | "--constraints" => {
                parsed.constraints = Some(flag_value("-c")?);
                i += 2;
            }
            "--repairs" => {
                parsed.repairs = Some(flag_value("--repairs")?);
                i += 2;
            }
            "--report" => {
                parsed.report = Some(flag_value("--report")?);
                i += 2;
            }
            "--variant" => {
                parsed.variant = Some(parse_variant(&flag_value("--variant")?).map_err(usage_err)?);
                i += 2;
            }
            "--threads" => {
                let n = flag_value("--threads")?;
                parsed.threads = Some(n.parse().map_err(|_| usage_err(format!("invalid --threads {n:?}")))?);
                i += 2;
            }
            "--shards" => {
                let n = flag_value("--shards")?;
                parsed.shards = Some(n.parse().map_err(|_| usage_err(format!("invalid --shards {n:?}")))?);
                i += 2;
            }
            "--max-repairs" => {
                let n = flag_value("--max-repairs")?;
                parsed.max_repairs =
                    Some(n.parse().map_err(|_| usage_err(format!("invalid --max-repairs {n:?}")))?);
                i += 2;
            }
            "--fit-sample" => {
                let n = flag_value("--fit-sample")?;
                parsed.fit_sample =
                    Some(n.parse().map_err(|_| usage_err(format!("invalid --fit-sample {n:?}")))?);
                i += 2;
            }
            "--sketch-budget" => {
                let n = flag_value("--sketch-budget")?;
                parsed.sketch_budget =
                    Some(n.parse().map_err(|_| usage_err(format!("invalid --sketch-budget {n:?}")))?);
                i += 2;
            }
            "--stream" => {
                parsed.stream = true;
                i += 1;
            }
            "--chunk-rows" => {
                let n = flag_value("--chunk-rows")?;
                parsed.chunk_rows =
                    Some(n.parse().map_err(|_| usage_err(format!("invalid --chunk-rows {n:?}")))?);
                i += 2;
            }
            "--max-memory" => {
                let n = flag_value("--max-memory")?;
                parsed.max_memory = Some(parse_bytes(&n).map_err(usage_err)?);
                i += 2;
            }
            "--encoded-cache" => {
                parsed.encoded_cache = Some(flag_value("--encoded-cache")?);
                i += 2;
            }
            "--suggest" => {
                parsed.suggest = true;
                i += 1;
            }
            path if parsed.input.is_none() && !path.starts_with('-') => {
                parsed.input = Some(path.to_string());
                i += 1;
            }
            other => return Err(usage_err(format!("unexpected argument {other:?}"))),
        }
    }
    Ok(parsed)
}

fn parse_variant(name: &str) -> Result<Variant, String> {
    match name.to_ascii_lowercase().as_str() {
        "basic" => Ok(Variant::Basic),
        "nouc" | "no-uc" => Ok(Variant::NoUserConstraints),
        "pi" => Ok(Variant::PartitionedInference),
        "pip" => Ok(Variant::PartitionedInferencePruning),
        other => Err(format!("unknown variant {other:?} (expected basic, nouc, pi or pip)")),
    }
}

/// Error when flags that this command would silently ignore are present —
/// a dropped `-c stricter_rules.bc` must never look applied.
fn reject_unused_flags(context: &str, flags: &[(&str, bool)]) -> Result<(), CliError> {
    for (name, present) in flags {
        if *present {
            return Err(usage_err(format!("{name} has no effect {context}")));
        }
    }
    Ok(())
}

/// Resolve the constraint set of a fit: an explicit `-c` file, or
/// auto-suggestion (`--suggest`, also the default when `-c` is absent so
/// `bclean fit data.csv` works out of the box; the suggestion source is
/// reported on stderr). Passing both is a conflict, not a silent pick.
fn resolve_constraints(data: &Dataset, args: &CommonArgs) -> Result<ConstraintSet, CliError> {
    if let Some(path) = &args.constraints {
        if args.suggest {
            return Err(usage_err("pass either -c <constraints.bc> or --suggest, not both"));
        }
        let text = std::fs::read_to_string(path).map_err(|e| io_err(format!("cannot read {path}: {e}")))?;
        return ConstraintSet::from_spec_text(&text).map_err(|e| model_err(format!("{path}: {e}")));
    }
    let (suggested, suggestions) = suggest_constraints(data, SuggestConfig::default());
    eprintln!("using {} auto-suggested constraints (see `bclean suggest`)", suggestions.len());
    Ok(suggested)
}

fn fit_command(args: &[String]) -> Result<(), CliError> {
    let args = parse_common(args)?;
    // Flags that only the clean/ingest commands consume must not pass
    // silently: `bclean fit data.csv -o m.bclean --repairs r.csv` exiting 0
    // without writing r.csv looks like success.
    reject_unused_flags(
        "when fitting (it belongs to `bclean clean`/`bclean ingest`)",
        &[
            ("-m/--model", args.model.is_some()),
            ("--repairs", args.repairs.is_some()),
            ("--report", args.report.is_some()),
            ("--max-repairs", args.max_repairs.is_some()),
            ("--stream", args.stream),
            ("--chunk-rows", args.chunk_rows.is_some()),
            ("--max-memory", args.max_memory.is_some()),
            ("--encoded-cache", args.encoded_cache.is_some()),
        ],
    )?;
    let input = args.input.as_deref().ok_or_else(|| usage_err("missing <data.csv>"))?;
    let output = args.output.as_deref().ok_or_else(|| usage_err("missing -o <model.bclean>"))?;
    let data = load(input)?;
    let constraints = resolve_constraints(&data, &args)?;
    let variant = args.variant.unwrap_or(Variant::PartitionedInference);
    let mut config = variant.config();
    if let Some(threads) = args.threads {
        config = config.with_threads(threads);
    }
    if let Some(shards) = args.shards {
        config = config.with_shards(shards);
    }
    if let Some(budget) = args.fit_budget() {
        config = config.with_fit_budget(budget);
        let p = budget.params().expect("the flags always spell a budgeted fit");
        eprintln!(
            "budgeted fit: structure sample {} rows, sketch capacity {}, {} heavy hitters per column",
            p.sample_rows, p.sketch_k, p.heavy_hitters
        );
    }
    let start = std::time::Instant::now();
    let artifact = BClean::new(config).with_constraints(constraints).fit_artifact(&data);
    artifact.save(output).map_err(|e| store_err(&format!("cannot save {output}"), e))?;
    println!(
        "fit {} rows x {} columns ({}) in {:?}",
        data.num_rows(),
        data.num_columns(),
        variant.name(),
        start.elapsed()
    );
    println!(
        "model written to {output} (schema hash {:016x}, {} structure edges)",
        artifact.schema_hash(),
        artifact.dag().num_edges()
    );
    Ok(())
}

fn clean_command(args: &[String]) -> Result<(), CliError> {
    let args = parse_common(args)?;
    if args.stream {
        return stream_clean_command(&args);
    }
    // The chunking flags shape only the streaming pipeline; accepted and
    // ignored they would look like a memory bound that was never enforced.
    reject_unused_flags(
        "without --stream",
        &[
            ("--chunk-rows", args.chunk_rows.is_some()),
            ("--max-memory", args.max_memory.is_some()),
            ("--encoded-cache", args.encoded_cache.is_some()),
        ],
    )?;
    let input = args.input.as_deref().ok_or_else(|| usage_err("missing <data.csv>"))?;
    let data = load(input)?;

    let result = match &args.model {
        // The fit-once/clean-many path: load the persisted artifact and
        // clean against its model — no fitting in this process, so the
        // fit-shaping flags must not pretend to apply.
        Some(path) => {
            reject_unused_flags(
                "when cleaning with -m (the artifact's persisted constraints and variant apply)",
                &[
                    ("-c/--constraints", args.constraints.is_some()),
                    ("--variant", args.variant.is_some()),
                    ("--suggest", args.suggest),
                    ("--fit-sample", args.fit_sample.is_some()),
                    ("--sketch-budget", args.sketch_budget.is_some()),
                ],
            )?;
            let mut artifact =
                ModelArtifact::load(path).map_err(|e| store_err(&format!("cannot load {path}"), e))?;
            artifact.check_schema(data.schema()).map_err(|e| model_err(format!("{input}: {e}")))?;
            if let Some(threads) = args.threads {
                artifact.set_threads(threads);
            }
            if let Some(shards) = args.shards {
                artifact.set_shards(shards);
            }
            artifact.compile().clean(&data)
        }
        // The one-shot path: fit in process (legacy `bclean clean data.csv`).
        None => {
            let constraints = resolve_constraints(&data, &args)?;
            let variant = args.variant.unwrap_or(Variant::PartitionedInference);
            let mut config = variant.config();
            if let Some(threads) = args.threads {
                config = config.with_threads(threads);
            }
            if let Some(shards) = args.shards {
                config = config.with_shards(shards);
            }
            if let Some(budget) = args.fit_budget() {
                config = config.with_fit_budget(budget);
            }
            let model = BClean::new(config).with_constraints(constraints).fit(&data);
            model.clean(&data)
        }
    };

    println!(
        "{} repairs across {} cells ({} rows) in {:?}",
        result.repairs.len(),
        data.num_cells(),
        data.num_rows(),
        result.stats.duration
    );
    print_repair_lines(&result.repairs, args.max_repairs.unwrap_or(50));

    if let Some(path) = &args.output {
        write_csv_file(&result.cleaned, path).map_err(|e| io_err(format!("cannot write {path}: {e}")))?;
        println!("cleaned dataset written to {path}");
    }
    if let Some(path) = &args.repairs {
        std::fs::write(path, repairs_to_csv(&result.repairs))
            .map_err(|e| io_err(format!("cannot write {path}: {e}")))?;
        println!("repairs written to {path}");
    }
    if let Some(path) = &args.report {
        std::fs::write(path, report_json(input, &result))
            .map_err(|e| io_err(format!("cannot write {path}: {e}")))?;
        println!("report written to {path}");
    }
    Ok(())
}

/// `bclean clean --stream`: the out-of-core path. The CSV is read in
/// bounded chunks (never fully resident), the fit accumulates the encoding
/// and per-row confidences chunk by chunk, and cleaning re-decodes bounded
/// windows — repairs and artifact are bit-identical to the in-RAM run (see
/// `bclean_core::stream`). With `--encoded-cache`, the encoding persists
/// as a `.bclean` file keyed by a fingerprint of the source bytes, so a
/// re-clean of the same file skips the parse and encode passes.
fn stream_clean_command(args: &CommonArgs) -> Result<(), CliError> {
    let input = args.input.as_deref().ok_or_else(|| usage_err("missing <data.csv>"))?;
    let limits = args.chunk_limits();
    let mut source =
        CsvFileChunks::open(input, limits).map_err(|e| io_err(format!("cannot stream {input}: {e}")))?;
    let mut options = StreamOptions {
        limits,
        cleaned_path: args.output.as_ref().map(std::path::PathBuf::from),
        ..StreamOptions::default()
    };

    let outcome = match &args.model {
        // Stream-clean against a persisted model: no fitting, one pass.
        Some(path) => {
            reject_unused_flags(
                "when cleaning with -m (the artifact's persisted constraints and variant apply)",
                &[
                    ("-c/--constraints", args.constraints.is_some()),
                    ("--variant", args.variant.is_some()),
                    ("--suggest", args.suggest),
                    ("--fit-sample", args.fit_sample.is_some()),
                    ("--sketch-budget", args.sketch_budget.is_some()),
                    ("--encoded-cache", args.encoded_cache.is_some()),
                ],
            )?;
            let mut artifact =
                ModelArtifact::load(path).map_err(|e| store_err(&format!("cannot load {path}"), e))?;
            artifact.check_schema(source.schema()).map_err(|e| model_err(format!("{input}: {e}")))?;
            if let Some(threads) = args.threads {
                artifact.set_threads(threads);
            }
            if let Some(shards) = args.shards {
                artifact.set_shards(shards);
            }
            let model = artifact.compile();
            clean_stream_with_model(&model, &mut source, &options).map_err(|e| stream_err(input, e))?
        }
        // Stream fit + clean in one process. Constraint auto-suggestion
        // needs the whole dataset in memory — exactly what --stream rules
        // out — so the constraints file must be explicit.
        None => {
            if args.suggest {
                return Err(usage_err("--suggest needs the full dataset in memory; --stream requires an explicit -c <constraints.bc>"));
            }
            let constraints_path = args.constraints.as_deref().ok_or_else(|| {
                usage_err("--stream requires -c <constraints.bc> (constraint auto-suggestion needs the full dataset in memory)")
            })?;
            let text = std::fs::read_to_string(constraints_path)
                .map_err(|e| io_err(format!("cannot read {constraints_path}: {e}")))?;
            let constraints = ConstraintSet::from_spec_text(&text)
                .map_err(|e| model_err(format!("{constraints_path}: {e}")))?;
            let variant = args.variant.unwrap_or(Variant::PartitionedInference);
            let mut config = variant.config();
            if let Some(threads) = args.threads {
                config = config.with_threads(threads);
            }
            if let Some(shards) = args.shards {
                config = config.with_shards(shards);
            }
            if let Some(budget) = args.fit_budget() {
                config = config.with_fit_budget(budget);
            }
            if let Some(cache) = &args.encoded_cache {
                options.cache_path = Some(std::path::PathBuf::from(cache));
                options.fingerprint = Some(
                    SourceFingerprint::of_file(std::path::Path::new(input))
                        .map_err(|e| store_err(&format!("cannot fingerprint {input}"), e))?,
                );
            }
            let cleaner = BClean::new(config).with_constraints(constraints);
            clean_stream(&cleaner, &mut source, &options).map_err(|e| stream_err(input, e))?
        }
    };

    println!(
        "{} repairs across {} rows in {} chunks in {:?} (peak chunk memory ~{})",
        outcome.repairs.len(),
        outcome.rows,
        outcome.chunks,
        outcome.stats.duration + outcome.stats.fit_duration,
        format_bytes(outcome.peak_bytes)
    );
    if outcome.encode_skipped {
        println!("encoded-dataset cache hit: parse and encode passes skipped");
    } else if outcome.cache_written {
        println!("encoded dataset cached to {}", args.encoded_cache.as_deref().unwrap_or_default());
    }
    print_repair_lines(&outcome.repairs, args.max_repairs.unwrap_or(50));

    if let Some(path) = &args.output {
        println!("cleaned dataset written to {path}");
    }
    if let Some(path) = &args.repairs {
        std::fs::write(path, repairs_to_csv(&outcome.repairs))
            .map_err(|e| io_err(format!("cannot write {path}: {e}")))?;
        println!("repairs written to {path}");
    }
    if let Some(path) = &args.report {
        std::fs::write(path, stream_report_json(input, &outcome))
            .map_err(|e| io_err(format!("cannot write {path}: {e}")))?;
        println!("report written to {path}");
    }
    Ok(())
}

/// Classify a [`StreamError`]: data-layer failures follow the CSV-loading
/// convention (exit 3), store-layer failures follow [`store_err`].
fn stream_err(input: &str, error: StreamError) -> CliError {
    match error {
        StreamError::Data(e) => io_err(format!("cannot stream {input}: {e}")),
        StreamError::Store(e) => store_err(&format!("encoded cache for {input}"), e),
    }
}

/// The shared per-repair console lines of `bclean clean` and
/// `bclean clean --stream`.
fn print_repair_lines(repairs: &[Repair], shown: usize) {
    for repair in repairs.iter().take(shown) {
        println!(
            "  row {:<6} {:<22} {:?} -> {:?}",
            repair.at.row,
            repair.attribute,
            repair.from.to_string(),
            repair.to.to_string()
        );
    }
    if repairs.len() > shown {
        println!("  … and {} more (raise --max-repairs to see them)", repairs.len() - shown);
    }
}

/// Human-readable binary byte count for console summaries.
fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

fn ingest_command(args: &[String]) -> Result<(), CliError> {
    let args = parse_common(args)?;
    reject_unused_flags(
        "when ingesting (the artifact's persisted configuration applies)",
        &[
            ("-c/--constraints", args.constraints.is_some()),
            ("--variant", args.variant.is_some()),
            ("--suggest", args.suggest),
            ("--repairs", args.repairs.is_some()),
            ("--report", args.report.is_some()),
            ("--threads", args.threads.is_some()),
            ("--shards", args.shards.is_some()),
            ("--max-repairs", args.max_repairs.is_some()),
            ("--fit-sample", args.fit_sample.is_some()),
            ("--sketch-budget", args.sketch_budget.is_some()),
            ("--stream", args.stream),
            ("--chunk-rows", args.chunk_rows.is_some()),
            ("--max-memory", args.max_memory.is_some()),
            ("--encoded-cache", args.encoded_cache.is_some()),
        ],
    )?;
    let input = args.input.as_deref().ok_or_else(|| usage_err("missing <batch.csv>"))?;
    let model_path = args.model.as_deref().ok_or_else(|| usage_err("missing -m <model.bclean>"))?;
    let output = args.output.as_deref().unwrap_or(model_path);
    let batch = load(input)?;
    let mut artifact =
        ModelArtifact::load(model_path).map_err(|e| store_err(&format!("cannot load {model_path}"), e))?;
    let before = artifact.num_rows();
    let after = artifact.ingest_batch(&batch).map_err(|e| model_err(format!("{input}: {e}")))?;
    artifact.save(output).map_err(|e| store_err(&format!("cannot save {output}"), e))?;
    println!(
        "absorbed {} rows ({} -> {} total); updated model written to {output}",
        batch.num_rows(),
        before,
        after
    );
    println!("(statistics updated incrementally; structure kept — refit with `bclean fit` to relearn it)");
    Ok(())
}

/// `bclean serve`: run the resident cleaning daemon (see `bclean-serve`
/// and the README's "Serving" section). Blocks until a `POST /shutdown`
/// arrives or the process is killed.
fn serve_command(args: &[String]) -> Result<(), CliError> {
    let mut config = bclean_serve::ServerConfig::default();
    let mut threads: Option<usize> = None;
    let mut models: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |name: &str| -> Result<String, CliError> {
            args.get(i + 1).cloned().ok_or_else(|| usage_err(format!("missing value after {name}")))
        };
        match args[i].as_str() {
            "-m" | "--model" => {
                models.push(flag_value("-m")?);
                i += 2;
            }
            "--addr" => {
                config.addr = flag_value("--addr")?;
                i += 2;
            }
            "--workers" => {
                let n = flag_value("--workers")?;
                config.workers = n.parse().map_err(|_| usage_err(format!("invalid --workers {n:?}")))?;
                i += 2;
            }
            "--threads" => {
                let n = flag_value("--threads")?;
                threads = Some(n.parse().map_err(|_| usage_err(format!("invalid --threads {n:?}")))?);
                i += 2;
            }
            other => return Err(usage_err(format!("unexpected argument {other:?}"))),
        }
    }
    if models.is_empty() {
        return Err(usage_err("missing -m <model.bclean> (at least one model to serve)"));
    }
    if config.workers == 0 {
        return Err(usage_err("--workers must be at least 1"));
    }

    let registry = std::sync::Arc::new(bclean_serve::ModelRegistry::new());
    for path in &models {
        let mut artifact =
            ModelArtifact::load(path).map_err(|e| store_err(&format!("cannot load {path}"), e))?;
        if let Some(threads) = threads {
            artifact.set_threads(threads);
        }
        let rows = artifact.num_rows();
        let hash = registry.register(artifact);
        println!("loaded {path} (schema hash {hash:016x}, {rows} rows)");
    }

    let server = bclean_serve::Server::bind(&config, registry)
        .map_err(|e| io_err(format!("cannot bind {}: {e}", config.addr)))?;
    let addr = server.local_addr().map_err(|e| io_err(format!("cannot resolve bound address: {e}")))?;
    // Announce readiness on a line of its own and flush, so wrappers (the
    // CI smoke job, the tests) can wait for it before sending traffic.
    println!("bclean serve listening on {addr} ({} workers, {} models)", config.workers, models.len());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| io_err(format!("serve loop failed: {e}")))
}

fn inspect_command(path: &str) -> Result<(), CliError> {
    let bytes = read_container_file(std::path::Path::new(path)).map_err(|e| store_err(path, e))?;
    let container = ContainerReader::parse(&bytes).map_err(|e| store_err(path, e))?;
    let artifact = ModelArtifact::from_bytes(&bytes).map_err(|e| store_err(path, e))?;
    println!("{path}: bclean model artifact, format version {}", container.version());
    println!("  schema hash   {:016x}", artifact.schema_hash());
    println!("  rows absorbed {}", artifact.num_rows());
    match artifact.config().fit_budget.params() {
        None => println!("  fit budget    exact"),
        Some(p) => println!(
            "  fit budget    budgeted (sample {}, sketch {}, heavy hitters {})",
            p.sample_rows, p.sketch_k, p.heavy_hitters
        ),
    }
    let names = artifact.attribute_names();
    println!("  attributes    {}", names.len());
    for (name, ty) in names.iter().zip(artifact.attribute_types()) {
        println!("    {name} ({ty})");
    }
    let edges = artifact.dag().edges();
    println!("  structure     {} edges", edges.len());
    for (from, to) in edges {
        println!("    {} -> {}", names[from], names[to]);
    }
    println!(
        "  constraints   {} per-attribute, {} tuple rules",
        artifact.constraints().len(),
        artifact.constraints().num_row_rules()
    );
    println!("  sections");
    for (id, size) in container.section_sizes() {
        println!("    {:<14} {size} bytes", id.name());
    }
    println!("  total         {} bytes", bytes.len());
    Ok(())
}

fn profile_command(path: &str) -> Result<(), CliError> {
    let data = load(path)?;
    let profile = DatasetProfile::profile(&data);
    println!("{} rows x {} columns\n", data.num_rows(), data.num_columns());
    println!("{}", profile.summary());
    let outliers = find_outliers(&data, OutlierConfig::default());
    println!("Suspicious cells: {}", outliers.len());
    for o in outliers.iter().take(20) {
        println!(
            "  row {:<6} {:<20} {:<10} severity {:>7.1}  value {:?}",
            o.at.row,
            o.attribute,
            format!("{:?}", o.kind),
            o.severity,
            o.value.to_string()
        );
    }
    if outliers.len() > 20 {
        println!("  … and {} more", outliers.len() - 20);
    }
    Ok(())
}

fn suggest_command(path: &str) -> Result<(), CliError> {
    let data = load(path)?;
    let (_, suggestions) = suggest_constraints(&data, SuggestConfig::default());
    println!("# Draft constraints file generated by `bclean suggest {path}`");
    println!("# Review each line, delete what you disagree with, then pass the");
    println!("# file to `bclean fit {path} -c <this file> -o model.bclean`.");
    for s in &suggestions {
        let spec = constraint_to_spec(&s.constraint);
        println!("{}: {:<40} # {}", s.attribute, spec, s.rationale);
    }
    Ok(())
}

fn constraint_to_spec(constraint: &UserConstraint) -> String {
    constraint.to_spec().unwrap_or_else(|_| "# custom constraint (not expressible in a file)".to_string())
}

/// Machine-readable cleaning report (the workspace builds offline, so the
/// JSON is written by hand like the `BENCH_*.json` snapshots).
fn report_json(input: &str, result: &bclean_core::CleaningResult) -> String {
    let mut repairs = String::new();
    for (i, repair) in result.repairs.iter().enumerate() {
        let _ = write!(
            repairs,
            "    {{\"row\": {}, \"col\": {}, \"attribute\": {}, \"from\": {}, \"to\": {}, \
             \"score_gain\": {}}}{}",
            repair.at.row,
            repair.at.col,
            json_string(&repair.attribute),
            json_string(&repair.from.to_string()),
            json_string(&repair.to.to_string()),
            json_number(repair.score_gain),
            if i + 1 < result.repairs.len() { ",\n" } else { "\n" }
        );
    }
    format!(
        "{{\n  \"input\": {},\n  \"rows\": {},\n  \"cells_examined\": {},\n  \"cells_skipped\": {},\n  \
         \"candidates_evaluated\": {},\n  \"num_repairs\": {},\n  \"clean_seconds\": {:.6},\n  \
         \"repairs\": [\n{}  ]\n}}\n",
        json_string(input),
        result.cleaned.num_rows(),
        result.stats.cells_examined,
        result.stats.cells_skipped,
        result.stats.candidates_evaluated,
        result.repairs.len(),
        result.stats.duration.as_secs_f64(),
        repairs
    )
}

/// Machine-readable report of a streaming clean: the [`report_json`] keys
/// plus the out-of-core telemetry (chunks, peak-memory proxy, cache state).
fn stream_report_json(input: &str, outcome: &StreamOutcome) -> String {
    let mut repairs = String::new();
    for (i, repair) in outcome.repairs.iter().enumerate() {
        let _ = write!(
            repairs,
            "    {{\"row\": {}, \"col\": {}, \"attribute\": {}, \"from\": {}, \"to\": {}, \
             \"score_gain\": {}}}{}",
            repair.at.row,
            repair.at.col,
            json_string(&repair.attribute),
            json_string(&repair.from.to_string()),
            json_string(&repair.to.to_string()),
            json_number(repair.score_gain),
            if i + 1 < outcome.repairs.len() { ",\n" } else { "\n" }
        );
    }
    format!(
        "{{\n  \"input\": {},\n  \"rows\": {},\n  \"cells_examined\": {},\n  \"cells_skipped\": {},\n  \
         \"candidates_evaluated\": {},\n  \"num_repairs\": {},\n  \"clean_seconds\": {:.6},\n  \
         \"fit_seconds\": {:.6},\n  \"chunks\": {},\n  \"peak_bytes\": {},\n  \
         \"encode_skipped\": {},\n  \"repairs\": [\n{}  ]\n}}\n",
        json_string(input),
        outcome.rows,
        outcome.stats.cells_examined,
        outcome.stats.cells_skipped,
        outcome.stats.candidates_evaluated,
        outcome.repairs.len(),
        outcome.stats.duration.as_secs_f64(),
        outcome.stats.fit_duration.as_secs_f64(),
        outcome.chunks,
        outcome.peak_bytes,
        outcome.encode_skipped,
        repairs
    )
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no infinities; score gains of constraint-violating originals
/// are +inf, so clamp into a representable sentinel.
fn json_number(n: f64) -> String {
    if n.is_finite() {
        format!("{n}")
    } else if n > 0.0 {
        "1e308".to_string()
    } else {
        "-1e308".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_core::Repair;
    use bclean_data::{CellRef, Value};

    #[test]
    fn constraints_files_still_parse() {
        let text = "
# a comment line
ZipCode: pattern [1-9][0-9]{4,4}
State:   max_len 2          # trailing comment
State:   not_null
score:   min_value 0
score:   max_value 10
name:    min_len 3
abv:     num(value) >= 0 && num(value) <= 1
rule:    ends_with(code, zip)
";
        let set = ConstraintSet::from_spec_text(text).unwrap();
        assert_eq!(set.len(), 7);
        assert_eq!(set.num_row_rules(), 1);
        assert!(set.check("ZipCode", &Value::parse("35150")));
        assert!(!set.check("ZipCode", &Value::text("3515x")));
        assert!(!set.check("State", &Value::text("California")));
    }

    #[test]
    fn variant_names_parse() {
        assert_eq!(parse_variant("pi").unwrap(), Variant::PartitionedInference);
        assert_eq!(parse_variant("PIP").unwrap(), Variant::PartitionedInferencePruning);
        assert_eq!(parse_variant("basic").unwrap(), Variant::Basic);
        assert_eq!(parse_variant("nouc").unwrap(), Variant::NoUserConstraints);
        assert!(parse_variant("fast").is_err());
    }

    #[test]
    fn spec_round_trips_through_suggestions_format() {
        for constraint in [
            UserConstraint::MinLength(3),
            UserConstraint::MaxLength(9),
            UserConstraint::MinValue(1.5),
            UserConstraint::MaxValue(10.0),
            UserConstraint::NotNull,
            UserConstraint::pattern("[0-9]{5}").unwrap(),
            UserConstraint::expression("len(value) == 5").unwrap(),
        ] {
            let spec = constraint_to_spec(&constraint);
            let reparsed = UserConstraint::parse_spec(&spec).unwrap();
            assert_eq!(format!("{constraint:?}"), format!("{reparsed:?}"), "spec {spec:?}");
        }
    }

    #[test]
    fn flag_parsing_covers_all_forms() {
        let args: Vec<String> = [
            "data.csv",
            "-m",
            "model.bclean",
            "-o",
            "out.csv",
            "--repairs",
            "r.csv",
            "--report",
            "r.json",
            "--variant",
            "pip",
            "--threads",
            "2",
            "--shards",
            "4",
            "--max-repairs",
            "7",
            "--suggest",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = parse_common(&args).unwrap();
        assert_eq!(parsed.input.as_deref(), Some("data.csv"));
        assert_eq!(parsed.model.as_deref(), Some("model.bclean"));
        assert_eq!(parsed.output.as_deref(), Some("out.csv"));
        assert_eq!(parsed.repairs.as_deref(), Some("r.csv"));
        assert_eq!(parsed.report.as_deref(), Some("r.json"));
        assert_eq!(parsed.variant, Some(Variant::PartitionedInferencePruning));
        assert_eq!(parsed.threads, Some(2));
        assert_eq!(parsed.shards, Some(4));
        assert_eq!(parsed.max_repairs, Some(7));
        assert!(parsed.suggest);
        assert!(parse_common(&["--threads".to_string()]).is_err());
        assert!(parse_common(&["--threads".to_string(), "x".to_string()]).is_err());
        assert!(parse_common(&["--bogus".to_string()]).is_err());
    }

    #[test]
    fn stream_flags_parse_and_shape_chunk_limits() {
        let args: Vec<String> = [
            "data.csv",
            "--stream",
            "--chunk-rows",
            "512",
            "--max-memory",
            "64M",
            "--encoded-cache",
            "enc.bclean",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = parse_common(&args).unwrap();
        assert!(parsed.stream);
        assert_eq!(parsed.chunk_rows, Some(512));
        assert_eq!(parsed.max_memory, Some(64 << 20));
        assert_eq!(parsed.encoded_cache.as_deref(), Some("enc.bclean"));
        let limits = parsed.chunk_limits();
        assert_eq!(limits.max_rows, 512);
        assert_eq!(limits.max_bytes, 32 << 20);
        // Defaults when no flags are set.
        let bare = CommonArgs::default().chunk_limits();
        assert_eq!(bare.max_rows, ChunkLimits::default().max_rows);
        assert_eq!(bare.max_bytes, usize::MAX);
    }

    #[test]
    fn byte_counts_parse_with_binary_suffixes() {
        assert_eq!(parse_bytes("65536").unwrap(), 65536);
        assert_eq!(parse_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("64K").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("3M").unwrap(), 3 << 20);
        assert_eq!(parse_bytes("2G").unwrap(), 2 << 30);
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("M").is_err());
        assert!(parse_bytes("12Q").is_err());
    }

    #[test]
    fn human_byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(64 << 10), "64.0 KiB");
        assert_eq!(format_bytes((3 << 20) + (512 << 10)), "3.5 MiB");
    }

    #[test]
    fn repairs_csv_quotes_and_formats() {
        let repairs = vec![Repair {
            at: CellRef::new(3, 1),
            attribute: "City, State".into(),
            from: Value::text("a\"b"),
            to: Value::text("plain"),
            score_gain: 1.5,
        }];
        let csv = repairs_to_csv(&repairs);
        assert_eq!(csv, "row,attribute,from,to,score_gain\n3,\"City, State\",\"a\"\"b\",plain,1.5\n");
    }

    #[test]
    fn report_json_is_well_formed_and_escaped() {
        let cleaned = bclean_data::dataset_from(&["a"], &[vec!["x"]]);
        let result = bclean_core::CleaningResult {
            cleaned,
            repairs: vec![Repair {
                at: CellRef::new(0, 0),
                attribute: "a\"quote".into(),
                from: Value::Null,
                to: Value::text("x\n"),
                score_gain: f64::INFINITY,
            }],
            stats: Default::default(),
        };
        let json = report_json("in.csv", &result);
        assert!(json.contains("\"a\\\"quote\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("1e308"));
        assert!(json.contains("\"num_repairs\": 1"));
        assert_eq!(json_number(f64::NEG_INFINITY), "-1e308");
    }
}
