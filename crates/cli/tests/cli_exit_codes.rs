//! The CLI's exit-code contract: `0` success, `2` usage error (with usage
//! text), `3` file I/O failure, `4` invalid input content. Scripts branch
//! on these, so each class is pinned cross-process here — most of these
//! invocations used to exit `1` (or worse, `0`) before the classification
//! existed.

use std::path::PathBuf;
use std::process::Command;

/// Run the binary, returning (exit code, stdout, stderr).
fn bclean(args: &[&str]) -> (i32, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_bclean"))
        .args(args)
        .output()
        .expect("the bclean binary must launch");
    (
        output.status.code().expect("not signal-killed"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn assert_code(args: &[&str], expected: i32) -> String {
    let (code, stdout, stderr) = bclean(args);
    assert_eq!(code, expected, "bclean {args:?}\nstdout: {stdout}\nstderr: {stderr}");
    stderr
}

struct Workspace {
    dir: PathBuf,
}

impl Workspace {
    fn new(label: &str) -> Workspace {
        let dir = std::env::temp_dir().join(format!("bclean-exit-{label}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp workspace");
        Workspace { dir }
    }

    fn file(&self, name: &str, contents: &[u8]) -> String {
        let path = self.dir.join(name);
        std::fs::write(&path, contents).expect("write fixture");
        path.display().to_string()
    }

    fn str(&self, name: &str) -> String {
        self.dir.join(name).display().to_string()
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

const TINY_CSV: &[u8] = b"City,State\nsylacauga,AL\nsylacauga,AL\nsylacauga,XX\ncentre,AL\ncentre,AL\n";

#[test]
fn success_and_help_exit_zero() {
    let (code, stdout, _) = bclean(&["--help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("usage:"));
}

#[test]
fn usage_errors_exit_2_and_print_usage() {
    let ws = Workspace::new("usage");
    let csv = ws.file("tiny.csv", TINY_CSV);
    let cases: &[&[&str]] = &[
        &[],                                                             // missing command
        &["frobnicate"],                                                 // unknown command
        &["fit"],                                                        // missing <data.csv>
        &["fit", &csv],                                                  // missing -o
        &["fit", &csv, "-o", &ws.str("m.bclean"), "--repairs", "r.csv"], // flag of another command
        &["fit", &csv, "-o"],                                            // flag without a value
        &["clean", &csv, "--threads", "many"],                           // unparsable value
        &["clean", &csv, "--bogus"],                                     // unknown flag
        &["ingest", &csv],                                               // missing -m
        &["inspect"],                                                    // missing path
        &["inspect", "a.bclean", "b.bclean"],                            // extra argument
        &["profile", "--verbose"],                                       // stray flag
        &["serve"],                                                      // missing -m
        &["serve", "-m", "m.bclean", "--workers", "0"],                  // zero workers
        &["serve", "-m", "m.bclean", "--addr"],                          // flag without a value
    ];
    for args in cases {
        let stderr = assert_code(args, 2);
        assert!(stderr.contains("usage:"), "bclean {args:?} printed no usage text:\n{stderr}");
    }
}

#[test]
fn conflicting_flags_exit_2_even_with_readable_inputs() {
    let ws = Workspace::new("conflict");
    let csv = ws.file("tiny.csv", TINY_CSV);
    let model = ws.str("tiny.bclean");
    assert_code(&["fit", &csv, "-o", &model], 0);
    // -m loads a persisted fit; fit-shaping flags alongside it must refuse,
    // not silently not apply.
    for extra in [["-c", "rules.bc"], ["--variant", "pip"], ["--fit-sample", "10"]] {
        let stderr = assert_code(&["clean", &csv, "-m", &model, extra[0], extra[1]], 2);
        assert!(stderr.contains("no effect"), "expected a flag-conflict error:\n{stderr}");
    }
    assert_code(&["ingest", &csv, "-m", &model, "--threads", "2"], 2);
}

#[test]
fn io_failures_exit_3() {
    let ws = Workspace::new("io");
    let missing = ws.str("does-not-exist.csv");
    let stderr = assert_code(&["clean", &missing], 3);
    assert!(!stderr.contains("usage:"), "I/O errors must not bury themselves in usage text");
    assert_code(&["fit", &missing, "-o", &ws.str("m.bclean")], 3);
    assert_code(&["profile", &missing], 3);
    assert_code(&["inspect", &ws.str("does-not-exist.bclean")], 3);
    assert_code(&["serve", "-m", &ws.str("does-not-exist.bclean")], 3);
    // The input side is fine here; the output directory does not exist.
    let csv = ws.file("tiny.csv", TINY_CSV);
    assert_code(&["fit", &csv, "-o", &ws.str("no-such-dir/m.bclean")], 3);
}

#[test]
fn invalid_content_exits_4() {
    let ws = Workspace::new("content");
    let csv = ws.file("tiny.csv", TINY_CSV);

    // Not a .bclean container at all.
    let garbage = ws.file("garbage.bclean", b"definitely not a model artifact");
    assert_code(&["inspect", &garbage], 4);
    assert_code(&["clean", &csv, "-m", &garbage], 4);
    assert_code(&["serve", "-m", &garbage], 4);

    // A real model fed data of another schema.
    let model = ws.str("tiny.bclean");
    assert_code(&["fit", &csv, "-o", &model], 0);
    let drifted = ws.file("drifted.csv", b"Entirely,Other,Header\na,b,c\n");
    assert_code(&["clean", &drifted, "-m", &model], 4);
    assert_code(&["ingest", &drifted, "-m", &model], 4);

    // A corrupted container: the checksum rejects the content.
    let mut bytes = std::fs::read(&model).expect("model bytes");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    let corrupt = ws.file("corrupt.bclean", &bytes);
    assert_code(&["clean", &csv, "-m", &corrupt], 4);

    // An unparsable constraints file.
    let bad_spec = ws.file("bad.bc", b"City: pattern [unclosed\n");
    assert_code(&["fit", &csv, "-o", &ws.str("m2.bclean"), "-c", &bad_spec], 4);
}
