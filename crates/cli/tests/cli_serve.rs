//! Cross-process daemon equivalence: a real `bclean serve` child process,
//! driven over real sockets, must answer `/clean`, `/ingest` and
//! `/artifact` with bytes identical to the one-shot `bclean clean` /
//! `bclean ingest` invocations on the same inputs.

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use bclean_core::ModelArtifact;
use bclean_data::{read_csv_file, write_csv_file, Dataset};
use bclean_datagen::BenchmarkDataset;
use bclean_eval::bclean_constraints;
use bclean_serve::http::client;

const ROWS: usize = 120;
const SEED: u64 = 20240817;
const TIMEOUT: Duration = Duration::from_secs(30);

/// Run the compiled `bclean` binary to completion, panicking on failure.
fn bclean(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_bclean"))
        .args(args)
        .output()
        .expect("the bclean binary must launch");
    assert!(
        output.status.success(),
        "bclean {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

struct Workspace {
    dir: PathBuf,
}

impl Workspace {
    fn new(label: &str) -> Workspace {
        let dir = std::env::temp_dir().join(format!("bclean-serve-{label}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp workspace");
        Workspace { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn str(&self, name: &str) -> String {
        self.path(name).display().to_string()
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// A `bclean serve` child process, killed on drop so a failing assertion
/// never leaks a daemon.
struct ServeChild {
    child: Child,
    addr: SocketAddr,
}

impl ServeChild {
    /// Spawn `bclean serve` on a free port and wait for its readiness line.
    fn spawn(extra_args: &[&str]) -> ServeChild {
        let mut child = Command::new(env!("CARGO_BIN_EXE_bclean"))
            .arg("serve")
            .args(extra_args)
            .args(["--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("the bclean binary must launch");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve must announce readiness before closing stdout")
                .expect("readable stdout");
            if let Some(rest) = line.strip_prefix("bclean serve listening on ") {
                let addr = rest.split_whitespace().next().expect("address token");
                break addr.parse().expect("parsable bound address");
            }
            assert!(line.starts_with("loaded "), "unexpected startup line: {line}");
        };
        ServeChild { child, addr }
    }

    fn request(&self, method: &str, target: &str, body: &[u8]) -> client::ClientResponse {
        client::request(self.addr, method, target, body, TIMEOUT).expect("request succeeds")
    }

    /// Shut the daemon down over the wire and assert a clean exit.
    fn stop(mut self) {
        let response = self.request("POST", "/shutdown", b"");
        assert_eq!(response.status, 200);
        let status = self.child.wait().expect("child waits");
        assert!(status.success(), "serve exited with {status}");
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// Stage the seeded Hospital benchmark split into a fit half and an ingest
/// batch, with the benchmark's constraints alongside.
fn stage(ws: &Workspace) -> (Dataset, Dataset) {
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED);
    let split = bench.dirty.num_rows() / 2;
    let mut first = Dataset::new(bench.dirty.schema().clone());
    let mut second = Dataset::new(bench.dirty.schema().clone());
    for (r, row) in bench.dirty.rows().enumerate() {
        let target = if r < split { &mut first } else { &mut second };
        target.push_row(row.to_vec()).expect("same schema");
    }
    write_csv_file(&first, ws.path("first.csv")).expect("write fit half");
    write_csv_file(&second, ws.path("second.csv")).expect("write ingest batch");
    let spec = bclean_constraints(BenchmarkDataset::Hospital).to_spec_text().expect("representable UCs");
    std::fs::write(ws.path("hospital.bc"), &spec).expect("write constraints");
    (
        read_csv_file(ws.path("first.csv")).expect("fit half re-reads"),
        read_csv_file(ws.path("second.csv")).expect("ingest batch re-reads"),
    )
}

#[test]
fn daemon_matches_one_shot_cli_runs_byte_for_byte() {
    let ws = Workspace::new("roundtrip");
    stage(&ws);

    // The oracle, produced entirely by one-shot CLI invocations.
    let model_path = ws.str("model.bclean");
    bclean(&["fit", &ws.str("first.csv"), "-o", &model_path, "-c", &ws.str("hospital.bc"), "--threads", "1"]);
    bclean(&["clean", &ws.str("first.csv"), "-m", &model_path, "--repairs", &ws.str("expected-before.csv")]);
    bclean(&["ingest", &ws.str("second.csv"), "-m", &model_path, "-o", &ws.str("grown.bclean")]);
    bclean(&[
        "clean",
        &ws.str("first.csv"),
        "-m",
        &ws.str("grown.bclean"),
        "--repairs",
        &ws.str("expected-after.csv"),
    ]);

    let model_bytes = std::fs::read(&model_path).expect("model bytes");
    let grown_bytes = std::fs::read(ws.path("grown.bclean")).expect("grown model bytes");
    let probe_csv = std::fs::read(ws.path("first.csv")).expect("probe csv");
    let batch_csv = std::fs::read(ws.path("second.csv")).expect("batch csv");
    let expected_before = std::fs::read(ws.path("expected-before.csv")).expect("expected repairs");
    let expected_after = std::fs::read(ws.path("expected-after.csv")).expect("expected repairs after");
    assert_ne!(expected_before, expected_after, "the ingest must change the model's verdicts");

    // The same lifecycle against a resident daemon.
    let daemon = ServeChild::spawn(&["-m", &model_path, "--workers", "2"]);

    let health = daemon.request("GET", "/health", b"");
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "{\"status\": \"ok\", \"models\": 1}\n");

    let served = daemon.request("GET", "/artifact", b"");
    assert_eq!(served.body, model_bytes, "served artifact is the loaded file, byte for byte");

    let cleaned = daemon.request("POST", "/clean", &probe_csv);
    assert_eq!(cleaned.status, 200, "{}", cleaned.text());
    assert_eq!(cleaned.body, expected_before, "/clean repairs vs `bclean clean --repairs`");

    let ingested = daemon.request("POST", "/ingest", &batch_csv);
    assert_eq!(ingested.status, 200, "{}", ingested.text());
    assert!(ingested.text().contains("\"version\": 1"), "{}", ingested.text());

    let served = daemon.request("GET", "/artifact", b"");
    assert_eq!(served.body, grown_bytes, "post-ingest artifact vs `bclean ingest -o`");

    let cleaned = daemon.request("POST", "/clean", &probe_csv);
    assert_eq!(cleaned.body, expected_after, "post-ingest /clean vs the grown model's repairs");

    // The on-disk model file is untouched: the daemon grows its resident
    // copy only.
    assert_eq!(std::fs::read(&model_path).expect("model bytes"), model_bytes);

    daemon.stop();
}

#[test]
fn multi_model_daemon_routes_by_schema_hash() {
    let ws = Workspace::new("multimodel");
    stage(&ws);
    std::fs::write(
        ws.path("beers.csv"),
        "beer,brewery,abv\nlager,plant a,0.05\nlager,plant a,0.05\nstout,plant b,0.09\nstout,plant b,0.09\n",
    )
    .expect("write second schema");

    let hospital_path = ws.str("hospital.bclean");
    let beers_path = ws.str("beers.bclean");
    bclean(&[
        "fit",
        &ws.str("first.csv"),
        "-o",
        &hospital_path,
        "-c",
        &ws.str("hospital.bc"),
        "--threads",
        "1",
    ]);
    bclean(&["fit", &ws.str("beers.csv"), "-o", &beers_path, "--threads", "1"]);
    bclean(&["clean", &ws.str("first.csv"), "-m", &hospital_path, "--repairs", &ws.str("expected.csv")]);

    let hospital_hash = ModelArtifact::load(&hospital_path).expect("model loads").schema_hash();
    let beers_hash = ModelArtifact::load(&beers_path).expect("model loads").schema_hash();
    assert_ne!(hospital_hash, beers_hash);

    let daemon = ServeChild::spawn(&["-m", &hospital_path, "-m", &beers_path, "--workers", "2"]);

    let health = daemon.request("GET", "/health", b"");
    assert_eq!(health.text(), "{\"status\": \"ok\", \"models\": 2}\n");

    // With two models, endpoints without a batch need an explicit selector…
    assert_eq!(daemon.request("GET", "/inspect", b"").status, 400);
    let inspect = daemon.request("GET", &format!("/inspect?model={hospital_hash:016x}"), b"");
    assert_eq!(inspect.status, 200);
    assert!(inspect.text().contains(&format!("\"schema_hash\": \"{hospital_hash:016x}\"")));

    // …while `/clean` routes by the posted batch's schema, so each batch
    // lands on its own model with no selector at all.
    let probe_csv = std::fs::read(ws.path("first.csv")).expect("probe csv");
    let expected = std::fs::read(ws.path("expected.csv")).expect("expected repairs");
    let cleaned = daemon.request("POST", "/clean", &probe_csv);
    assert_eq!(cleaned.status, 200, "{}", cleaned.text());
    assert_eq!(cleaned.body, expected, "hospital batch routed to the hospital model");

    let beers_csv = std::fs::read(ws.path("beers.csv")).expect("beers csv");
    let cleaned = daemon.request("POST", "/clean", &beers_csv);
    assert_eq!(cleaned.status, 200, "beers batch routed to the beers model: {}", cleaned.text());

    daemon.stop();
}
