//! Cross-process equivalence of the `bclean` CLI: `bclean fit` in one
//! process followed by `bclean clean -m` in another must produce repairs
//! bit-identical to an in-process `fit_artifact` + compile + clean over the
//! same inputs, for every worker-thread count; `bclean ingest` must leave
//! the persisted artifact byte-identical to an in-process absorb. This is
//! the executable half of the acceptance criterion the in-process
//! `tests/artifact_roundtrip.rs` covers from the library side.

use std::path::PathBuf;
use std::process::Command;

use bclean_core::{repairs_to_csv, BClean, ConstraintSet, ModelArtifact, Variant};
use bclean_data::{read_csv_file, write_csv_file, Dataset, EncodedDataset};
use bclean_datagen::BenchmarkDataset;
use bclean_eval::bclean_constraints;

const ROWS: usize = 120;
const SEED: u64 = 20240817;

/// Run the compiled `bclean` binary, panicking with its stderr on failure.
fn bclean(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_bclean"))
        .args(args)
        .output()
        .expect("the bclean binary must launch");
    assert!(
        output.status.success(),
        "bclean {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Run the binary expecting failure; returns stderr.
fn bclean_expect_failure(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_bclean"))
        .args(args)
        .output()
        .expect("the bclean binary must launch");
    assert!(!output.status.success(), "bclean {args:?} unexpectedly succeeded");
    String::from_utf8_lossy(&output.stderr).into_owned()
}

struct Workspace {
    dir: PathBuf,
}

impl Workspace {
    fn new(label: &str) -> Workspace {
        let dir = std::env::temp_dir().join(format!("bclean-cli-{label}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp workspace");
        Workspace { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn str(&self, name: &str) -> String {
        self.path(name).display().to_string()
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Write the seeded Hospital benchmark and its constraints where the CLI
/// can read them, returning the dataset *as the CLI will see it* (i.e.
/// re-read from the CSV, so value parsing is identical on both sides).
fn stage_hospital(ws: &Workspace) -> (Dataset, String) {
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED);
    let csv = ws.path("hospital.csv");
    write_csv_file(&bench.dirty, &csv).expect("write hospital csv");
    let spec = bclean_constraints(BenchmarkDataset::Hospital).to_spec_text().expect("representable UCs");
    std::fs::write(ws.path("hospital.bc"), &spec).expect("write constraints");
    (read_csv_file(&csv).expect("re-read hospital csv"), spec)
}

#[test]
fn fit_then_clean_across_processes_matches_in_process() {
    let ws = Workspace::new("fit-clean");
    let (data, spec) = stage_hospital(&ws);
    let constraints = ConstraintSet::from_spec_text(&spec).expect("spec parses");

    for (variant_flag, variant) in
        [("pi", Variant::PartitionedInference), ("pip", Variant::PartitionedInferencePruning)]
    {
        let model_path = ws.str(&format!("hospital-{variant_flag}.bclean"));
        bclean(&[
            "fit",
            &ws.str("hospital.csv"),
            "-o",
            &model_path,
            "-c",
            &ws.str("hospital.bc"),
            "--variant",
            variant_flag,
            "--threads",
            "1",
        ]);

        // The in-process oracle: same CSV, same constraints, same config.
        let artifact = BClean::new(variant.config().with_threads(1))
            .with_constraints(constraints.clone())
            .fit_artifact(&data);
        let expected_repairs = artifact.compile().clean(&data).repairs;
        assert!(!expected_repairs.is_empty(), "the fixture must exercise repairs");

        // The persisted artifact is byte-identical to the in-process one.
        let on_disk = std::fs::read(&model_path).expect("model file exists");
        assert_eq!(on_disk, artifact.to_bytes().expect("serializable"), "variant {variant_flag}");

        // A separate `clean` invocation reproduces the repairs bit for bit,
        // at every thread count.
        for threads in ["1", "2", "8"] {
            let repairs_path = ws.str(&format!("repairs-{variant_flag}-{threads}.csv"));
            bclean(&[
                "clean",
                &ws.str("hospital.csv"),
                "-m",
                &model_path,
                "--repairs",
                &repairs_path,
                "--threads",
                threads,
            ]);
            let got = std::fs::read_to_string(&repairs_path).expect("repairs file");
            assert_eq!(
                got,
                repairs_to_csv(&expected_repairs),
                "variant {variant_flag} threads {threads} diverged from the in-process repairs"
            );
        }
    }
}

#[test]
fn ingest_across_processes_matches_in_process_absorb() {
    let ws = Workspace::new("ingest");
    let (data, spec) = stage_hospital(&ws);
    let constraints = ConstraintSet::from_spec_text(&spec).expect("spec parses");

    // Split the staged CSV into a fit half and an ingest half.
    let split = data.num_rows() / 2;
    let mut first = Dataset::new(data.schema().clone());
    let mut second = Dataset::new(data.schema().clone());
    for (r, row) in data.rows().enumerate() {
        let target = if r < split { &mut first } else { &mut second };
        target.push_row(row.to_vec()).expect("same schema");
    }
    write_csv_file(&first, ws.path("first.csv")).expect("write first half");
    write_csv_file(&second, ws.path("second.csv")).expect("write second half");
    // Re-read so both sides see identical value parsing.
    let first = read_csv_file(ws.path("first.csv")).expect("first half");
    let second = read_csv_file(ws.path("second.csv")).expect("second half");

    let model_path = ws.str("incremental.bclean");
    bclean(&[
        "fit",
        &ws.str("first.csv"),
        "-o",
        &model_path,
        "-c",
        &ws.str("hospital.bc"),
        "--variant",
        "pi",
        "--threads",
        "1",
    ]);
    let updated_path = ws.str("updated.bclean");
    let stdout = bclean(&["ingest", &ws.str("second.csv"), "-m", &model_path, "-o", &updated_path]);
    assert!(stdout.contains(&format!("absorbed {} rows", second.num_rows())), "{stdout}");

    // In-process oracle: fit the first half, absorb the second over a live
    // encoding of the full history.
    let mut oracle = BClean::new(Variant::PartitionedInference.config().with_threads(1))
        .with_constraints(constraints)
        .fit_artifact(&first);
    let mut encoded = EncodedDataset::from_dataset(&first);
    let report = encoded.append_batch(&second);
    oracle.absorb(&second, &encoded, report.rows);

    let on_disk = std::fs::read(&updated_path).expect("updated model exists");
    assert_eq!(on_disk, oracle.to_bytes().expect("serializable"));
    // The original model file is untouched when -o names a different path.
    let untouched = ModelArtifact::load(&model_path).expect("original loads");
    assert_eq!(untouched.num_rows(), first.num_rows());
}

#[test]
fn inspect_reports_version_schema_and_structure() {
    let ws = Workspace::new("inspect");
    let (data, _) = stage_hospital(&ws);
    let model_path = ws.str("hospital.bclean");
    bclean(&[
        "fit",
        &ws.str("hospital.csv"),
        "-o",
        &model_path,
        "-c",
        &ws.str("hospital.bc"),
        "--threads",
        "1",
    ]);
    let artifact = ModelArtifact::load(&model_path).expect("model loads");
    let stdout = bclean(&["inspect", &model_path]);
    assert!(stdout.contains(&format!("format version {}", bclean_core::FORMAT_VERSION)), "{stdout}");
    assert!(stdout.contains(&format!("{:016x}", artifact.schema_hash())), "{stdout}");
    assert!(stdout.contains(&format!("rows absorbed {}", data.num_rows())), "{stdout}");
    for name in data.schema().names() {
        assert!(stdout.contains(name), "missing attribute {name} in {stdout}");
    }
    for section in ["schema", "config", "constraints", "dicts", "structure", "node_counts", "compensatory"] {
        assert!(stdout.contains(section), "missing section {section} in {stdout}");
    }
}

#[test]
fn budget_flags_fit_budgeted_models_and_are_rejected_where_inert() {
    let ws = Workspace::new("budget");
    let (data, spec) = stage_hospital(&ws);
    let constraints = ConstraintSet::from_spec_text(&spec).expect("spec parses");

    let model_path = ws.str("budgeted.bclean");
    bclean(&[
        "fit",
        &ws.str("hospital.csv"),
        "-o",
        &model_path,
        "-c",
        &ws.str("hospital.bc"),
        "--threads",
        "1",
        "--fit-sample",
        "80",
        "--sketch-budget",
        "8",
    ]);

    // In-process oracle with the budget the flags spell out.
    let budget = bclean_core::FitBudget::Budgeted(bclean_core::BudgetParams {
        sample_rows: 80,
        sketch_k: 8,
        heavy_hitters: 8,
        ..Default::default()
    });
    let artifact =
        BClean::new(Variant::PartitionedInference.config().with_threads(1).with_fit_budget(budget))
            .with_constraints(constraints)
            .fit_artifact(&data);
    let on_disk = std::fs::read(&model_path).expect("model file exists");
    assert_eq!(on_disk, artifact.to_bytes().expect("serializable"));

    // `inspect` surfaces the persisted budget.
    let stdout = bclean(&["inspect", &model_path]);
    assert!(stdout.contains("budgeted (sample 80, sketch 8, heavy hitters 8)"), "{stdout}");

    // Cleaning with -m never refits, so the budget flags must be rejected
    // there (and on ingest) rather than silently ignored.
    let csv_path = ws.str("hospital.csv");
    for extra in [["--fit-sample", "100"], ["--sketch-budget", "64"]] {
        let stderr = bclean_expect_failure(&["clean", &csv_path, "-m", &model_path, extra[0], extra[1]]);
        assert!(stderr.contains("no effect"), "expected a flag-conflict error, got: {stderr}");
        let stderr = bclean_expect_failure(&["ingest", &csv_path, "-m", &model_path, extra[0], extra[1]]);
        assert!(stderr.contains("no effect"), "expected a flag-conflict error, got: {stderr}");
    }
}

#[test]
fn schema_guard_and_corruption_fail_with_clear_errors() {
    let ws = Workspace::new("guards");
    stage_hospital(&ws);
    let model_path = ws.str("hospital.bclean");
    bclean(&[
        "fit",
        &ws.str("hospital.csv"),
        "-o",
        &model_path,
        "-c",
        &ws.str("hospital.bc"),
        "--threads",
        "1",
    ]);

    // A CSV with a drifted header is refused by the schema guard.
    std::fs::write(ws.path("drifted.csv"), "NotTheSchema,AtAll\nx,y\n").expect("write drifted csv");
    let stderr = bclean_expect_failure(&["clean", &ws.str("drifted.csv"), "-m", &model_path]);
    assert!(stderr.contains("schema"), "expected a schema error, got: {stderr}");

    // A corrupted artifact fails with the checksum error, not a panic.
    let mut bytes = std::fs::read(&model_path).expect("model bytes");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(ws.path("corrupt.bclean"), &bytes).expect("write corrupted model");
    let stderr = bclean_expect_failure(&["clean", &ws.str("hospital.csv"), "-m", &ws.str("corrupt.bclean")]);
    assert!(stderr.contains("checksum"), "expected a checksum error, got: {stderr}");

    // A non-container file is refused by magic.
    std::fs::write(ws.path("not-a-model.bclean"), b"hello world, definitely not a model").unwrap();
    let stderr = bclean_expect_failure(&["inspect", &ws.str("not-a-model.bclean")]);
    assert!(stderr.contains("magic"), "expected a magic error, got: {stderr}");

    // Fit-shaping flags cannot silently combine with -m: the artifact's
    // persisted constraints/variant apply, so pretending otherwise errors.
    let csv_path = ws.str("hospital.csv");
    for extra in [["-c", "whatever.bc"], ["--variant", "pip"]] {
        let stderr = bclean_expect_failure(&["clean", &csv_path, "-m", &model_path, extra[0], extra[1]]);
        assert!(stderr.contains("no effect"), "expected a flag-conflict error, got: {stderr}");
    }
    let stderr =
        bclean_expect_failure(&["ingest", &ws.str("hospital.csv"), "-m", &model_path, "--variant", "pip"]);
    assert!(stderr.contains("no effect"), "expected a flag-conflict error, got: {stderr}");
}
