//! # bclean-store
//!
//! Versioned, checksummed on-disk serialization for BClean model state —
//! the substrate of fit-once/clean-many across processes and machines.
//!
//! A `.bclean` file is a self-describing binary container
//! ([`ContainerWriter`] / [`ContainerReader`]): 8 magic bytes, a format
//! version, and a sequence of sections each carrying its own CRC-32. This
//! crate owns the container layer, the little-endian wire primitives
//! ([`ByteWriter`] / [`ByteReader`]) and the codecs for the substrate
//! types (dictionary layouts, schema metadata, DAG structure, `NodeCounts`
//! snapshots); `bclean-core` builds `ModelArtifact::{save, load}` on top
//! and the `bclean` CLI operates on the files.
//!
//! Every failure mode is a typed [`StoreError`] — truncation, bit rot,
//! wrong magic, future format versions and structurally impossible state
//! all load as errors, never as panics or silently wrong models. The
//! format-version policy (bump + regenerate committed fixtures on any
//! layout change) is documented in the README's "Persistence & CLI"
//! section and enforced by CI's golden-artifact gate.

#![warn(missing_docs)]

pub mod codec;
pub mod codecs;
pub mod container;
pub mod crc;
pub mod error;

pub use codec::{ByteReader, ByteWriter};
pub use codecs::{
    read_counts, read_dag, read_dict, read_dicts, read_encoded_dataset, read_schema, write_counts, write_dag,
    write_dict, write_dicts, write_encoded_dataset, write_schema, SchemaMeta, SourceFingerprint,
};
pub use container::{
    read_container_file, ContainerReader, ContainerWriter, SectionId, FORMAT_VERSION, MAGIC,
    MIN_FORMAT_VERSION,
};
pub use crc::{crc32, Crc32};
pub use error::StoreError;
