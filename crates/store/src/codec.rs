//! Little-endian wire primitives shared by every section codec.
//!
//! [`ByteWriter`] appends to an in-memory buffer; [`ByteReader`] walks a
//! byte slice and returns [`StoreError::Truncated`] instead of panicking
//! when the input runs out. All multi-byte integers are little-endian;
//! floats travel as their IEEE-754 bit patterns so round-trips are
//! bit-exact (including negative zero and subnormals).

use bclean_data::Value;

use crate::error::StoreError;

/// Append-only encoder over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as `u64` (the format is 64-bit regardless of host).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, values: &[u32]) {
        self.usize(values.len());
        for &v in values {
            self.u32(v);
        }
    }

    /// Write a length-prefixed `usize` slice.
    pub fn usize_slice(&mut self, values: &[usize]) {
        self.usize(values.len());
        for &v in values {
            self.usize(v);
        }
    }

    /// Write a [`Value`] (tag byte + payload).
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Text(s) => {
                self.u8(1);
                self.string(s);
            }
            Value::Number(n) => {
                self.u8(2);
                self.f64(*n);
            }
        }
    }
}

/// Cursor-style decoder over a byte slice. Every accessor reports
/// [`StoreError::Truncated`] with the caller-provided context when the
/// input is too short.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// What this reader is decoding; used in truncation errors.
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Read from `bytes`, labelling truncation errors with `context`.
    pub fn new(bytes: &'a [u8], context: &'static str) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0, context }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Error unless every byte has been consumed (sections must not carry
    /// trailing garbage — it would mean reader and writer disagree on the
    /// layout, exactly what the format version is supposed to rule out).
    pub fn finish(&self) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{} bytes of trailing data after {}",
                self.remaining(),
                self.context
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { context: self.context });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, StoreError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    /// Read a `usize` stored as `u64`, rejecting values the host cannot
    /// address.
    pub fn usize(&mut self) -> Result<usize, StoreError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| StoreError::Corrupt(format!("length {v} exceeds address space")))
    }

    /// Read a `usize` and additionally bound it, so corrupted lengths fail
    /// cleanly instead of attempting absurd allocations.
    pub fn bounded_len(&mut self, max: usize, what: &str) -> Result<usize, StoreError> {
        let v = self.usize()?;
        if v > max {
            return Err(StoreError::Corrupt(format!("{what} length {v} exceeds bound {max}")));
        }
        Ok(v)
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, StoreError> {
        let len = self.bounded_len(self.remaining(), "string")?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt("non-UTF-8 string".to_string()))
    }

    /// Read a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self) -> Result<Vec<u32>, StoreError> {
        let len = self.bounded_len(self.remaining() / 4, "u32 slice")?;
        (0..len).map(|_| self.u32()).collect()
    }

    /// Read a length-prefixed `usize` slice.
    pub fn usize_slice(&mut self) -> Result<Vec<usize>, StoreError> {
        let len = self.bounded_len(self.remaining() / 8, "usize slice")?;
        (0..len).map(|_| self.usize()).collect()
    }

    /// Read a [`Value`].
    pub fn value(&mut self) -> Result<Value, StoreError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Text(self.string()?)),
            2 => Ok(Value::Number(self.f64()?)),
            tag => Err(StoreError::Corrupt(format!("invalid value tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.u128(1 << 100);
        w.usize(42);
        w.f64(-0.0);
        w.f64(f64::MIN_POSITIVE / 2.0); // subnormal
        w.bool(true);
        w.string("héllo");
        w.u32_slice(&[1, 2, 3]);
        w.usize_slice(&[9, 8]);
        w.value(&Value::Null);
        w.value(&Value::text("x"));
        w.value(&Value::Number(1.5));
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (f64::MIN_POSITIVE / 2.0).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.u32_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.usize_slice().unwrap(), vec![9, 8]);
        assert_eq!(r.value().unwrap(), Value::Null);
        assert_eq!(r.value().unwrap(), Value::text("x"));
        assert_eq!(r.value().unwrap(), Value::Number(1.5));
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(123);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..3], "unit");
        assert!(matches!(r.u64(), Err(StoreError::Truncated { context: "unit" })));
    }

    #[test]
    fn corrupt_lengths_fail_cleanly() {
        let mut w = ByteWriter::new();
        w.usize(usize::MAX / 2); // an absurd string length with no payload
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "unit");
        assert!(matches!(r.string(), Err(StoreError::Corrupt(_))));

        let mut w = ByteWriter::new();
        w.u8(9); // invalid value tag
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "unit");
        assert!(matches!(r.value(), Err(StoreError::Corrupt(_))));

        let mut w = ByteWriter::new();
        w.u8(2); // invalid bool
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "unit");
        assert!(matches!(r.bool(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "unit");
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(StoreError::Corrupt(_))));
    }
}
