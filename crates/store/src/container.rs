//! The `.bclean` container: a self-describing sequence of checksummed
//! sections behind a magic + format-version header.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"BCLNMODL"
//! 8       4     format version (u32 LE)
//! 12      4     section count (u32 LE)
//! then, per section:
//!         2     section id (u16 LE)
//!         8     payload length (u64 LE)
//!         4     CRC-32 of the payload (u32 LE)
//!         n     payload
//! ```
//!
//! Sections appear in ascending id order and each id appears at most once;
//! the reader verifies every CRC before any payload is handed out. Readers
//! refuse versions newer than [`FORMAT_VERSION`] — the policy is that any
//! incompatible layout change bumps the version and regenerates committed
//! fixtures (see the README's "Persistence & CLI" section); CI's
//! golden-artifact gate exists to catch layout changes that forget the
//! bump.

use crate::codec::{ByteReader, ByteWriter};
use crate::crc::crc32;
use crate::error::StoreError;

/// The 8 magic bytes every `.bclean` container starts with.
pub const MAGIC: [u8; 8] = *b"BCLNMODL";

/// Current container format version. Bump on any incompatible change to
/// the header, the section set, or any section's payload layout — and
/// regenerate `tests/fixtures/hospital.bclean` (the golden CI gate fails
/// otherwise, by design). See `docs/FORMAT.md` for the full byte-layout
/// contract and version history.
pub const FORMAT_VERSION: u32 = 4;

/// Oldest format version this reader still understands. Version 1 carried
/// a β-folded f64 per compensatory pair entry (and no shard/pruning config
/// fields); version 2 stores raw positive/negative tallies, which merge
/// exactly across shards and batches; version 3 adds the fit-budget config
/// fields and the per-column heavy-hitter lists backing bounded
/// compensatory pair tables; version 4 adds the optional
/// [`SectionId::EncodedData`] section persisting a dictionary-encoded
/// dataset (source fingerprint + dict layouts + per-column code blocks) so
/// re-cleaning the same file skips the encode pass.
pub const MIN_FORMAT_VERSION: u32 = 4;

/// Well-known section ids of a model artifact container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u16)]
pub enum SectionId {
    /// Attribute names + types + schema hash.
    Schema = 1,
    /// The full `BCleanConfig`.
    Config = 2,
    /// User constraints as canonical spec text.
    Constraints = 3,
    /// Per-attribute dictionaries (the model's code space).
    Dicts = 4,
    /// The learned DAG.
    Structure = 5,
    /// Per-node sufficient statistics (`NodeCounts`).
    NodeCounts = 6,
    /// Compensatory counters (pair stores, value counts, confidence sum).
    Compensatory = 7,
    /// A persisted dictionary-encoded dataset: source fingerprint, row
    /// count, dict layouts and per-column code blocks (format v4+).
    EncodedData = 8,
}

impl SectionId {
    /// Human-readable section name (used in error messages and `inspect`).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Schema => "schema",
            SectionId::Config => "config",
            SectionId::Constraints => "constraints",
            SectionId::Dicts => "dicts",
            SectionId::Structure => "structure",
            SectionId::NodeCounts => "node_counts",
            SectionId::Compensatory => "compensatory",
            SectionId::EncodedData => "encoded_data",
        }
    }

    fn from_raw(raw: u16) -> Option<SectionId> {
        match raw {
            1 => Some(SectionId::Schema),
            2 => Some(SectionId::Config),
            3 => Some(SectionId::Constraints),
            4 => Some(SectionId::Dicts),
            5 => Some(SectionId::Structure),
            6 => Some(SectionId::NodeCounts),
            7 => Some(SectionId::Compensatory),
            8 => Some(SectionId::EncodedData),
            _ => None,
        }
    }
}

/// Builds a container in memory, one section at a time.
#[derive(Debug, Default)]
pub struct ContainerWriter {
    sections: Vec<(SectionId, Vec<u8>)>,
}

impl ContainerWriter {
    /// An empty container.
    pub fn new() -> ContainerWriter {
        ContainerWriter::default()
    }

    /// Add one section. Sections may be added in any order; they are
    /// written sorted by id so equal model state always produces equal
    /// bytes.
    pub fn section(&mut self, id: SectionId, payload: ByteWriter) {
        debug_assert!(self.sections.iter().all(|(existing, _)| *existing != id), "duplicate section {id:?}");
        self.sections.push((id, payload.into_bytes()));
    }

    /// Serialize the container to its final byte form.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.sections.sort_by_key(|(id, _)| *id);
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (id, payload) in &self.sections {
            out.extend_from_slice(&(*id as u16).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Serialize and write to a file.
    pub fn write_file(self, path: &std::path::Path) -> Result<(), StoreError> {
        std::fs::write(path, self.into_bytes()).map_err(|e| StoreError::io(path.display().to_string(), e))
    }
}

/// One parsed section: id plus verified payload bounds.
#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    id: SectionId,
    start: usize,
    len: usize,
}

/// A parsed container: header verified, sections indexed, every CRC
/// checked up front.
#[derive(Debug)]
pub struct ContainerReader<'a> {
    bytes: &'a [u8],
    version: u32,
    sections: Vec<SectionEntry>,
}

impl<'a> ContainerReader<'a> {
    /// Parse and verify a container held in memory.
    pub fn parse(bytes: &'a [u8]) -> Result<ContainerReader<'a>, StoreError> {
        if bytes.len() < MAGIC.len() {
            return Err(StoreError::BadMagic { found: bytes.to_vec() });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic { found: bytes[..MAGIC.len()].to_vec() });
        }
        let mut header = ByteReader::new(&bytes[MAGIC.len()..], "container header");
        let version = header.u32()?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StoreError::UnsupportedVersion { found: version, supported: FORMAT_VERSION });
        }
        let section_count = header.u32()? as usize;
        let mut pos = MAGIC.len() + 8;
        // Every section needs at least a 14-byte header, so a count the
        // remaining bytes cannot hold is truncation (and must fail before
        // the count sizes any allocation).
        if section_count > (bytes.len() - pos) / 14 {
            return Err(StoreError::Truncated { context: "section header" });
        }
        let mut sections = Vec::with_capacity(section_count);
        for _ in 0..section_count {
            if bytes.len() < pos + 14 {
                return Err(StoreError::Truncated { context: "section header" });
            }
            let raw_id = u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("2 bytes"));
            let len = u64::from_le_bytes(bytes[pos + 2..pos + 10].try_into().expect("8 bytes"));
            let crc = u32::from_le_bytes(bytes[pos + 10..pos + 14].try_into().expect("4 bytes"));
            pos += 14;
            let len = usize::try_from(len)
                .ok()
                .filter(|&l| bytes.len() - pos >= l)
                .ok_or(StoreError::Truncated { context: "section payload" })?;
            let id = SectionId::from_raw(raw_id)
                .ok_or_else(|| StoreError::Corrupt(format!("unknown section id {raw_id}")))?;
            if crc32(&bytes[pos..pos + len]) != crc {
                return Err(StoreError::ChecksumMismatch { section: id.name() });
            }
            sections.push(SectionEntry { id, start: pos, len });
            pos += len;
        }
        if pos != bytes.len() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after last section",
                bytes.len() - pos
            )));
        }
        Ok(ContainerReader { bytes, version, sections })
    }

    /// The container's recorded format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// `(id, payload length)` of every section, in file order — the raw
    /// material of `bclean inspect`.
    pub fn section_sizes(&self) -> Vec<(SectionId, usize)> {
        self.sections.iter().map(|s| (s.id, s.len)).collect()
    }

    /// A reader over one required section's (CRC-verified) payload.
    pub fn section(&self, id: SectionId) -> Result<ByteReader<'a>, StoreError> {
        let entry = self
            .sections
            .iter()
            .find(|s| s.id == id)
            .ok_or(StoreError::MissingSection { section: id.name() })?;
        Ok(ByteReader::new(&self.bytes[entry.start..entry.start + entry.len], id.name()))
    }
}

/// Read a whole container file into memory.
pub fn read_container_file(path: &std::path::Path) -> Result<Vec<u8>, StoreError> {
    std::fs::read(path).map_err(|e| StoreError::io(path.display().to_string(), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ContainerWriter::new();
        let mut schema = ByteWriter::new();
        schema.string("City");
        // Deliberately added out of id order: the writer must sort.
        let mut dicts = ByteWriter::new();
        dicts.u32(7);
        w.section(SectionId::Dicts, dicts);
        w.section(SectionId::Schema, schema);
        w.into_bytes()
    }

    #[test]
    fn round_trip_and_ordering() {
        let bytes = sample();
        let reader = ContainerReader::parse(&bytes).unwrap();
        assert_eq!(reader.version(), FORMAT_VERSION);
        let sizes = reader.section_sizes();
        assert_eq!(sizes.len(), 2);
        assert_eq!(sizes[0].0, SectionId::Schema, "sections must be sorted by id");
        let mut schema = reader.section(SectionId::Schema).unwrap();
        assert_eq!(schema.string().unwrap(), "City");
        schema.finish().unwrap();
        let mut dicts = reader.section(SectionId::Dicts).unwrap();
        assert_eq!(dicts.u32().unwrap(), 7);
    }

    #[test]
    fn equal_input_produces_equal_bytes() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert!(matches!(ContainerReader::parse(&bytes), Err(StoreError::BadMagic { .. })));
        assert!(matches!(ContainerReader::parse(b"xy"), Err(StoreError::BadMagic { .. })));
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match ContainerReader::parse(&bytes) {
            Err(StoreError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Version 0 predates the format.
        bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(ContainerReader::parse(&bytes), Err(StoreError::UnsupportedVersion { .. })));
    }

    #[test]
    fn flipped_payload_byte_fails_the_crc() {
        let mut bytes = sample();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        assert!(matches!(ContainerReader::parse(&bytes), Err(StoreError::ChecksumMismatch { .. })));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample();
        for cut in [bytes.len() - 1, bytes.len() - 5, 20, 13] {
            let err = ContainerReader::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn absurd_section_count_fails_before_allocating() {
        // Valid magic + version, then a section count the file cannot hold:
        // must be typed truncation, never a count-sized allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(ContainerReader::parse(&bytes), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn missing_section_and_trailing_garbage() {
        let bytes = sample();
        let reader = ContainerReader::parse(&bytes).unwrap();
        assert!(matches!(
            reader.section(SectionId::Config),
            Err(StoreError::MissingSection { section: "config" })
        ));
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(ContainerReader::parse(&padded), Err(StoreError::Corrupt(_))));
    }
}
