//! CRC-32 (IEEE 802.3, the polynomial used by zip/gzip/PNG), implemented
//! here because the build environment is offline. Each container section
//! carries the CRC of its payload so bit rot is detected before a single
//! field is trusted.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let baseline = crc32(b"bclean");
        let mut flipped = b"bclean".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(crc32(&flipped), baseline);
    }
}
