//! CRC-32 (IEEE 802.3, the polynomial used by zip/gzip/PNG), implemented
//! here because the build environment is offline. Each container section
//! carries the CRC of its payload so bit rot is detected before a single
//! field is trusted.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finish()
}

/// Streaming CRC-32: fold byte blocks in with [`Crc32::update`] and read
/// the digest with [`Crc32::finish`]. Feeding a document in any block
/// split produces exactly [`crc32`] of the concatenation — this is what
/// lets large sources be fingerprinted in bounded memory.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// Start a fresh digest.
    pub fn new() -> Crc32 {
        Crc32 { state: !0u32 }
    }

    /// Fold the next block of bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &byte in bytes {
            self.state = (self.state >> 8) ^ table[((self.state ^ byte as u32) & 0xFF) as usize];
        }
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot_for_any_block_split() {
        let doc = b"The quick brown fox jumps over the lazy dog";
        for block in [1, 3, 7, doc.len()] {
            let mut hasher = Crc32::new();
            for chunk in doc.chunks(block) {
                hasher.update(chunk);
            }
            assert_eq!(hasher.finish(), crc32(doc), "block size {block}");
        }
        assert_eq!(Crc32::default().finish(), 0);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let baseline = crc32(b"bclean");
        let mut flipped = b"bclean".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(crc32(&flipped), baseline);
    }
}
