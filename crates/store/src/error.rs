//! Typed failures of the `.bclean` container layer.
//!
//! Every way a container can fail to load has its own variant, so callers
//! (the CLI, the corruption tests, CI's golden-artifact gate) can
//! distinguish "this file is not a `.bclean` container" from "this
//! container is from a future format version" from "this container rotted
//! on disk" — and none of them ever panics.

use std::fmt;

/// Everything that can go wrong while writing or reading a `.bclean`
/// container.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The path being read or written.
        path: String,
        /// The originating I/O error.
        source: std::io::Error,
    },
    /// The file does not start with the `.bclean` magic bytes.
    BadMagic {
        /// The bytes actually found (at most the magic's length).
        found: Vec<u8>,
    },
    /// The file's format version is outside the supported range. The
    /// sanctioned escape hatch is regenerating the artifact with the
    /// current writer (see the README's format-version policy).
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Newest version this reader supports.
        supported: u32,
    },
    /// The file ended before the announced structure was complete.
    Truncated {
        /// What the reader was in the middle of decoding.
        context: &'static str,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// Section name (see `container::section_name`).
        section: &'static str,
    },
    /// A required section is missing from the container.
    MissingSection {
        /// Section name (see `container::section_name`).
        section: &'static str,
    },
    /// The bytes parsed, but describe an impossible model state.
    Corrupt(String),
    /// The model state cannot be represented in the on-disk format (e.g. a
    /// closure-backed custom user constraint).
    Unsupported(String),
    /// A dataset's schema does not match the schema the artifact was fit
    /// on (the fit-once/clean-many guard).
    SchemaMismatch {
        /// Human-readable description of the first difference.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "{path}: {source}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a .bclean container (bad magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported container format version {found} (this build reads up to {supported}); \
                 regenerate the artifact with `bclean fit`"
            ),
            StoreError::Truncated { context } => {
                write!(f, "truncated container (while reading {context})")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section `{section}` (corrupted file?)")
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section `{section}` is missing")
            }
            StoreError::Corrupt(detail) => write!(f, "corrupt container: {detail}"),
            StoreError::Unsupported(detail) => write!(f, "cannot serialize model: {detail}"),
            StoreError::SchemaMismatch { detail } => {
                write!(f, "dataset schema does not match the artifact: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// Wrap an I/O error with the path it occurred on.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> StoreError {
        StoreError::Io { path: path.into(), source }
    }
}
