//! Section codecs for the substrate types: schema metadata, dictionary
//! layouts, DAG structure and `NodeCounts` snapshots.
//!
//! Everything here is deterministic — equal in-memory state always encodes
//! to equal bytes — which is what lets CI byte-compare a committed golden
//! artifact against a fresh re-save (any layout change that forgets to
//! bump [`crate::FORMAT_VERSION`] shows up as a byte diff or a typed load
//! failure, never as silent drift).

use bclean_bayesnet::{CountsSnapshot, Dag, NodeCounts};
use bclean_data::{AttrType, ColumnDict, EncodedDataset};

use crate::codec::{ByteReader, ByteWriter};
use crate::error::StoreError;

/// The schema metadata persisted with an artifact: attribute names and
/// coarse types, plus the 64-bit hash that guards fit-once/clean-many.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaMeta {
    /// Attribute names, in column order.
    pub names: Vec<String>,
    /// Coarse attribute types, in column order.
    pub types: Vec<AttrType>,
}

impl SchemaMeta {
    /// FNV-1a over names and types — the schema hash `bclean inspect`
    /// prints and the clean/ingest guard compares.
    pub fn hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(PRIME);
            }
        };
        for (name, ty) in self.names.iter().zip(&self.types) {
            eat(name.as_bytes());
            eat(&[0xFF, attr_type_tag(*ty)]);
        }
        hash
    }
}

fn attr_type_tag(ty: AttrType) -> u8 {
    match ty {
        AttrType::Categorical => 0,
        AttrType::Numeric => 1,
        AttrType::Text => 2,
    }
}

fn attr_type_from_tag(tag: u8) -> Result<AttrType, StoreError> {
    match tag {
        0 => Ok(AttrType::Categorical),
        1 => Ok(AttrType::Numeric),
        2 => Ok(AttrType::Text),
        other => Err(StoreError::Corrupt(format!("invalid attribute type tag {other}"))),
    }
}

/// Encode the schema section (names, types, recorded hash).
pub fn write_schema(w: &mut ByteWriter, meta: &SchemaMeta) {
    debug_assert_eq!(meta.names.len(), meta.types.len());
    w.usize(meta.names.len());
    for (name, ty) in meta.names.iter().zip(&meta.types) {
        w.string(name);
        w.u8(attr_type_tag(*ty));
    }
    w.u64(meta.hash());
}

/// Decode the schema section, verifying the recorded hash against a
/// recomputation (a second, structure-aware integrity check on top of the
/// section CRC).
pub fn read_schema(r: &mut ByteReader<'_>) -> Result<SchemaMeta, StoreError> {
    let arity = r.bounded_len(r.remaining(), "schema arity")?;
    let mut names = Vec::with_capacity(arity);
    let mut types = Vec::with_capacity(arity);
    for _ in 0..arity {
        names.push(r.string()?);
        types.push(attr_type_from_tag(r.u8()?)?);
    }
    let meta = SchemaMeta { names, types };
    let recorded = r.u64()?;
    if recorded != meta.hash() {
        return Err(StoreError::Corrupt(format!(
            "recorded schema hash {recorded:016x} does not match recomputed {:016x}",
            meta.hash()
        )));
    }
    Ok(meta)
}

/// Encode one dictionary's persistent layout (decode table + frozen null
/// position; the encode index and sorted-order remap are derived).
pub fn write_dict(w: &mut ByteWriter, dict: &ColumnDict) {
    match dict.frozen_null_code() {
        None => w.u8(0),
        Some(null) => {
            w.u8(1);
            w.u32(null);
        }
    }
    w.usize(dict.values().len());
    for value in dict.values() {
        w.value(value);
    }
}

/// Decode one dictionary, rebuilding its derived state.
pub fn read_dict(r: &mut ByteReader<'_>) -> Result<ColumnDict, StoreError> {
    let frozen_null = match r.u8()? {
        0 => None,
        1 => Some(r.u32()?),
        tag => return Err(StoreError::Corrupt(format!("invalid dictionary layout tag {tag}"))),
    };
    let len = r.bounded_len(r.remaining(), "dictionary")?;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(r.value()?);
    }
    ColumnDict::from_layout(values, frozen_null).map_err(StoreError::Corrupt)
}

/// Encode all per-column dictionaries.
pub fn write_dicts(w: &mut ByteWriter, dicts: &[ColumnDict]) {
    w.usize(dicts.len());
    for dict in dicts {
        write_dict(w, dict);
    }
}

/// Decode all per-column dictionaries.
pub fn read_dicts(r: &mut ByteReader<'_>) -> Result<Vec<ColumnDict>, StoreError> {
    let len = r.bounded_len(r.remaining(), "dictionary list")?;
    (0..len).map(|_| read_dict(r)).collect()
}

/// Identity of the raw source a persisted encoded dataset was built from:
/// its byte length plus the CRC-32 of those bytes. An encoded-data cache is
/// only valid for the exact source it encoded, so loaders compare the
/// fingerprint of the current source before trusting the cache (a mismatch
/// means the source changed and the cache must be rebuilt, not an error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceFingerprint {
    /// Byte length of the source document.
    pub len: u64,
    /// CRC-32 of the source document's bytes.
    pub crc: u32,
}

impl SourceFingerprint {
    /// Fingerprint a source document held in memory.
    pub fn of(bytes: &[u8]) -> SourceFingerprint {
        SourceFingerprint { len: bytes.len() as u64, crc: crate::crc::crc32(bytes) }
    }

    /// Fingerprint a source file in bounded memory (64 KiB blocks through
    /// the streaming [`crate::crc::Crc32`]).
    pub fn of_file(path: &std::path::Path) -> Result<SourceFingerprint, StoreError> {
        use std::io::Read;
        let mut file =
            std::fs::File::open(path).map_err(|e| StoreError::io(path.display().to_string(), e))?;
        let mut hasher = crate::crc::Crc32::new();
        let mut len = 0u64;
        let mut block = [0u8; 64 * 1024];
        loop {
            let read = file.read(&mut block).map_err(|e| StoreError::io(path.display().to_string(), e))?;
            if read == 0 {
                break;
            }
            len += read as u64;
            hasher.update(&block[..read]);
        }
        Ok(SourceFingerprint { len, crc: hasher.finish() })
    }
}

/// Encode a dictionary-encoded dataset (the v4 `EncodedData` section):
/// source fingerprint, row count, dictionary layouts, then one `u32` code
/// block per column. Deterministic like every other codec.
pub fn write_encoded_dataset(w: &mut ByteWriter, fingerprint: SourceFingerprint, encoded: &EncodedDataset) {
    w.u64(fingerprint.len);
    w.u32(fingerprint.crc);
    w.usize(encoded.num_rows());
    write_dicts(w, encoded.dicts());
    for col in 0..encoded.num_columns() {
        w.u32_slice(encoded.column(col));
    }
}

/// Decode a persisted encoded dataset, re-validating the parts (column
/// count, per-column code-block length, code ranges) through
/// [`EncodedDataset::from_parts`].
pub fn read_encoded_dataset(
    r: &mut ByteReader<'_>,
) -> Result<(SourceFingerprint, EncodedDataset), StoreError> {
    let fingerprint = SourceFingerprint { len: r.u64()?, crc: r.u32()? };
    let num_rows = r.bounded_len(r.remaining(), "encoded rows")?;
    let dicts = read_dicts(r)?;
    let columns: Vec<Vec<u32>> = (0..dicts.len()).map(|_| r.u32_slice()).collect::<Result<_, _>>()?;
    let encoded = EncodedDataset::from_parts(dicts, columns, num_rows).map_err(StoreError::Corrupt)?;
    Ok((fingerprint, encoded))
}

/// Encode a DAG as node count + edge list (edges in the DAG's canonical
/// `edges()` order, which is deterministic).
pub fn write_dag(w: &mut ByteWriter, dag: &Dag) {
    w.usize(dag.num_nodes());
    let edges = dag.edges();
    w.usize(edges.len());
    for (from, to) in edges {
        w.usize(from);
        w.usize(to);
    }
}

/// Upper bound on persisted DAG nodes. Nodes are dataset attributes —
/// real schemas have tens of columns — so the bound only exists to make a
/// crafted node count fail as [`StoreError::Corrupt`] instead of sizing a
/// giant allocation inside `Dag::new`.
const MAX_DAG_NODES: usize = 1 << 20;

/// Decode a DAG, re-validating acyclicity through `add_edge`.
pub fn read_dag(r: &mut ByteReader<'_>) -> Result<Dag, StoreError> {
    let num_nodes = r.bounded_len(MAX_DAG_NODES, "DAG nodes")?;
    let num_edges = r.bounded_len(r.remaining() / 16, "DAG edges")?;
    let mut dag = Dag::new(num_nodes);
    for _ in 0..num_edges {
        let from = r.usize()?;
        let to = r.usize()?;
        dag.add_edge(from, to).map_err(|e| StoreError::Corrupt(format!("invalid structure edge: {e}")))?;
    }
    Ok(dag)
}

/// Encode one node's sufficient statistics through its snapshot.
pub fn write_counts(w: &mut ByteWriter, counts: &NodeCounts) {
    let snapshot = counts.snapshot();
    w.usize(snapshot.node);
    w.usize_slice(&snapshot.parents);
    w.u32_slice(&snapshot.radices);
    w.usize(snapshot.value_slots);
    w.u32_slice(&snapshot.marginal);
    w.usize(snapshot.total);
    w.usize(snapshot.configs.len());
    for (index, row, total) in &snapshot.configs {
        w.u128(*index);
        w.u32_slice(row);
        w.u32(*total);
    }
}

/// Decode one node's sufficient statistics, re-deriving strides and the
/// dense/sparse layout through the shared criterion.
pub fn read_counts(r: &mut ByteReader<'_>) -> Result<NodeCounts, StoreError> {
    let node = r.usize()?;
    let parents = r.usize_slice()?;
    let radices = r.u32_slice()?;
    let value_slots = r.usize()?;
    let marginal = r.u32_slice()?;
    let total = r.usize()?;
    let num_configs = r.bounded_len(r.remaining() / 16, "configurations")?;
    let mut configs = Vec::with_capacity(num_configs);
    for _ in 0..num_configs {
        let index = r.u128()?;
        let row = r.u32_slice()?;
        let config_total = r.u32()?;
        configs.push((index, row, config_total));
    }
    NodeCounts::from_snapshot(CountsSnapshot {
        node,
        parents,
        radices,
        value_slots,
        marginal,
        total,
        configs,
    })
    .map_err(StoreError::Corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::{dataset_from, EncodedDataset};

    #[test]
    fn schema_codec_round_trips_and_hash_guards() {
        let meta = SchemaMeta {
            names: vec!["City".into(), "Zip".into()],
            types: vec![AttrType::Text, AttrType::Categorical],
        };
        let mut w = ByteWriter::new();
        write_schema(&mut w, &meta);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "schema");
        let back = read_schema(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, meta);
        // Different names or types hash differently.
        let renamed = SchemaMeta { names: vec!["City".into(), "Zip2".into()], types: meta.types.clone() };
        assert_ne!(renamed.hash(), meta.hash());
        let retyped =
            SchemaMeta { names: meta.names.clone(), types: vec![AttrType::Text, AttrType::Numeric] };
        assert_ne!(retyped.hash(), meta.hash());
        // A tampered recorded hash is caught even when the CRC is bypassed.
        let mut tampered = bytes.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        let mut r = ByteReader::new(&tampered, "schema");
        assert!(matches!(read_schema(&mut r), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn dict_dag_counts_codecs_round_trip() {
        let ds = dataset_from(
            &["City", "Zip"],
            &[vec!["sylacauga", "35150"], vec!["centre", "35960"], vec!["", "35150"]],
        );
        let mut encoded = EncodedDataset::from_dataset(&ds);
        encoded.append_batch(&dataset_from(&["City", "Zip"], &[vec!["auburn", ""]]));

        let mut w = ByteWriter::new();
        write_dicts(&mut w, encoded.dicts());
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "dicts");
        let dicts = read_dicts(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(dicts.len(), 2);
        for (restored, original) in dicts.iter().zip(encoded.dicts()) {
            assert_eq!(restored.values(), original.values());
            assert_eq!(restored.frozen_null_code(), original.frozen_null_code());
            assert_eq!(restored.code_order(), original.code_order());
        }

        let mut dag = Dag::new(3);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(2, 1).unwrap();
        let mut w = ByteWriter::new();
        write_dag(&mut w, &dag);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "dag");
        assert_eq!(read_dag(&mut r).unwrap(), dag);
        r.finish().unwrap();

        let counts = NodeCounts::accumulate(&encoded, 0, &[1]);
        let mut w = ByteWriter::new();
        write_counts(&mut w, &counts);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "counts");
        let restored = read_counts(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.snapshot(), counts.snapshot());
    }

    /// The encoded-dataset codec must round-trip dictionaries, code blocks
    /// and the source fingerprint exactly, and surface tampered payloads as
    /// typed corruption.
    #[test]
    fn encoded_dataset_codec_round_trips() {
        let ds = dataset_from(
            &["City", "Zip"],
            &[vec!["sylacauga", "35150"], vec!["centre", "35960"], vec!["", ""]],
        );
        let encoded = EncodedDataset::from_dataset(&ds);
        let fingerprint = SourceFingerprint::of(b"raw,csv\nbytes\n");
        let mut w = ByteWriter::new();
        write_encoded_dataset(&mut w, fingerprint, &encoded);
        let bytes = w.into_bytes();
        // Determinism: equal state encodes to equal bytes.
        let mut w2 = ByteWriter::new();
        write_encoded_dataset(&mut w2, fingerprint, &encoded);
        assert_eq!(bytes, w2.into_bytes());

        let mut r = ByteReader::new(&bytes, "encoded_data");
        let (fp, restored) = read_encoded_dataset(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fp, fingerprint);
        assert_ne!(fingerprint, SourceFingerprint::of(b"different bytes"));
        assert_eq!(restored.num_rows(), encoded.num_rows());
        for c in 0..encoded.num_columns() {
            assert_eq!(restored.column(c), encoded.column(c));
            assert_eq!(restored.dict(c).values(), encoded.dict(c).values());
        }
        for (r_idx, row) in ds.rows().enumerate() {
            for (c, value) in row.iter().enumerate() {
                assert_eq!(restored.decode_cell(r_idx, c), value);
            }
        }

        // A code pushed out of its dictionary's space is typed corruption.
        let mut tampered = bytes.clone();
        let last = tampered.len() - 4;
        tampered[last..].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = ByteReader::new(&tampered, "encoded_data");
        assert!(matches!(read_encoded_dataset(&mut r), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn absurd_dag_node_counts_fail_before_allocating() {
        let mut w = ByteWriter::new();
        w.usize(usize::MAX / 2); // crafted node count
        w.usize(0); // no edges
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "dag");
        assert!(matches!(read_dag(&mut r), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn cyclic_structures_are_rejected() {
        let mut w = ByteWriter::new();
        w.usize(2); // nodes
        w.usize(2); // edges
        w.usize(0);
        w.usize(1);
        w.usize(1);
        w.usize(0); // 1 → 0 closes a cycle
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "dag");
        assert!(matches!(read_dag(&mut r), Err(StoreError::Corrupt(_))));
    }
}
