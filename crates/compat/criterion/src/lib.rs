//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! The workspace builds without network access, so the real crates.io
//! `criterion` is unavailable. This crate implements the call surface the
//! `bclean-bench` benches use — `Criterion::benchmark_group`, group
//! configuration (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — as a
//! small wall-clock harness: warm up, sample, and report min / mean / max
//! per-iteration time on stdout. No statistics, plots, or baselines; swap in
//! real criterion by pointing the workspace manifest back at crates.io.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.to_string(), self.sample_size, self.warm_up_time, self.measurement_time, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target duration of the sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, self.warm_up_time, self.measurement_time, |b| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, self.warm_up_time, self.measurement_time, |b| f(b, input));
        self
    }

    /// Close the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name / parameter pair, rendered `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    // Warm-up phase: keep running single iterations until the budget is spent,
    // and use the observed per-iteration time to size the samples.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        f(&mut bencher);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters as u32;
    let per_sample = measurement / samples as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        bencher.iters = iters_per_sample;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        let per = bencher.elapsed / iters_per_sample as u32;
        min = min.min(per);
        max = max.max(per);
        total += bencher.elapsed;
        total_iters += iters_per_sample;
    }
    let mean = total / total_iters.max(1) as u32;
    println!("{label:<60} time: [{} {} {}]", fmt_time(min), fmt_time(mean), fmt_time(max));
}

fn fmt_time(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Collect benchmark functions into a runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a set of groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("method", "dataset").to_string(), "method/dataset");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
