//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds without network access, so the real crates.io
//! `serde_derive` is unavailable. The sibling `crates/compat/serde` crate
//! provides blanket implementations of its marker traits for every type,
//! which means these derives only need to (a) exist so `#[derive(Serialize,
//! Deserialize)]` resolves and (b) register the `#[serde(...)]` helper
//! attribute so field annotations like `#[serde(skip)]` parse. They expand
//! to nothing.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` (the blanket impl in `serde` already covers
/// the type).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` (the blanket impl in `serde` already
/// covers the type).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
