//! Offline stand-in for `rand` (0.8 API subset).
//!
//! The workspace builds without network access, so the real crates.io `rand`
//! is unavailable. This crate implements exactly the surface the `datagen`
//! crate uses — `StdRng::seed_from_u64`, `Rng::gen_range` over half-open
//! integer/float ranges, `Rng::gen_bool`, and `SliceRandom::{choose,
//! shuffle}` — on top of a SplitMix64 core. Generation is fully
//! deterministic per seed, which is what the seeded benchmark generators
//! need; the streams differ from upstream `StdRng` (ChaCha12), so absolute
//! generated values are stable *within* this workspace only.

use std::ops::Range;

/// Core random-number source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable RNG (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for `StdRng`).
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it to a full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift maps 64 random bits onto [0, span) with
                // negligible bias for the small spans used here.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG of this stand-in: SplitMix64 (Steele et al.), a
    /// fast, well-distributed 64-bit generator with a one-word state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut word = [0u8; 8];
            word.copy_from_slice(&seed[..8]);
            StdRng { state: u64::from_le_bytes(word) }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..23i32);
            assert!((5..23).contains(&v));
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        assert!(items.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
