//! Offline stand-in for `proptest`.
//!
//! The workspace builds without network access, so the real crates.io
//! `proptest` is unavailable. This crate implements the subset of its API the
//! workspace's property tests use — the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_recursive`, ranges and string
//! literals as strategies, [`strategy::Just`], `any::<T>()`, `collection::vec`,
//! `string::string_regex`, `char::range`, `prop_oneof!`, and the `proptest!`
//! / `prop_assert*!` macros — as a *generation-only* property test runner:
//!
//! * cases are generated from a SplitMix64 RNG seeded from the test name, so
//!   every run explores the same deterministic sequence;
//! * failures panic with the case number (no shrinking — rerun under real
//!   proptest for a minimal counterexample);
//! * the default case count is 64 (real proptest: 256) to keep CI fast;
//!   `ProptestConfig::with_cases` overrides it as usual.

pub mod test_runner {
    //! Runner configuration and RNG (subset of `proptest::test_runner`).

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 RNG used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name (FNV-1a hash).
        pub fn deterministic(name: &str) -> TestRng {
            let mut hash = 0xcbf29ce484222325u64;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
            TestRng { state: hash }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "empty choice");
            (((self.next_u64() as u128).wrapping_mul(bound as u128)) >> 64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`](trait@Strategy) trait and combinators (subset of
    //! `proptest::strategy`).

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of one type. Unlike real proptest there is no
    /// value tree and no shrinking: `generate` directly yields a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discard generated values failing the predicate (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, f }
        }

        /// Recursive strategies: `f` maps a strategy for the inner levels to a
        /// strategy for one level up; generation expands a random number of
        /// levels up to `depth`. `desired_size` / `expected_branch_size` are
        /// accepted for signature compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            Recursive {
                base: BoxedStrategy::new(self),
                depth,
                expand: Arc::new(move |inner| BoxedStrategy::new(f(inner))),
            }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(self)
        }
    }

    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cheaply clonable, type-erased strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> BoxedStrategy<V> {
        /// Erase a concrete strategy.
        pub fn new<S: Strategy<Value = V> + 'static>(strategy: S) -> BoxedStrategy<V> {
            BoxedStrategy(Arc::new(strategy))
        }
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let value = self.inner.generate(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
        }
    }

    /// See [`Strategy::prop_recursive`].
    #[derive(Clone)]
    pub struct Recursive<V> {
        base: BoxedStrategy<V>,
        depth: u32,
        expand: Arc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    }

    impl<V> Strategy for Recursive<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let levels = rng.below(self.depth as usize + 1) as u32;
            let mut strategy = self.base.clone();
            for _ in 0..levels {
                strategy = (self.expand)(strategy);
            }
            strategy.generate(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        alternatives: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A uniform union over the given strategies; must be non-empty.
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
            Union { alternatives }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union { alternatives: self.alternatives.clone() }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.alternatives.len());
            self.alternatives[pick].generate(rng)
        }
    }

    /// Numbers that half-open / inclusive ranges can generate.
    pub trait RangeValue: Copy + PartialOrd {
        /// Uniform sample from `[low, high)`.
        fn sample(rng: &mut TestRng, low: Self, high: Self) -> Self;

        /// The next value up (for inclusive upper bounds); saturating.
        fn successor(self) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn sample(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low < high, "empty range strategy");
                    let span = (high as i128 - low as i128) as u128;
                    let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                    (low as i128 + hi as i128) as $t
                }

                fn successor(self) -> Self {
                    self.saturating_add(1)
                }
            }
        )*};
    }

    impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_value_float {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn sample(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low < high, "empty range strategy");
                    low + rng.unit_f64() as $t * (high - low)
                }

                fn successor(self) -> Self {
                    self
                }
            }
        )*};
    }

    impl_range_value_float!(f32, f64);

    impl<T: RangeValue> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng, self.start, self.end)
        }
    }

    impl<T: RangeValue> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng, *self.start(), self.end().successor())
        }
    }

    /// String literals are regex strategies, as in real proptest.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::compile_regex(self)
                .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
                .generate(rng)
        }
    }

    macro_rules! impl_strategy_for_tuple {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_strategy_for_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait ArbitraryValue: Sized {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    impl ArbitraryValue for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a')
        }
    }

    /// The canonical strategy of a type (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange { min: exact, max_exclusive: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            SizeRange { min: range.start, max_exclusive: range.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *range.start(), max_exclusive: range.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.max_exclusive > self.size.min, "empty vec size range");
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! String strategies (subset of `proptest::string`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Error for unsupported / malformed patterns.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One term of the supported pattern language: a set of admissible
    /// characters plus a repetition count range.
    #[derive(Debug, Clone)]
    struct Term {
        choices: Vec<char>,
        min: usize,
        max_inclusive: usize,
    }

    /// Strategy generating strings matching a simple regex: concatenations of
    /// literal characters and `[...]` classes, each with an optional `*`,
    /// `+`, `?`, `{n}`, `{m,}` or `{m,n}` quantifier. Groups and alternation
    /// are not supported (the workspace's tests don't use them).
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        terms: Vec<Term>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for term in &self.terms {
                let span = term.max_inclusive - term.min + 1;
                let count = term.min + rng.below(span);
                for _ in 0..count {
                    out.push(term.choices[rng.below(term.choices.len())]);
                }
            }
            out
        }
    }

    /// Compile `pattern` into a generator strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        compile_regex(pattern)
    }

    pub(crate) fn compile_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut terms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| Error("unterminated character class".into()))?;
                    let class: Vec<char> = chars[i + 1..i + 1 + close].to_vec();
                    i += close + 2;
                    expand_class(&class)?
                }
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(Error(format!(
                        "unsupported construct {:?} (stub supports literals, classes and quantifiers only)",
                        chars[i]
                    )));
                }
                '\\' => {
                    i += 1;
                    let escaped = *chars.get(i).ok_or_else(|| Error("dangling escape".into()))?;
                    i += 1;
                    match escaped {
                        'd' => ('0'..='9').collect(),
                        'w' => ('a'..='z')
                            .chain('A'..='Z')
                            .chain('0'..='9')
                            .chain(std::iter::once('_'))
                            .collect(),
                        's' => vec![' ', '\t'],
                        other => vec![other],
                    }
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                literal => {
                    i += 1;
                    vec![literal]
                }
            };
            let (min, max_inclusive) = parse_quantifier(&chars, &mut i)?;
            terms.push(Term { choices, min, max_inclusive });
        }
        Ok(RegexGeneratorStrategy { terms })
    }

    /// Expand a class body (between `[` and `]`) into its member characters.
    fn expand_class(class: &[char]) -> Result<Vec<char>, Error> {
        if class.first() == Some(&'^') {
            let excluded = expand_class(&class[1..])?;
            return Ok((' '..='~').filter(|c| !excluded.contains(c)).collect());
        }
        let mut choices = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if class[i] == '\\' {
                i += 1;
                if i < class.len() {
                    choices.push(class[i]);
                    i += 1;
                }
            } else if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                if lo > hi {
                    return Err(Error(format!("inverted class range {lo}-{hi}")));
                }
                choices.extend(lo..=hi);
                i += 3;
            } else {
                choices.push(class[i]);
                i += 1;
            }
        }
        if choices.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(choices)
    }

    /// Parse an optional quantifier at `*i`, advancing past it.
    fn parse_quantifier(chars: &[char], i: &mut usize) -> Result<(usize, usize), Error> {
        const UNBOUNDED_CAP: usize = 8;
        match chars.get(*i) {
            Some('*') => {
                *i += 1;
                Ok((0, UNBOUNDED_CAP))
            }
            Some('+') => {
                *i += 1;
                Ok((1, UNBOUNDED_CAP))
            }
            Some('?') => {
                *i += 1;
                Ok((0, 1))
            }
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error("unterminated quantifier".into()))?;
                let body: String = chars[*i + 1..*i + close].iter().collect();
                *i += close + 1;
                let parse = |s: &str| {
                    s.trim().parse::<usize>().map_err(|_| Error(format!("bad quantifier {body:?}")))
                };
                if let Some((lo, hi)) = body.split_once(',') {
                    let min = parse(lo)?;
                    let max = if hi.trim().is_empty() { min + UNBOUNDED_CAP } else { parse(hi)? };
                    Ok((min, max))
                } else {
                    let exact = parse(&body)?;
                    Ok((exact, exact))
                }
            }
            _ => Ok((1, 1)),
        }
    }
}

pub mod char {
    //! Character strategies (subset of `proptest::char`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from an inclusive scalar-value range.
    #[derive(Debug, Clone)]
    pub struct CharRange {
        low: u32,
        high: u32,
    }

    impl Strategy for CharRange {
        type Value = char;

        fn generate(&self, rng: &mut TestRng) -> char {
            for _ in 0..64 {
                let v = self.low + rng.below((self.high - self.low + 1) as usize) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
            char::from_u32(self.low).expect("range start is a valid char")
        }
    }

    /// All characters in `[low, high]`, mirroring `proptest::char::range`.
    pub fn range(low: char, high: char) -> CharRange {
        assert!(low <= high, "inverted char range");
        CharRange { low: low as u32, high: high as u32 }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($strategy)),+
        ])
    };
}

/// Assert inside a property (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests, mirroring `proptest::proptest!`. Each test runs
/// `config.cases` deterministic generated cases; a failing case panics with
/// its index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let run = || {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                };
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!("proptest stub: case {case} of {} failed (no shrinking available)", config.cases);
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_literals_generate_in_bounds() {
        let mut rng = TestRng::deterministic("smoke");
        for _ in 0..500 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_combinators_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strategy =
            prop_oneof![(0usize..3).prop_map(|n| n * 2), Just(99usize),].prop_filter("nonzero", |v| *v != 0);
        for _ in 0..200 {
            let v = Strategy::generate(&strategy, &mut rng);
            assert!(v == 2 || v == 4 || v == 99);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn the_macro_itself_works(xs in crate::collection::vec(0u8..10, 1..5), flag in any::<bool>()) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert_eq!(flag, flag);
        }
    }
}
