//! Offline stand-in for `serde`.
//!
//! The workspace builds without network access, so the real crates.io `serde`
//! is unavailable. Nothing in this repository actually serialises through
//! serde yet — the `#[derive(Serialize, Deserialize)]` annotations only
//! declare intent — so this crate supplies the two trait names as markers
//! with blanket implementations, and re-exports no-op derive macros from the
//! sibling `serde_derive` stub. Swapping back to real serde is a
//! two-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; every type implements it.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; every sized type
/// implements it.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The `serde::de` module surface used by generic bounds.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// The `serde::ser` module surface used by generic bounds.
pub mod ser {
    pub use crate::Serialize;
}
