//! Raha+Baran-lite: semi-supervised detection + context-based correction.
//!
//! Raha (SIGMOD 2019) is a configuration-free error *detection* system that
//! runs a battery of detection strategies, builds per-cell feature vectors
//! and uses ~20 user-labelled tuples to train a classifier. Baran (PVLDB
//! 2020) then *corrects* the detected cells with context models. This
//! reimplementation keeps the architecture at reduced scale:
//!
//! * **detectors**: null detector, frequency-outlier detector,
//!   character-pattern outlier detector, and violations of automatically
//!   discovered approximate FDs;
//! * **calibration**: a handful of labelled tuples (cells with a known
//!   clean/dirty flag) pick the vote threshold that maximises F1 on the
//!   labels — the stand-in for Raha's trained classifier;
//! * **correction**: for each detected cell, Baran-lite votes among value
//!   candidates suggested by co-occurrence context models and FD majorities.
//!
//! The characteristic failure mode from the paper — detection errors
//! propagating into correction — is preserved: cells the detector misses are
//! never repaired, and falsely detected cells can be overwritten.

use std::collections::{HashMap, HashSet};

use bclean_data::{CellRef, Dataset, Domains, Value};

use crate::common::Cleaner;
use crate::dc::{discover_fds, FunctionalDependency};

/// A labelled cell used for calibration: `true` means the cell is erroneous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelledCell {
    /// The cell.
    pub at: CellRef,
    /// Whether the cell is dirty in the ground truth.
    pub is_error: bool,
}

/// Configuration of Raha+Baran-lite.
#[derive(Debug, Clone)]
pub struct RahaBaranConfig {
    /// Confidence threshold for automatic FD discovery.
    pub fd_confidence: f64,
    /// A value is a frequency outlier when it occurs at most this many times
    /// while its column has a value occurring at least `frequent_min` times.
    pub rare_max: usize,
    /// See `rare_max`.
    pub frequent_min: usize,
    /// Minimum support for a Baran context-model suggestion.
    pub min_support: usize,
}

impl Default for RahaBaranConfig {
    fn default() -> Self {
        RahaBaranConfig { fd_confidence: 0.85, rare_max: 1, frequent_min: 3, min_support: 2 }
    }
}

/// The Raha+Baran-lite baseline.
#[derive(Debug, Clone)]
pub struct RahaBaranLite {
    labels: Vec<LabelledCell>,
    config: RahaBaranConfig,
}

impl RahaBaranLite {
    /// Create the baseline with user-labelled cells (typically the cells of
    /// ~20 labelled tuples, as in the paper's setup).
    pub fn new(labels: Vec<LabelledCell>) -> RahaBaranLite {
        RahaBaranLite { labels, config: RahaBaranConfig::default() }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: RahaBaranConfig) -> RahaBaranLite {
        self.config = config;
        self
    }

    /// Run the detection ensemble, returning each cell's vote count
    /// (0 ..= number of detectors).
    pub fn detection_votes(&self, dirty: &Dataset) -> HashMap<CellRef, usize> {
        let mut votes: HashMap<CellRef, usize> = HashMap::new();
        let domains = Domains::compute(dirty);
        let fds = discover_fds(dirty, self.config.fd_confidence);

        // Detector 1: nulls.
        for (r, row) in dirty.rows().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if v.is_null() {
                    *votes.entry(CellRef::new(r, c)).or_insert(0) += 1;
                }
            }
        }
        // Detector 2: frequency outliers.
        for (r, row) in dirty.rows().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if v.is_null() {
                    continue;
                }
                let domain = domains.attribute(c);
                let count = domain.count(v);
                let max_count = domain.mode().map(|m| domain.count(m)).unwrap_or(0);
                if count <= self.config.rare_max && max_count >= self.config.frequent_min {
                    *votes.entry(CellRef::new(r, c)).or_insert(0) += 1;
                }
            }
        }
        // Detector 3: character-pattern outliers.
        let column_patterns: Vec<HashMap<String, usize>> = (0..dirty.num_columns())
            .map(|c| {
                let mut counts: HashMap<String, usize> = HashMap::new();
                for row in dirty.rows() {
                    if !row[c].is_null() {
                        *counts.entry(char_pattern(&row[c].as_text())).or_insert(0) += 1;
                    }
                }
                counts
            })
            .collect();
        for (r, row) in dirty.rows().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if v.is_null() {
                    continue;
                }
                let counts = &column_patterns[c];
                let total: usize = counts.values().sum();
                let mine = counts.get(&char_pattern(&v.as_text())).copied().unwrap_or(0);
                if total >= 10 && (mine as f64) < 0.05 * total as f64 {
                    *votes.entry(CellRef::new(r, c)).or_insert(0) += 1;
                }
            }
        }
        // Detector 4: discovered-FD violations.
        for fd in &fds {
            for at in fd.violations(dirty) {
                *votes.entry(at).or_insert(0) += 1;
            }
        }
        votes
    }

    /// Pick the vote threshold that maximises F1 on the labelled cells
    /// (falls back to 1 when no labels were provided).
    pub fn calibrate_threshold(&self, votes: &HashMap<CellRef, usize>) -> usize {
        if self.labels.is_empty() {
            return 1;
        }
        let mut best = (1usize, -1.0f64);
        for threshold in 1..=4usize {
            let mut tp = 0.0;
            let mut fp = 0.0;
            let mut fne = 0.0;
            for label in &self.labels {
                let detected = votes.get(&label.at).copied().unwrap_or(0) >= threshold;
                match (detected, label.is_error) {
                    (true, true) => tp += 1.0,
                    (true, false) => fp += 1.0,
                    (false, true) => fne += 1.0,
                    (false, false) => {}
                }
            }
            let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            let recall = if tp + fne > 0.0 { tp / (tp + fne) } else { 0.0 };
            let f1 =
                if precision + recall > 0.0 { 2.0 * precision * recall / (precision + recall) } else { 0.0 };
            if f1 > best.1 {
                best = (threshold, f1);
            }
        }
        best.0
    }

    /// Detected cells after calibration.
    pub fn detect(&self, dirty: &Dataset) -> HashSet<CellRef> {
        let votes = self.detection_votes(dirty);
        let threshold = self.calibrate_threshold(&votes);
        votes.into_iter().filter(|(_, v)| *v >= threshold).map(|(at, _)| at).collect()
    }

    /// Baran-lite correction for one detected cell.
    fn correct_cell(
        &self,
        dirty: &Dataset,
        domains: &Domains,
        fds: &[FunctionalDependency],
        at: CellRef,
    ) -> Option<Value> {
        let row = dirty.row(at.row).expect("row in range");
        let observed = &row[at.col];
        let mut candidate_votes: HashMap<Value, f64> = HashMap::new();

        // Context model: values that co-occur with the rest of the tuple.
        for (c, context_value) in row.iter().enumerate() {
            if c == at.col || context_value.is_null() {
                continue;
            }
            let mut counts: HashMap<Value, usize> = HashMap::new();
            for other in dirty.rows() {
                if &other[c] == context_value && !other[at.col].is_null() {
                    *counts.entry(other[at.col].clone()).or_insert(0) += 1;
                }
            }
            if let Some((value, count)) =
                counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            {
                if count >= self.config.min_support {
                    *candidate_votes.entry(value).or_insert(0.0) += 1.0;
                }
            }
        }
        // FD majority suggestions get a strong vote.
        for fd in fds {
            if let Some(v) = fd.suggested_repair(dirty, at, self.config.min_support) {
                *candidate_votes.entry(v).or_insert(0.0) += 2.0;
            }
        }
        // Column mode as a weak fallback.
        if let Some(mode) = domains.attribute(at.col).mode() {
            *candidate_votes.entry(mode.clone()).or_insert(0.0) += 0.5;
        }

        let (value, _) = candidate_votes.into_iter().max_by(|a, b| {
            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| b.0.cmp(&a.0))
        })?;
        if &value == observed {
            None
        } else {
            Some(value)
        }
    }
}

/// Abstract a string to its character-class pattern: letters → `a`, digits →
/// `9`, everything else kept verbatim (`"35150"` → `"99999"`, `"7:10a.m."` →
/// `"9:99a.a."`).
pub fn char_pattern(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphabetic() {
                'a'
            } else if c.is_ascii_digit() {
                '9'
            } else {
                c
            }
        })
        .collect()
}

impl Cleaner for RahaBaranLite {
    fn name(&self) -> &str {
        "Raha+Baran"
    }

    fn clean(&self, dirty: &Dataset) -> Dataset {
        let domains = Domains::compute(dirty);
        let fds = discover_fds(dirty, self.config.fd_confidence);
        let detected = self.detect(dirty);
        let mut cleaned = dirty.clone();
        for at in detected {
            if let Some(v) = self.correct_cell(dirty, &domains, &fds, at) {
                cleaned.set_cell(at.row, at.col, v).expect("cell in range");
            }
        }
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::dataset_from;

    fn dirty() -> Dataset {
        dataset_from(
            &["Zip", "State", "City"],
            &[
                vec!["35150", "CA", "sylacauga"],
                vec!["35150", "CA", "sylacauga"],
                vec!["35150", "CA", "sylacauga"],
                vec!["35150", "KT", "sylacauga"], // inconsistency
                vec!["35960", "KT", "centre"],
                vec!["35960", "KT", "centre"],
                vec!["35960", "KT", "centrq"], // typo
                vec!["35960", "", "centre"],   // missing
                vec!["35960", "KT", "centre"],
                vec!["35150", "CA", "sylacauga"],
            ],
        )
    }

    fn labels() -> Vec<LabelledCell> {
        vec![
            LabelledCell { at: CellRef::new(3, 1), is_error: true },
            LabelledCell { at: CellRef::new(6, 2), is_error: true },
            LabelledCell { at: CellRef::new(7, 1), is_error: true },
            LabelledCell { at: CellRef::new(0, 0), is_error: false },
            LabelledCell { at: CellRef::new(1, 1), is_error: false },
            LabelledCell { at: CellRef::new(4, 2), is_error: false },
        ]
    }

    #[test]
    fn char_pattern_abstaction() {
        assert_eq!(char_pattern("35150"), "99999");
        assert_eq!(char_pattern("CA"), "aa");
        assert_eq!(char_pattern("7:10a.m."), "9:99a.a.");
        assert_eq!(char_pattern(""), "");
    }

    #[test]
    fn detects_and_repairs_known_errors() {
        let system = RahaBaranLite::new(labels());
        let detected = system.detect(&dirty());
        assert!(detected.contains(&CellRef::new(6, 2)), "typo not detected: {detected:?}");
        assert!(detected.contains(&CellRef::new(7, 1)), "null not detected");
        let cleaned = system.clean(&dirty());
        assert_eq!(cleaned.cell(6, 2).unwrap(), &Value::text("centre"));
        assert_eq!(cleaned.cell(7, 1).unwrap(), &Value::text("KT"));
    }

    #[test]
    fn undetected_errors_are_never_repaired() {
        // Error propagation: make detection miss everything by demanding 4 votes.
        let system =
            RahaBaranLite::new(vec![LabelledCell { at: CellRef::new(0, 0), is_error: false }]).with_config(
                RahaBaranConfig { rare_max: 0, frequent_min: 1000, fd_confidence: 1.1, ..Default::default() },
            );
        let cleaned = system.clean(&dirty());
        // The typo survives because no detector fires.
        assert_eq!(cleaned.cell(6, 2).unwrap(), &Value::text("centrq"));
    }

    #[test]
    fn calibration_picks_reasonable_threshold() {
        let system = RahaBaranLite::new(labels());
        let votes = system.detection_votes(&dirty());
        let t = system.calibrate_threshold(&votes);
        assert!((1..=4).contains(&t));
        // Unlabelled system defaults to threshold 1.
        let unlabelled = RahaBaranLite::new(vec![]);
        assert_eq!(unlabelled.calibrate_threshold(&votes), 1);
    }

    #[test]
    fn clean_cells_mostly_preserved() {
        let system = RahaBaranLite::new(labels());
        let cleaned = system.clean(&dirty());
        // Row 0 is fully clean and must be untouched.
        assert_eq!(cleaned.row(0).unwrap(), dirty().row(0).unwrap());
        assert_eq!(system.name(), "Raha+Baran");
    }
}
