//! Garf-lite: rule learning from dirty data, applied as repairs.
//!
//! Garf (PVLDB 2022) trains a sequence-GAN over the dirty data to generate
//! explainable repair rules of the form "if attribute A has value a then
//! attribute B has value b", then applies high-confidence rules. The GAN is
//! out of scope here; what matters for the comparison is the *behaviour* of a
//! self-supervised rule-based repairer: rules are mined directly from the
//! dirty data with support/confidence thresholds and applied where violated.
//! Like the original, this gives high precision but low recall — only errors
//! covered by a confidently-mined rule are ever repaired.

use std::collections::HashMap;

use bclean_data::{Dataset, Value};

use crate::common::Cleaner;

/// One mined repair rule: `lhs_col = lhs_value  ⇒  rhs_col = rhs_value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Determinant column index.
    pub lhs_col: usize,
    /// Determinant value.
    pub lhs_value: Value,
    /// Dependent column index.
    pub rhs_col: usize,
    /// Dependent value implied by the rule.
    pub rhs_value: Value,
    /// Number of tuples supporting the rule.
    pub support: usize,
    /// Fraction of tuples with the determinant that also satisfy the consequence.
    pub confidence: f64,
}

/// Configuration of Garf-lite rule mining.
#[derive(Debug, Clone)]
pub struct GarfConfig {
    /// Minimum number of supporting tuples.
    pub min_support: usize,
    /// Minimum rule confidence.
    pub min_confidence: f64,
}

impl Default for GarfConfig {
    fn default() -> Self {
        GarfConfig { min_support: 3, min_confidence: 0.9 }
    }
}

/// The Garf-lite baseline.
#[derive(Debug, Clone, Default)]
pub struct GarfLite {
    config: GarfConfig,
}

impl GarfLite {
    /// Create the baseline with default mining thresholds.
    pub fn new() -> GarfLite {
        GarfLite { config: GarfConfig::default() }
    }

    /// Override the mining configuration.
    pub fn with_config(config: GarfConfig) -> GarfLite {
        GarfLite { config }
    }

    /// Mine value-level rules from the (dirty) dataset.
    pub fn mine_rules(&self, dataset: &Dataset) -> Vec<Rule> {
        let m = dataset.num_columns();
        let mut rules = Vec::new();
        for lhs_col in 0..m {
            // Group rows by determinant value.
            let mut groups: HashMap<Value, Vec<usize>> = HashMap::new();
            for (r, row) in dataset.rows().enumerate() {
                if !row[lhs_col].is_null() {
                    groups.entry(row[lhs_col].clone()).or_default().push(r);
                }
            }
            for (lhs_value, rows) in groups {
                if rows.len() < self.config.min_support {
                    continue;
                }
                for rhs_col in 0..m {
                    if rhs_col == lhs_col {
                        continue;
                    }
                    let mut counts: HashMap<Value, usize> = HashMap::new();
                    let mut non_null = 0usize;
                    for &r in &rows {
                        let v = dataset.cell(r, rhs_col).expect("cell in range");
                        if !v.is_null() {
                            non_null += 1;
                            *counts.entry(v.clone()).or_insert(0) += 1;
                        }
                    }
                    if let Some((rhs_value, count)) =
                        counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                    {
                        // Confidence over the rows where the dependent is present:
                        // rules are also used to fill missing values.
                        let confidence = count as f64 / non_null.max(1) as f64;
                        if count >= self.config.min_support && confidence >= self.config.min_confidence {
                            rules.push(Rule {
                                lhs_col,
                                lhs_value: lhs_value.clone(),
                                rhs_col,
                                rhs_value,
                                support: count,
                                confidence,
                            });
                        }
                    }
                }
            }
        }
        rules
    }
}

impl Cleaner for GarfLite {
    fn name(&self) -> &str {
        "Garf"
    }

    fn clean(&self, dirty: &Dataset) -> Dataset {
        let rules = self.mine_rules(dirty);
        let mut cleaned = dirty.clone();
        for (r, row) in dirty.rows().enumerate() {
            for rule in &rules {
                if row[rule.lhs_col] == rule.lhs_value && row[rule.rhs_col] != rule.rhs_value {
                    cleaned.set_cell(r, rule.rhs_col, rule.rhs_value.clone()).expect("cell in range");
                }
            }
        }
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::dataset_from;

    fn dirty() -> Dataset {
        dataset_from(
            &["Zip", "State", "Name"],
            &[
                vec!["35150", "CA", "a"],
                vec!["35150", "CA", "b"],
                vec!["35150", "CA", "c"],
                vec!["35150", "KT", "d"], // rule violation
                vec!["35960", "KT", "e"],
                vec!["35960", "KT", "f"],
                vec!["35960", "KT", "g"],
                vec!["35960", "", "h"], // missing dependent
            ],
        )
    }

    #[test]
    fn mines_high_confidence_rules() {
        let rules = GarfLite::new().mine_rules(&dirty());
        // 35960 -> KT has 3/3 non-null confidence; 35150 -> CA has 3/4 = 0.75 < 0.9.
        assert!(rules
            .iter()
            .any(|r| r.lhs_value == Value::parse("35960") && r.rhs_value == Value::text("KT")));
        assert!(!rules.iter().any(|r| r.lhs_value == Value::parse("35150") && r.rhs_col == 1));
        for r in &rules {
            assert!(r.confidence >= 0.9);
            assert!(r.support >= 3);
        }
    }

    #[test]
    fn applies_rules_to_violating_cells() {
        let cleaned = GarfLite::new().clean(&dirty());
        // The missing State under 35960 is filled by the mined rule.
        assert_eq!(cleaned.cell(7, 1).unwrap(), &Value::text("KT"));
        // The 35150 -> KT error is NOT fixed: the dirty data polluted the rule
        // below the confidence threshold (low recall, as in the paper).
        assert_eq!(cleaned.cell(3, 1).unwrap(), &Value::text("KT"));
    }

    #[test]
    fn lower_confidence_threshold_raises_recall() {
        let garf = GarfLite::with_config(GarfConfig { min_support: 3, min_confidence: 0.7 });
        let cleaned = garf.clean(&dirty());
        assert_eq!(cleaned.cell(3, 1).unwrap(), &Value::text("CA"));
    }

    #[test]
    fn no_rules_on_unique_columns() {
        let d = dataset_from(&["a", "b"], &[vec!["1", "x"], vec!["2", "y"], vec!["3", "z"]]);
        let rules = GarfLite::new().mine_rules(&d);
        assert!(rules.is_empty());
        assert_eq!(GarfLite::new().clean(&d), d);
        assert_eq!(GarfLite::new().name(), "Garf");
    }
}
