//! PClean-lite: generative cleaning with a hand-specified model.
//!
//! PClean (Lew et al., AISTATS 2021) asks a domain expert to write a
//! probabilistic program describing how clean records are generated and how
//! errors corrupt them, then runs inference in that model. The expensive part
//! — authoring the program — is exactly what the BClean paper criticises.
//!
//! This reimplementation captures the same trade-off without a PPL runtime:
//! the "program" is a [`PCleanModel`] listing, per attribute, a prior
//! (empirical frequencies), optional parent attributes whose values the
//! attribute depends on, and an error model (typo likelihood by edit
//! distance + a missing-value probability). Inference is enumerative MAP per
//! cell: `argmax_c  P(c | parents) · P(observed | c)`.
//!
//! When the hand-written dependencies match the data (Flights), this works
//! very well; when the expert cannot describe the domain (Soccer), the priors
//! are badly mis-specified and quality collapses — the behaviour reported in
//! Table 4 of the paper.

use std::collections::HashMap;

use bclean_data::{Dataset, Domains, Value};

use crate::common::Cleaner;

/// The per-attribute piece of a PClean-lite "program".
#[derive(Debug, Clone)]
pub struct AttributeModel {
    /// Attribute name this model describes.
    pub attribute: String,
    /// Names of parent attributes whose values this attribute depends on.
    pub parents: Vec<String>,
    /// Probability that an observed value is a typo of the latent clean value.
    pub typo_probability: f64,
    /// Probability that the latent value was replaced by null.
    pub missing_probability: f64,
}

impl AttributeModel {
    /// A model with no parents and default error rates. The default typo
    /// probability is deliberately generous (the "expert" knows the data is
    /// noisy), which is what lets the per-cell MAP flip obvious typos.
    pub fn independent(attribute: impl Into<String>) -> AttributeModel {
        AttributeModel {
            attribute: attribute.into(),
            parents: Vec::new(),
            typo_probability: 0.3,
            missing_probability: 0.05,
        }
    }

    /// A model whose value is determined by parent attributes. Dependent
    /// attributes are repaired by pooling all rows sharing the parent values
    /// into one latent object, as PClean's latent-object model does.
    pub fn dependent(attribute: impl Into<String>, parents: Vec<&str>) -> AttributeModel {
        AttributeModel {
            attribute: attribute.into(),
            parents: parents.into_iter().map(String::from).collect(),
            typo_probability: 0.3,
            missing_probability: 0.05,
        }
    }
}

/// A full PClean-lite model: one [`AttributeModel`] per modelled attribute.
/// Unmodelled attributes are left untouched, mirroring a partial program.
#[derive(Debug, Clone, Default)]
pub struct PCleanModel {
    attributes: Vec<AttributeModel>,
}

impl PCleanModel {
    /// An empty model (cleans nothing).
    pub fn new() -> PCleanModel {
        PCleanModel::default()
    }

    /// Add an attribute model (builder style).
    pub fn with(mut self, model: AttributeModel) -> PCleanModel {
        self.attributes.push(model);
        self
    }

    /// The number of modelled attributes (a proxy for "lines of PPL").
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when no attributes are modelled.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }
}

/// The PClean-lite baseline.
#[derive(Debug, Clone)]
pub struct PCleanLite {
    model: PCleanModel,
    /// Candidates with prior probability below this are not considered.
    min_prior: f64,
}

impl PCleanLite {
    /// Create the baseline from a hand-specified model.
    pub fn new(model: PCleanModel) -> PCleanLite {
        PCleanLite { model, min_prior: 1e-6 }
    }

    /// Probability of observing `observed` when the latent clean value is
    /// `latent`, under the attribute's error model.
    fn observation_likelihood(spec: &AttributeModel, observed: &Value, latent: &Value) -> f64 {
        if observed.is_null() {
            return spec.missing_probability;
        }
        if observed == latent {
            return 1.0 - spec.typo_probability - spec.missing_probability;
        }
        // Typo likelihood decays with edit distance.
        let distance = edit_distance(&observed.as_text(), &latent.as_text());
        if distance == 0 {
            1.0 - spec.typo_probability - spec.missing_probability
        } else {
            spec.typo_probability * (0.3f64).powi(distance as i32 - 1)
        }
    }

    fn clean_column(&self, dirty: &Dataset, domains: &Domains, spec: &AttributeModel, cleaned: &mut Dataset) {
        let Ok(col) = dirty.schema().index_of(&spec.attribute) else {
            return;
        };
        let parent_cols: Vec<usize> =
            spec.parents.iter().filter_map(|p| dirty.schema().index_of(p).ok()).collect();
        let domain = domains.attribute(col);
        let total = domain.total().max(1) as f64;

        if !parent_cols.is_empty() {
            // Latent-object pooling: every group of rows sharing the parent
            // values is assumed to describe one latent object whose attribute
            // value is the group's most frequent observation.
            let mut groups: HashMap<Vec<Value>, HashMap<Value, usize>> = HashMap::new();
            for row in dirty.rows() {
                if row[col].is_null() {
                    continue;
                }
                let key: Vec<Value> = parent_cols.iter().map(|&p| row[p].clone()).collect();
                *groups.entry(key).or_default().entry(row[col].clone()).or_insert(0) += 1;
            }
            for (r, row) in dirty.rows().enumerate() {
                let observed = &row[col];
                let parent_key: Vec<Value> = parent_cols.iter().map(|&p| row[p].clone()).collect();
                let Some(counts) = groups.get(&parent_key) else { continue };
                let support: usize = counts.values().sum();
                if support < 2 {
                    continue;
                }
                let latent = counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                    .map(|(v, _)| v.clone())
                    .expect("non-empty group");
                if &latent != observed {
                    cleaned.set_cell(r, col, latent).expect("cell in range");
                }
            }
            return;
        }

        // Independent attribute: per-cell MAP over the domain with the
        // frequency prior and the typo/missing observation model.
        for (r, row) in dirty.rows().enumerate() {
            let observed = &row[col];
            let mut best: Option<(f64, Value)> = None;
            for candidate in domain.values() {
                let prior = domain.count(candidate) as f64 / total;
                if prior < self.min_prior {
                    continue;
                }
                let likelihood = Self::observation_likelihood(spec, observed, candidate);
                let score = prior * likelihood;
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    best = Some((score, candidate.clone()));
                }
            }
            if let Some((_, value)) = best {
                if &value != observed {
                    cleaned.set_cell(r, col, value).expect("cell in range");
                }
            }
        }
    }
}

/// Unit-cost edit distance (small local copy to avoid a cross-crate dependency
/// solely for the baseline).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

impl Cleaner for PCleanLite {
    fn name(&self) -> &str {
        "PClean"
    }

    fn clean(&self, dirty: &Dataset) -> Dataset {
        let domains = Domains::compute(dirty);
        let mut cleaned = dirty.clone();
        for spec in &self.model.attributes {
            self.clean_column(dirty, &domains, spec, &mut cleaned);
        }
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::dataset_from;

    fn dirty() -> Dataset {
        dataset_from(
            &["Zip", "State"],
            &[
                vec!["35150", "CA"],
                vec!["35150", "CA"],
                vec!["35150", "CA"],
                vec!["35150", "KT"], // inconsistency
                vec!["3515o", "CA"], // typo in Zip
                vec!["35960", "KT"],
                vec!["35960", "KT"],
                vec!["35960", ""], // missing State
                vec!["35960", "KT"],
            ],
        )
    }

    fn good_model() -> PCleanModel {
        PCleanModel::new()
            .with(AttributeModel::independent("Zip"))
            .with(AttributeModel::dependent("State", vec!["Zip"]))
    }

    #[test]
    fn repairs_with_well_specified_model() {
        let system = PCleanLite::new(good_model());
        let cleaned = system.clean(&dirty());
        assert_eq!(cleaned.cell(3, 1).unwrap(), &Value::text("CA"));
        assert_eq!(cleaned.cell(7, 1).unwrap(), &Value::text("KT"));
        assert_eq!(cleaned.cell(4, 0).unwrap(), &Value::parse("35150"));
        // Clean cells preserved.
        assert_eq!(cleaned.cell(0, 0).unwrap(), &Value::parse("35150"));
        assert_eq!(system.name(), "PClean");
    }

    #[test]
    fn empty_model_cleans_nothing() {
        let system = PCleanLite::new(PCleanModel::new());
        let d = dirty();
        assert_eq!(system.clean(&d), d);
        assert!(PCleanModel::new().is_empty());
        assert_eq!(good_model().len(), 2);
    }

    #[test]
    fn mis_specified_model_degrades() {
        // "Expert" wires the dependency the wrong way round and ignores Zip:
        // the typo in Zip stays and the State repair becomes unreliable.
        let bad = PCleanModel::new().with(AttributeModel::dependent("Zip", vec!["State"]));
        let system = PCleanLite::new(bad);
        let cleaned = system.clean(&dirty());
        // State errors are untouched because State is not modelled at all.
        assert_eq!(cleaned.cell(3, 1).unwrap(), &Value::text("KT"));
        assert!(cleaned.cell(7, 1).unwrap().is_null());
    }

    #[test]
    fn unknown_attribute_in_model_is_ignored() {
        let model = PCleanModel::new().with(AttributeModel::independent("DoesNotExist"));
        let system = PCleanLite::new(model);
        let d = dirty();
        assert_eq!(system.clean(&d), d);
    }

    #[test]
    fn observation_likelihood_prefers_close_strings() {
        let spec = AttributeModel::independent("x");
        let close = PCleanLite::observation_likelihood(&spec, &Value::text("3515o"), &Value::text("35150"));
        let far = PCleanLite::observation_likelihood(&spec, &Value::text("3515o"), &Value::text("99999"));
        let exact = PCleanLite::observation_likelihood(&spec, &Value::text("35150"), &Value::text("35150"));
        assert!(exact > close && close > far);
        let missing = PCleanLite::observation_likelihood(&spec, &Value::Null, &Value::text("35150"));
        assert!(missing > 0.0 && missing < exact);
    }

    #[test]
    fn edit_distance_helper() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abc", ""), 3);
    }
}
