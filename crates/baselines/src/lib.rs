//! # bclean-baselines
//!
//! Reimplementations of the data cleaning systems BClean is compared against
//! in the paper's evaluation (§7): HoloClean (denial-constraint driven
//! probabilistic repair), Raha+Baran (semi-supervised detection + context
//! correction), PClean (generative cleaning from a hand-specified model) and
//! Garf (self-supervised rule learning). Each is a faithful-behaviour "lite"
//! version — same signals, same user inputs, same failure modes — documented
//! per module and in DESIGN.md.
//!
//! All baselines implement the [`Cleaner`] trait, so the evaluation harness
//! treats them and BClean uniformly.

#![warn(missing_docs)]

pub mod common;
pub mod dc;
pub mod garf;
pub mod holoclean;
pub mod pclean;
pub mod raha_baran;

pub use common::{Cleaner, MajorityCleaner, NoOpCleaner};
pub use dc::{discover_fds, FunctionalDependency};
pub use garf::{GarfConfig, GarfLite, Rule};
pub use holoclean::{HoloCleanConfig, HoloCleanLite};
pub use pclean::{AttributeModel, PCleanLite, PCleanModel};
pub use raha_baran::{char_pattern, LabelledCell, RahaBaranConfig, RahaBaranLite};
