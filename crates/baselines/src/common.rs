//! Shared interface of all baseline cleaning systems.

use bclean_data::Dataset;

/// A data cleaning system: takes a dirty dataset, returns a repaired copy.
///
/// All baselines (and, via an adapter in the evaluation harness, BClean
/// itself) implement this trait so the experiment runner can treat them
/// uniformly.
pub trait Cleaner {
    /// Human-readable system name as used in the paper's tables.
    fn name(&self) -> &str;

    /// Produce a cleaned copy of `dirty`.
    fn clean(&self, dirty: &Dataset) -> Dataset;
}

/// A cleaner that changes nothing. Useful as a sanity floor: every real
/// system must repair at least some errors that this one does not.
#[derive(Debug, Clone, Default)]
pub struct NoOpCleaner;

impl Cleaner for NoOpCleaner {
    fn name(&self) -> &str {
        "NoOp"
    }

    fn clean(&self, dirty: &Dataset) -> Dataset {
        dirty.clone()
    }
}

/// A cleaner that replaces every cell with the most frequent value of its
/// column. A deliberately naive baseline used in tests to check that the
/// metrics punish over-eager repairs.
#[derive(Debug, Clone, Default)]
pub struct MajorityCleaner;

impl Cleaner for MajorityCleaner {
    fn name(&self) -> &str {
        "Majority"
    }

    fn clean(&self, dirty: &Dataset) -> Dataset {
        let domains = bclean_data::Domains::compute(dirty);
        let mut cleaned = dirty.clone();
        for col in 0..dirty.num_columns() {
            if let Some(mode) = domains.attribute(col).mode().cloned() {
                for row in 0..dirty.num_rows() {
                    cleaned.set_cell(row, col, mode.clone()).expect("cell in range");
                }
            }
        }
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::dataset_from;

    #[test]
    fn noop_returns_identical_dataset() {
        let d = dataset_from(&["a"], &[vec!["1"], vec!["2"]]);
        let cleaner = NoOpCleaner;
        assert_eq!(cleaner.clean(&d), d);
        assert_eq!(cleaner.name(), "NoOp");
    }

    #[test]
    fn majority_overwrites_with_mode() {
        let d = dataset_from(&["a"], &[vec!["x"], vec!["x"], vec!["y"]]);
        let cleaned = MajorityCleaner.clean(&d);
        for row in cleaned.rows() {
            assert_eq!(row[0].to_string(), "x");
        }
        assert_eq!(MajorityCleaner.name(), "Majority");
    }

    #[test]
    fn cleaners_are_object_safe() {
        let cleaners: Vec<Box<dyn Cleaner>> = vec![Box::new(NoOpCleaner), Box::new(MajorityCleaner)];
        let d = dataset_from(&["a"], &[vec!["1"]]);
        for c in cleaners {
            assert_eq!(c.clean(&d).num_rows(), 1);
        }
    }
}
