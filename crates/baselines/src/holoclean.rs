//! HoloClean-lite: denial-constraint driven probabilistic repair.
//!
//! HoloClean (Rekatsinas et al., VLDB 2017) detects errors with integrity
//! constraints and other signals and repairs them by compiling the signals
//! into a factor graph. This reimplementation keeps the same signal classes
//! in a simplified weighted-voting model:
//!
//! * **detection**: FD/DC violations and null cells are marked dirty;
//! * **repair**: for every dirty cell, candidate values from the attribute
//!   domain are scored by a weighted combination of (a) constraint
//!   satisfaction — the majority value of the cell's determinant group, (b)
//!   co-occurrence statistics with the rest of the tuple, and (c) a
//!   minimality prior that prefers keeping the observed value.
//!
//! As in the paper's experiments, the behaviour is high precision (it only
//! touches cells flagged by a constraint) but limited recall when the DC set
//! is small relative to the error types present.

use std::collections::{HashMap, HashSet};

use bclean_data::{CellRef, Dataset, Domains, Value};

use crate::common::Cleaner;
use crate::dc::FunctionalDependency;

/// Configuration of HoloClean-lite.
#[derive(Debug, Clone)]
pub struct HoloCleanConfig {
    /// Weight of the constraint (FD majority) signal.
    pub constraint_weight: f64,
    /// Weight of the co-occurrence signal.
    pub cooccurrence_weight: f64,
    /// Weight of the minimality prior (keeping the observed value).
    pub minimality_weight: f64,
    /// Minimum determinant-group size for an FD repair suggestion.
    pub min_support: usize,
}

impl Default for HoloCleanConfig {
    fn default() -> Self {
        HoloCleanConfig {
            constraint_weight: 3.0,
            cooccurrence_weight: 1.0,
            minimality_weight: 0.5,
            min_support: 2,
        }
    }
}

/// The HoloClean-lite baseline.
#[derive(Debug, Clone)]
pub struct HoloCleanLite {
    constraints: Vec<FunctionalDependency>,
    config: HoloCleanConfig,
}

impl HoloCleanLite {
    /// Create the baseline with the expert-provided denial constraints.
    pub fn new(constraints: Vec<FunctionalDependency>) -> HoloCleanLite {
        HoloCleanLite { constraints, config: HoloCleanConfig::default() }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: HoloCleanConfig) -> HoloCleanLite {
        self.config = config;
        self
    }

    /// The constraints in use.
    pub fn constraints(&self) -> &[FunctionalDependency] {
        &self.constraints
    }

    /// Detection stage: cells violating any constraint, plus null cells in
    /// attributes covered by a constraint.
    pub fn detect(&self, dirty: &Dataset) -> HashSet<CellRef> {
        let mut detected: HashSet<CellRef> = HashSet::new();
        let mut covered_cols: HashSet<usize> = HashSet::new();
        for fd in &self.constraints {
            for v in fd.violations(dirty) {
                detected.insert(v);
            }
            if let Some((lhs, rhs)) = fd.resolve(dirty) {
                covered_cols.extend(lhs);
                covered_cols.insert(rhs);
            }
        }
        for (r, row) in dirty.rows().enumerate() {
            for &c in &covered_cols {
                if row[c].is_null() {
                    detected.insert(CellRef::new(r, c));
                }
            }
        }
        detected
    }

    /// Repair one detected cell by weighted voting over domain candidates.
    fn repair_cell(&self, dirty: &Dataset, domains: &Domains, at: CellRef) -> Option<Value> {
        let row = dirty.row(at.row).expect("row in range");
        let observed = &row[at.col];
        let domain = domains.attribute(at.col);
        // Constraint signal: the FD-majority suggestion, if any.
        let fd_suggestions: Vec<Value> = self
            .constraints
            .iter()
            .filter_map(|fd| fd.suggested_repair(dirty, at, self.config.min_support))
            .collect();

        let mut best: Option<(f64, Value)> = None;
        for candidate in domain.values() {
            let mut score = 0.0;
            if fd_suggestions.iter().any(|s| s == candidate) {
                score += self.config.constraint_weight;
            }
            // Co-occurrence with the rest of the tuple.
            let mut cooc = 0.0;
            for (c, value) in row.iter().enumerate() {
                if c == at.col || value.is_null() {
                    continue;
                }
                cooc += co_occurrence_fraction(dirty, at.col, candidate, c, value);
            }
            score += self.config.cooccurrence_weight * cooc;
            if candidate == observed {
                score += self.config.minimality_weight;
            }
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, candidate.clone()));
            }
        }
        let (_, value) = best?;
        if &value == observed {
            None
        } else {
            Some(value)
        }
    }
}

/// Fraction of rows holding `candidate` in `col_a` that also hold `value` in `col_b`.
fn co_occurrence_fraction(
    dataset: &Dataset,
    col_a: usize,
    candidate: &Value,
    col_b: usize,
    value: &Value,
) -> f64 {
    let mut with_candidate = 0usize;
    let mut both = 0usize;
    for row in dataset.rows() {
        if &row[col_a] == candidate {
            with_candidate += 1;
            if &row[col_b] == value {
                both += 1;
            }
        }
    }
    if with_candidate == 0 {
        0.0
    } else {
        both as f64 / with_candidate as f64
    }
}

impl Cleaner for HoloCleanLite {
    fn name(&self) -> &str {
        "HoloClean"
    }

    fn clean(&self, dirty: &Dataset) -> Dataset {
        let domains = Domains::compute(dirty);
        let detected = self.detect(dirty);
        let mut repairs: HashMap<CellRef, Value> = HashMap::new();
        for at in detected {
            if let Some(v) = self.repair_cell(dirty, &domains, at) {
                repairs.insert(at, v);
            }
        }
        let mut cleaned = dirty.clone();
        for (at, v) in repairs {
            cleaned.set_cell(at.row, at.col, v).expect("cell in range");
        }
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::dataset_from;

    fn dirty() -> Dataset {
        dataset_from(
            &["Zip", "State", "City"],
            &[
                vec!["35150", "CA", "sylacauga"],
                vec!["35150", "CA", "sylacauga"],
                vec!["35150", "KT", "sylacauga"], // FD violation
                vec!["35960", "KT", "centre"],
                vec!["35960", "KT", "centre"],
                vec!["35960", "", "centre"], // missing value
            ],
        )
    }

    fn system() -> HoloCleanLite {
        HoloCleanLite::new(vec![
            FunctionalDependency::new(vec!["Zip"], "State"),
            FunctionalDependency::new(vec!["Zip"], "City"),
        ])
    }

    #[test]
    fn detects_violations_and_nulls() {
        let detected = system().detect(&dirty());
        assert!(detected.contains(&CellRef::new(2, 1)));
        assert!(detected.contains(&CellRef::new(5, 1)));
        // Clean cells are not flagged.
        assert!(!detected.contains(&CellRef::new(0, 1)));
    }

    #[test]
    fn repairs_fd_violation_and_null() {
        let cleaned = system().clean(&dirty());
        assert_eq!(cleaned.cell(2, 1).unwrap(), &Value::text("CA"));
        assert_eq!(cleaned.cell(5, 1).unwrap(), &Value::text("KT"));
    }

    #[test]
    fn does_not_touch_unconstrained_errors() {
        // A typo in City that no constraint covers for its determinant group size 1.
        let d = dataset_from(
            &["Zip", "State", "Note"],
            &[vec!["35150", "CA", "ok"], vec!["35150", "CA", "typoo"], vec!["35960", "KT", "ok"]],
        );
        let hc = HoloCleanLite::new(vec![FunctionalDependency::new(vec!["Zip"], "State")]);
        let cleaned = hc.clean(&d);
        assert_eq!(cleaned.cell(1, 2).unwrap(), &Value::text("typoo"));
    }

    #[test]
    fn without_constraints_nothing_changes() {
        let hc = HoloCleanLite::new(vec![]);
        let d = dirty();
        assert_eq!(hc.clean(&d), d);
        assert!(hc.detect(&d).is_empty());
        assert_eq!(hc.name(), "HoloClean");
        assert!(hc.constraints().is_empty());
    }

    #[test]
    fn custom_config_changes_behaviour() {
        // With an overwhelming minimality prior, nothing gets repaired.
        let hc = system().with_config(HoloCleanConfig { minimality_weight: 1e6, ..Default::default() });
        let cleaned = hc.clean(&dirty());
        assert_eq!(cleaned.cell(2, 1).unwrap(), &Value::text("KT"));
    }
}
