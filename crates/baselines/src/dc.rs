//! Denial constraints and functional dependencies for the baselines.
//!
//! HoloClean consumes denial constraints; the most common and most useful
//! special case is the functional dependency `X → Y` ("two tuples agreeing on
//! X must agree on Y"), which is also the only DC form the paper's experts
//! wrote for the benchmark datasets. This module provides FD representation,
//! violation detection and automatic approximate-FD discovery from dirty data
//! (used by the Raha-lite and Garf-lite baselines).

use std::collections::HashMap;

use bclean_data::{CellRef, Dataset, Value};

/// A functional dependency `lhs → rhs` over attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Determinant attributes.
    pub lhs: Vec<String>,
    /// Dependent attribute.
    pub rhs: String,
}

impl FunctionalDependency {
    /// Construct an FD.
    pub fn new<S: Into<String>>(lhs: Vec<S>, rhs: impl Into<String>) -> FunctionalDependency {
        FunctionalDependency { lhs: lhs.into_iter().map(Into::into).collect(), rhs: rhs.into() }
    }

    /// Resolve attribute names to column indices against a dataset schema.
    /// Returns `None` when any attribute is missing.
    pub fn resolve(&self, dataset: &Dataset) -> Option<(Vec<usize>, usize)> {
        let schema = dataset.schema();
        let lhs: Option<Vec<usize>> = self.lhs.iter().map(|a| schema.index_of(a).ok()).collect();
        Some((lhs?, schema.index_of(&self.rhs).ok()?))
    }

    /// Detect cells violating this FD: for each determinant group, the
    /// majority dependent value is assumed correct and every cell holding a
    /// minority value (or null) is flagged.
    pub fn violations(&self, dataset: &Dataset) -> Vec<CellRef> {
        let Some((lhs_cols, rhs_col)) = self.resolve(dataset) else {
            return Vec::new();
        };
        let groups = group_by(dataset, &lhs_cols);
        let mut out = Vec::new();
        for rows in groups.values() {
            if rows.len() < 2 {
                continue;
            }
            if let Some(majority) = majority_value(dataset, rows, rhs_col) {
                for &r in rows {
                    let v = dataset.cell(r, rhs_col).expect("cell in range");
                    if v != &majority {
                        out.push(CellRef::new(r, rhs_col));
                    }
                }
            }
        }
        out
    }

    /// The repair suggested by this FD for a violating cell: the majority
    /// dependent value of the cell's determinant group, if the group is large
    /// enough to trust.
    pub fn suggested_repair(&self, dataset: &Dataset, at: CellRef, min_support: usize) -> Option<Value> {
        let (lhs_cols, rhs_col) = self.resolve(dataset)?;
        if at.col != rhs_col {
            return None;
        }
        let key: Vec<Value> =
            lhs_cols.iter().map(|&c| dataset.cell(at.row, c).expect("cell in range").clone()).collect();
        let groups = group_by(dataset, &lhs_cols);
        let rows = groups.get(&key)?;
        if rows.len() < min_support {
            return None;
        }
        majority_value(dataset, rows, rhs_col)
    }
}

/// Group row indices by their (non-null) determinant key.
fn group_by(dataset: &Dataset, cols: &[usize]) -> HashMap<Vec<Value>, Vec<usize>> {
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    'rows: for (r, row) in dataset.rows().enumerate() {
        let mut key = Vec::with_capacity(cols.len());
        for &c in cols {
            if row[c].is_null() {
                continue 'rows;
            }
            key.push(row[c].clone());
        }
        groups.entry(key).or_default().push(r);
    }
    groups
}

/// The most frequent non-null value of `col` among `rows` (ties broken by value order).
fn majority_value(dataset: &Dataset, rows: &[usize], col: usize) -> Option<Value> {
    let mut counts: HashMap<Value, usize> = HashMap::new();
    for &r in rows {
        let v = dataset.cell(r, col).expect("cell in range");
        if !v.is_null() {
            *counts.entry(v.clone()).or_insert(0) += 1;
        }
    }
    counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0))).map(|(v, _)| v)
}

/// Mine approximate FDs `A → B` (single-attribute determinants) from possibly
/// dirty data: keep pairs where the dependent is determined by the
/// determinant in at least `min_confidence` of the tuples and the determinant
/// has at least 2 distinct values.
pub fn discover_fds(dataset: &Dataset, min_confidence: f64) -> Vec<FunctionalDependency> {
    let m = dataset.num_columns();
    let n = dataset.num_rows();
    if n == 0 {
        return Vec::new();
    }
    let names = dataset.schema().names();
    let mut fds = Vec::new();
    for lhs in 0..m {
        let groups = group_by(dataset, &[lhs]);
        if groups.len() < 2 || groups.len() > n / 2 + 1 {
            // Keys with (almost) unique values everywhere are not useful determinants
            // unless they repeat; |groups| close to n means nearly-unique.
        }
        for rhs in 0..m {
            if lhs == rhs {
                continue;
            }
            let mut consistent = 0usize;
            let mut total = 0usize;
            for rows in groups.values() {
                if rows.len() < 2 {
                    continue;
                }
                if let Some(majority) = majority_value(dataset, rows, rhs) {
                    for &r in rows {
                        total += 1;
                        if dataset.cell(r, rhs).expect("cell in range") == &majority {
                            consistent += 1;
                        }
                    }
                }
            }
            if total >= 4 && consistent as f64 / total as f64 >= min_confidence {
                fds.push(FunctionalDependency::new(vec![names[lhs]], names[rhs]));
            }
        }
    }
    fds
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::dataset_from;

    fn zip_state() -> Dataset {
        dataset_from(
            &["Zip", "State", "Name"],
            &[
                vec!["35150", "CA", "a"],
                vec!["35150", "CA", "b"],
                vec!["35150", "KT", "c"], // violation
                vec!["35960", "KT", "d"],
                vec!["35960", "KT", "e"],
                vec!["35960", "KT", "f"],
            ],
        )
    }

    #[test]
    fn violations_found_for_minority_values() {
        let fd = FunctionalDependency::new(vec!["Zip"], "State");
        let v = fd.violations(&zip_state());
        assert_eq!(v, vec![CellRef::new(2, 1)]);
    }

    #[test]
    fn suggested_repair_is_group_majority() {
        let fd = FunctionalDependency::new(vec!["Zip"], "State");
        let repair = fd.suggested_repair(&zip_state(), CellRef::new(2, 1), 2).unwrap();
        assert_eq!(repair, Value::text("CA"));
        // Insufficient support yields no repair.
        assert!(fd.suggested_repair(&zip_state(), CellRef::new(2, 1), 10).is_none());
        // Wrong column yields no repair.
        assert!(fd.suggested_repair(&zip_state(), CellRef::new(2, 0), 2).is_none());
    }

    #[test]
    fn unknown_attributes_are_harmless() {
        let fd = FunctionalDependency::new(vec!["Nope"], "State");
        assert!(fd.violations(&zip_state()).is_empty());
        assert!(fd.resolve(&zip_state()).is_none());
    }

    #[test]
    fn null_determinants_are_skipped() {
        let d = dataset_from(
            &["Zip", "State"],
            &[vec!["", "CA"], vec!["", "KT"], vec!["35150", "CA"], vec!["35150", "CA"]],
        );
        let fd = FunctionalDependency::new(vec!["Zip"], "State");
        assert!(fd.violations(&d).is_empty());
    }

    #[test]
    fn discover_fds_finds_zip_to_state() {
        let fds = discover_fds(&zip_state(), 0.8);
        assert!(fds.contains(&FunctionalDependency::new(vec!["Zip"], "State")));
        // Name is unique per row, so nothing should determine it and it cannot
        // be discovered as a dependent.
        assert!(!fds.iter().any(|fd| fd.rhs == "Name"));
    }

    #[test]
    fn discover_fds_respects_confidence_threshold() {
        // A noisy dependency: 2/3 consistency should fail at 0.9 confidence.
        let d = dataset_from(
            &["A", "B"],
            &[vec!["x", "1"], vec!["x", "1"], vec!["x", "2"], vec!["y", "3"], vec!["y", "4"], vec!["y", "3"]],
        );
        let strict = discover_fds(&d, 0.95);
        assert!(!strict.iter().any(|fd| fd.lhs == vec!["A".to_string()] && fd.rhs == "B"));
        let lax = discover_fds(&d, 0.6);
        assert!(lax.iter().any(|fd| fd.lhs == vec!["A".to_string()] && fd.rhs == "B"));
    }

    #[test]
    fn empty_dataset_is_safe() {
        let d = bclean_data::Dataset::new(bclean_data::Schema::from_names(&["a", "b"]).unwrap());
        assert!(discover_fds(&d, 0.9).is_empty());
        let fd = FunctionalDependency::new(vec!["a"], "b");
        assert!(fd.violations(&d).is_empty());
    }
}
