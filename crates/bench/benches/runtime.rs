//! End-to-end cleaning runtime (Table 7's execution-time comparison):
//! BClean variants and every baseline on small instances of the benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bclean_core::Variant;
use bclean_datagen::BenchmarkDataset;
use bclean_eval::{run_method, Method};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    let datasets = [
        (BenchmarkDataset::Hospital, 300usize),
        (BenchmarkDataset::Flights, 400),
        (BenchmarkDataset::Beers, 300),
    ];
    let methods = [
        Method::BClean(Variant::Basic),
        Method::BClean(Variant::PartitionedInference),
        Method::BClean(Variant::PartitionedInferencePruning),
        Method::HoloClean,
        Method::PClean,
        Method::RahaBaran,
        Method::Garf,
    ];
    for (dataset, rows) in datasets {
        let bench_data = dataset.build_sized(rows, 7);
        for method in methods {
            group.bench_with_input(
                BenchmarkId::new(method.name(), dataset.name()),
                &bench_data,
                |b, data| b.iter(|| run_method(method, dataset, data)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
