//! Benches for the dictionary-encoded scoring engine.
//!
//! * `compensatory_build`: the code-indexed `CompensatoryModel::build`
//!   against a reimplementation of the pre-refactor `Value`-keyed Algorithm 2
//!   loop (which constructed — and hashed — every `(usize, Value, usize,
//!   Value)` pair key twice per tuple). This is the regression bench for the
//!   build-time fix: the compiled build must stay ahead of the naive loop.
//! * `clean_engines`: end-to-end `BCleanModel::clean` (compiled codes) vs
//!   `BCleanModel::clean_reference` (the retained `Value` path) on a
//!   Hospital-scale workload; the same comparison feeds `BENCH_clean.json`
//!   via the experiments binary.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bclean_core::{BClean, CompensatoryModel, CompensatoryParams, ConstraintSet, Variant};
use bclean_data::{Dataset, Value};
use bclean_datagen::BenchmarkDataset;
use bclean_eval::bclean_constraints;

/// The pre-refactor Algorithm 2 construction loop, kept verbatim (including
/// its redundant per-pair key clone) as the build-time baseline.
fn value_keyed_build(dataset: &Dataset, constraints: &ConstraintSet, params: CompensatoryParams) -> usize {
    type PairKey = (usize, Value, usize, Value);
    let m = dataset.num_columns();
    let mut corr: HashMap<PairKey, f64> = HashMap::new();
    let mut pair_counts: HashMap<PairKey, usize> = HashMap::new();
    let mut value_counts: Vec<HashMap<Value, usize>> = vec![HashMap::new(); m];
    for row in dataset.rows() {
        let conf = constraints.tuple_confidence(dataset.schema(), row, params.lambda);
        let delta = if conf >= params.tau { 1.0 } else { -params.beta };
        for i in 0..m {
            *value_counts[i].entry(row[i].clone()).or_insert(0) += 1;
            for j in 0..m {
                if i == j {
                    continue;
                }
                let key = (i, row[i].clone(), j, row[j].clone());
                *corr.entry(key.clone()).or_insert(0.0) += delta;
                *pair_counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    corr.len() + pair_counts.len() + value_counts.len()
}

fn bench_compensatory_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("compensatory_build");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    let bench = BenchmarkDataset::Hospital.build_sized(500, 7);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let params = CompensatoryParams::default();
    group.bench_with_input(BenchmarkId::new("encoded", "Hospital500"), &bench, |b, data| {
        b.iter(|| CompensatoryModel::build(&data.dirty, &constraints, params))
    });
    group.bench_with_input(BenchmarkId::new("value_keyed", "Hospital500"), &bench, |b, data| {
        b.iter(|| value_keyed_build(&data.dirty, &constraints, params))
    });
    group.finish();
}

fn bench_clean_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("clean_engines");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    let bench = BenchmarkDataset::Hospital.build_sized(300, 7);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    for variant in [Variant::PartitionedInference, Variant::PartitionedInferencePruning] {
        let model = BClean::new(variant.config().with_threads(1))
            .with_constraints(constraints.clone())
            .fit(&bench.dirty);
        group.bench_with_input(
            BenchmarkId::new(format!("{}-encoded", variant.name()), "Hospital300"),
            &bench,
            |b, data| b.iter(|| model.clean(&data.dirty)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{}-reference", variant.name()), "Hospital300"),
            &bench,
            |b, data| b.iter(|| model.clean_reference(&data.dirty)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compensatory_build, bench_clean_engines);
criterion_main!(benches);
