//! Micro-benchmarks of the hot kernels: edit-distance similarity, regex
//! matching of user-constraint patterns, CPT learning/lookup, and dataset
//! generation + error injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bclean_bayesnet::{edit_similarity, BayesianNetwork, Dag};
use bclean_datagen::{BenchmarkDataset, ErrorSpec};
use bclean_regex::Regex;

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let pairs = [
        ("315 w hickory st", "315 w hicky st"),
        ("sylacauga", "sylacooga"),
        ("voluntary non-profit - private", "voluntary non-profit - church"),
    ];
    for (i, (a, b)) in pairs.iter().enumerate() {
        group.bench_with_input(BenchmarkId::from_parameter(i), &(*a, *b), |bencher, (a, b)| {
            bencher.iter(|| edit_similarity(a, b))
        });
    }
    group.finish();
}

fn bench_regex(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let zip = Regex::new("^([1-9][0-9]{4,4})$").expect("valid pattern");
    let time =
        Regex::new(r"([1-9]:[0-5][0-9][ap]\.m\.|1[0-2]:[0-5][0-9][ap]\.m\.|0[1-9]:[0-5][0-9][ap]\.m\.)")
            .expect("valid pattern");
    group.bench_function("zip_match", |b| b.iter(|| zip.is_full_match("35150")));
    group.bench_function("zip_reject", |b| b.iter(|| zip.is_full_match("3x150")));
    group.bench_function("time_match", |b| b.iter(|| time.is_full_match("12:45p.m.")));
    group.bench_function("compile_time_pattern", |b| {
        b.iter(|| Regex::new(r"([1-9]:[0-5][0-9][ap]\.m\.|1[0-2]:[0-5][0-9][ap]\.m\.)").unwrap())
    });
    group.finish();
}

fn bench_cpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpt");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(20);
    let data = BenchmarkDataset::Hospital.build_sized(500, 3).dirty;
    // ProviderNumber -> {HospitalName, City, State, ZipCode}
    let mut dag = Dag::new(data.num_columns());
    for to in [1usize, 3, 4, 5] {
        dag.add_edge(0, to).expect("valid edge");
    }
    group.bench_function("learn_parameters", |b| b.iter(|| BayesianNetwork::learn(&data, dag.clone(), 0.1)));
    let bn = BayesianNetwork::learn(&data, dag, 0.1);
    let row = data.row(7).expect("row exists").to_vec();
    group.bench_function("blanket_score", |b| b.iter(|| bn.blanket_log_score(&row, 4, &row[4])));
    group.bench_function("log_joint", |b| b.iter(|| bn.log_joint(&row)));
    group.finish();
}

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    group.bench_function("generate_hospital_1000", |b| {
        b.iter(|| BenchmarkDataset::Hospital.generate_clean(1000, 9))
    });
    let clean = BenchmarkDataset::Hospital.generate_clean(1000, 9);
    group.bench_function("inject_errors_5pct", |b| {
        b.iter(|| bclean_datagen::inject_errors(&clean, &ErrorSpec::default_mix(0.05), 11))
    });
    group.finish();
}

criterion_group!(benches, bench_similarity, bench_regex, bench_cpt, bench_datagen);
criterion_main!(benches);
