//! Classical-inference ablation: BClean's partitioned Markov-blanket scoring
//! vs. exact variable elimination, Gibbs sampling and loopy belief
//! propagation for per-cell repair queries (the §6 / §8 motivation for
//! partitioned inference), plus the raw factor-algebra kernels.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bclean_bayesnet::{ApproxConfig, Factor, InferenceEngine, DEFAULT_MAX_FACTOR_CELLS};
use bclean_core::{BClean, Variant};
use bclean_data::Value;
use bclean_datagen::BenchmarkDataset;
use bclean_eval::bclean_constraints;

/// Per-cell repair query with each engine on a Hospital-style network.
fn bench_repair_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_query_engine");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);

    let bench = BenchmarkDataset::Hospital.build_sized(300, 11);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let model =
        BClean::new(Variant::PartitionedInference.config()).with_constraints(constraints).fit(&bench.dirty);
    let network = model.network();
    let engine = InferenceEngine::new(network, &bench.dirty);

    // Repair the State cell of the first injected error on a low-cardinality
    // column, so that exact inference stays tractable inside the bench.
    let err = bench
        .errors
        .iter()
        .find(|e| {
            let name = &network.attribute_names()[e.at.col];
            name == "State" || name == "EmergencyService" || name == "City"
        })
        .or_else(|| bench.errors.first())
        .expect("benchmark injects errors");
    let row = bench.dirty.row(err.at.row).unwrap().to_vec();
    let col = err.at.col;
    let candidates: Vec<Value> = engine.domain(col).unwrap().values().to_vec();
    let evidence: Vec<(usize, Value)> = row
        .iter()
        .enumerate()
        .filter(|(i, v)| *i != col && engine.domain(*i).unwrap().index_of(v).is_some())
        .map(|(i, v)| (i, v.clone()))
        .collect();

    group.bench_function("markov_blanket", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|cand| network.blanket_log_score(&row, col, cand))
                .fold(f64::NEG_INFINITY, f64::max)
        })
    });
    group.bench_function("variable_elimination", |b| b.iter(|| engine.posterior(col, &evidence).unwrap()));
    group.bench_function("gibbs_500_samples", |b| {
        b.iter(|| {
            engine
                .posterior_gibbs(
                    col,
                    &evidence,
                    ApproxConfig { samples: 500, burn_in: 50, ..Default::default() },
                )
                .unwrap()
        })
    });
    group.bench_function("loopy_belief_propagation", |b| {
        b.iter(|| engine.posterior_lbp(col, &evidence, ApproxConfig::default()).unwrap())
    });
    group.finish();
}

/// Raw factor-algebra kernels: product and marginalisation at growing widths.
fn bench_factor_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("factor_ops");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));

    for card in [4usize, 16, 64] {
        let left = Factor::new(vec![0, 1], vec![card, card], vec![0.5; card * card]).unwrap();
        let right = Factor::new(vec![1, 2], vec![card, card], vec![0.25; card * card]).unwrap();
        group.bench_with_input(BenchmarkId::new("product", card), &card, |b, _| {
            b.iter(|| left.product(&right, DEFAULT_MAX_FACTOR_CELLS).unwrap())
        });
        let joint = left.product(&right, DEFAULT_MAX_FACTOR_CELLS).unwrap();
        group.bench_with_input(BenchmarkId::new("sum_out", card), &card, |b, _| {
            b.iter(|| joint.sum_out(1).unwrap())
        });
    }
    group.finish();
}

/// End-to-end engine setup cost: building all node factors for one exact query
/// as the table grows (this is the cost the partitioned variant avoids).
fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_inference_scaling");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);

    for rows in [100usize, 200, 400] {
        let bench = BenchmarkDataset::Flights.build_sized(rows, 5);
        let model = BClean::new(Variant::PartitionedInference.config())
            .with_constraints(bclean_constraints(BenchmarkDataset::Flights))
            .fit(&bench.dirty);
        let network = model.network().clone();
        let data = bench.dirty.clone();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                let engine = InferenceEngine::new(&network, &data);
                let row = data.row(0).unwrap();
                engine.posterior_for_cell(row, 2).map(|p| p.len()).unwrap_or(0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repair_query, bench_factor_ops, bench_engine_scaling);
criterion_main!(benches);
