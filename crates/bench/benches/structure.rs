//! Structure-learning benchmarks: the FDX + graphical-lasso pipeline BClean
//! uses versus the hill-climbing (BIC) baseline, plus the graphical lasso on
//! its own. This is the ablation of the §4 design choice called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bclean_bayesnet::{
    hill_climb, learn_structure, similarity_samples, FdxConfig, HillClimbConfig, StructureConfig,
};
use bclean_datagen::BenchmarkDataset;
use bclean_linalg::{correlation_matrix, graphical_lasso, GlassoConfig};

fn bench_structure_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("structure_learning");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    for rows in [200usize, 500, 1000] {
        let data = BenchmarkDataset::Hospital.build_sized(rows, 3).dirty;
        group.bench_with_input(BenchmarkId::new("fdx_glasso", rows), &data, |b, d| {
            b.iter(|| learn_structure(d, StructureConfig::default()))
        });
        if rows <= 500 {
            group.bench_with_input(BenchmarkId::new("hill_climbing", rows), &data, |b, d| {
                b.iter(|| hill_climb(d, HillClimbConfig { max_moves: 10, ..Default::default() }))
            });
        }
        group.bench_with_input(BenchmarkId::new("similarity_sampling", rows), &data, |b, d| {
            b.iter(|| similarity_samples(d, FdxConfig::default()))
        });
    }
    group.finish();
}

fn bench_graphical_lasso(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphical_lasso");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for rows in [300usize, 1000] {
        let data = BenchmarkDataset::Inpatient.build_sized(rows, 5).dirty;
        let samples = similarity_samples(&data, FdxConfig::default()).expect("enough rows");
        let corr = correlation_matrix(&samples).expect("valid sample matrix");
        group.bench_with_input(BenchmarkId::from_parameter(rows), &corr, |b, c| {
            b.iter(|| graphical_lasso(c, GlassoConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_structure_learning, bench_graphical_lasso);
criterion_main!(benches);
