//! Inference benchmarks: partitioned (Markov-blanket) scoring vs. whole-joint
//! scoring per candidate, compensatory-model construction, and the effect of
//! the pruning strategies on end-to-end cleaning — the §6 optimisation
//! ablations called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bclean_core::{BClean, BCleanConfig, CompensatoryModel, CompensatoryParams, ConstraintSet, Variant};
use bclean_datagen::BenchmarkDataset;
use bclean_eval::bclean_constraints;

fn bench_candidate_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_scoring");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let bench_data = BenchmarkDataset::Hospital.build_sized(500, 11);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let model = BClean::new(Variant::PartitionedInference.config())
        .with_constraints(constraints.clone())
        .fit(&bench_data.dirty);
    let full_model =
        BClean::new(Variant::Basic.config()).with_constraints(constraints).fit(&bench_data.dirty);
    // Score every candidate of one cell repeatedly.
    group.bench_function("markov_blanket", |b| b.iter(|| model.score_candidates(&bench_data.dirty, 3, 4)));
    group.bench_function("full_joint", |b| b.iter(|| full_model.score_candidates(&bench_data.dirty, 3, 4)));
    group.finish();
}

fn bench_compensatory_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("compensatory_model");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    for rows in [300usize, 1000, 3000] {
        let data = BenchmarkDataset::Facilities.build_sized(rows, 13).dirty;
        let constraints = bclean_constraints(BenchmarkDataset::Facilities);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &data, |b, d| {
            b.iter(|| CompensatoryModel::build(d, &constraints, CompensatoryParams::default()))
        });
    }
    group.finish();
}

fn bench_pruning_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning_ablation");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    let bench_data = BenchmarkDataset::Inpatient.build_sized(600, 19);
    let constraints = bclean_constraints(BenchmarkDataset::Inpatient);
    let variants: [(&str, BCleanConfig); 3] = [
        ("pi", Variant::PartitionedInference.config()),
        ("pi_tuple_pruning", BCleanConfig { tuple_pruning: true, ..Variant::PartitionedInference.config() }),
        ("pip", Variant::PartitionedInferencePruning.config()),
    ];
    for (name, config) in variants {
        let model = BClean::new(config).with_constraints(constraints.clone()).fit(&bench_data.dirty);
        group.bench_function(name, |b| b.iter(|| model.clean(&bench_data.dirty)));
    }
    group.finish();
}

fn bench_no_compensatory_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("compensatory_ablation");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    let bench_data = BenchmarkDataset::Hospital.build_sized(400, 23);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    for (name, use_comp) in [("with_compensatory", true), ("without_compensatory", false)] {
        let config = BCleanConfig { use_compensatory: use_comp, ..Variant::PartitionedInference.config() };
        let model = BClean::new(config).with_constraints(constraints.clone()).fit(&bench_data.dirty);
        group.bench_function(name, |b| b.iter(|| model.clean(&bench_data.dirty)));
    }
    // Also benchmark a run with no user constraints at all (BClean-UC).
    let no_uc = BClean::new(Variant::NoUserConstraints.config())
        .with_constraints(ConstraintSet::new())
        .fit(&bench_data.dirty);
    group.bench_function("no_user_constraints", |b| b.iter(|| no_uc.clean(&bench_data.dirty)));
    group.finish();
}

criterion_group!(
    benches,
    bench_candidate_scoring,
    bench_compensatory_model,
    bench_pruning_ablation,
    bench_no_compensatory_ablation
);
criterion_main!(benches);
