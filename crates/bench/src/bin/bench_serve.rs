//! Load generator and byte-exactness checker for the `bclean serve` daemon.
//!
//! ```text
//! # measure: in-process daemon, sweep connection counts, write BENCH_serve.json
//! cargo run -p bclean-bench --release --bin bench_serve -- load \
//!     [--scale small|default|full] [--duration SECS] [--workers N] [-o BENCH_serve.json]
//!
//! # check: drive an EXTERNAL daemon over real sockets and byte-compare its
//! # responses against CLI one-shot outputs (the CI serve smoke job)
//! cargo run -p bclean-bench --bin bench_serve -- check --addr HOST:PORT \
//!     --clean batch.csv --expect-repairs repairs.csv \
//!     [--ingest batch2.csv --expect-artifact grown.bclean] \
//!     [--expect-repairs-after repairs2.csv] [--shutdown]
//! ```
//!
//! **Load mode** fits a model on the synthetic Hospital benchmark, serves it
//! from an in-process [`bclean_serve::Server`], and hammers `/health` (pure
//! protocol overhead) and `/clean` (scoring) from 1/2/4/8 keep-alive
//! connections for a fixed duration each. Per-request wall-clock latencies
//! aggregate into p50/p99 and req/s, written as the `latencies` array of
//! `BENCH_serve.json` — the serving counterpart of the `speedups` arrays in
//! the other `BENCH_*.json` snapshots, gated in CI by `bench_diff`.
//!
//! **Check mode** is the cross-process half of the serving guarantees: it
//! POSTs a batch to `/clean` and asserts the response bytes equal the
//! repair CSV a one-shot `bclean clean --repairs` run wrote; optionally
//! ingests a batch and asserts `/artifact` returns exactly the `.bclean`
//! bytes the CLI `ingest` produced, then re-checks `/clean` against the
//! post-ingest expectation. With `--shutdown` it finishes by stopping the
//! daemon over `POST /shutdown`. Any mismatch exits 1.

use std::io::Write as _;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bclean_bench::{Scale, EXPERIMENT_SEED};
use bclean_core::{BClean, Variant};
use bclean_data::{parse_csv, to_csv};
use bclean_datagen::BenchmarkDataset;
use bclean_serve::http::client;
use bclean_serve::registry::schema_hash_of;
use bclean_serve::{ModelRegistry, Server, ServerConfig};

/// Connection counts swept in load mode.
const CONNECTION_SWEEP: &[usize] = &[1, 2, 4, 8];

/// Minimum rows in the `/clean` request batch (a realistic request
/// granularity: small relative to the fitted model). The batch grows past
/// this when needed for its inferred column types to match the fitting
/// schema — see [`stable_batch`].
const MIN_BATCH_ROWS: usize = 16;

/// Socket timeout for every generated request.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("load") => load_mode(&args[1..]),
        Some("check") => check_mode(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => usage(""),
        Some(other) => usage(&format!("unknown mode {other:?}")),
        None => usage("missing mode"),
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("bench_serve: {error}\n");
    }
    println!(
        "bench_serve — load generator / exactness checker for `bclean serve`\n\n\
         USAGE:\n\
         \x20 bench_serve load  [--scale small|default|full] [--duration SECS]\n\
         \x20                   [--workers N] [-o BENCH_serve.json]\n\
         \x20 bench_serve check --addr HOST:PORT --clean batch.csv --expect-repairs repairs.csv\n\
         \x20                   [--ingest batch2.csv --expect-artifact grown.bclean]\n\
         \x20                   [--expect-repairs-after repairs2.csv] [--shutdown]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// load mode
// ---------------------------------------------------------------------------

fn load_mode(args: &[String]) -> ExitCode {
    let mut scale = Scale::Small;
    let mut duration = 1.0f64;
    // Default worker pool covers the whole connection sweep: the pool pins
    // a worker per live keep-alive connection, so fewer workers than
    // connections measures queueing, not request latency.
    let mut workers = *CONNECTION_SWEEP.last().expect("sweep is non-empty");
    let mut out = "BENCH_serve.json".to_string();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => match iter.next().and_then(|s| Scale::parse(s)) {
                Some(s) => scale = s,
                None => return usage("--scale expects small|default|full"),
            },
            "--duration" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(d) if d > 0.0 => duration = d,
                _ => return usage("--duration expects a positive number of seconds"),
            },
            "--workers" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(w) if w > 0 => workers = w,
                _ => return usage("--workers expects a positive integer"),
            },
            "-o" | "--output" => match iter.next() {
                Some(path) => out = path.clone(),
                None => return usage("-o expects a path"),
            },
            other => return usage(&format!("unknown load argument {other:?}")),
        }
    }

    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Default => "default",
        Scale::Full => "full",
    };
    let rows = scale.rows(BenchmarkDataset::Hospital);
    println!("## bench_serve — daemon latency/throughput (Hospital, {rows} rows, {workers} workers)\n");
    let bench = BenchmarkDataset::Hospital.build_sized(rows, EXPERIMENT_SEED);
    // Round-trip through CSV so the fitting schema is the *parsed* one —
    // the daemon's clients only ever speak CSV, and the generator's
    // declared column types can differ from what CSV inference sees.
    let data = &parse_csv(&to_csv(&bench.dirty)).expect("generated CSV parses");

    let fit_start = Instant::now();
    let artifact = BClean::new(Variant::PartitionedInference.config()).fit_artifact(data);
    println!("fit {} rows x {} columns in {:?}", data.num_rows(), data.num_columns(), fit_start.elapsed());

    let (batch_csv, batch_rows) = stable_batch(&to_csv(data), artifact.schema_hash(), data.num_rows());
    println!("request batch: {batch_rows} rows");
    let registry = Arc::new(ModelRegistry::new());
    registry.register(artifact);
    let config = ServerConfig { addr: "127.0.0.1:0".to_string(), workers };
    let server = match Server::bind(&config, registry) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bench_serve: cannot bind the in-process daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    let shutdown = server.shutdown_handle().expect("bound listener has an address");
    let daemon = std::thread::spawn(move || server.run());

    let mut records = Vec::new();
    println!("\n| Endpoint | Conns | Requests | req/s | p50 ms | p99 ms |");
    println!("|---|---|---|---|---|---|");
    for (endpoint, method, body) in [("health", "GET", String::new()), ("clean", "POST", batch_csv.clone())] {
        for &connections in CONNECTION_SWEEP {
            let point =
                measure_point(addr, method, &format!("/{endpoint}"), body.as_bytes(), connections, duration);
            let point = match point {
                Ok(point) => point,
                Err(e) => {
                    shutdown.shutdown();
                    let _ = daemon.join();
                    eprintln!("bench_serve: {endpoint} at {connections} connections failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "| {endpoint} | {connections} | {} | {:.1} | {:.3} | {:.3} |",
                point.requests, point.reqs_per_sec, point.p50_ms, point.p99_ms
            );
            records.push((endpoint.to_string(), connections, point));
        }
    }
    shutdown.shutdown();
    let _ = daemon.join();

    let json = snapshot_json(
        scale_name,
        data.num_rows(),
        data.num_columns(),
        workers,
        batch_rows,
        duration,
        &records,
    );
    match std::fs::write(&out, &json) {
        Ok(()) => {
            println!("\nwrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_serve: could not write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One measured (endpoint, connections) sweep point.
struct Point {
    requests: usize,
    reqs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Hammer one endpoint from `connections` keep-alive connections for
/// `duration` seconds; aggregate latencies across all of them.
fn measure_point(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    connections: usize,
    duration: f64,
) -> Result<Point, String> {
    let deadline = Instant::now() + Duration::from_secs_f64(duration);
    let started = Instant::now();
    let results: Vec<Result<Vec<f64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                scope.spawn(move || {
                    let mut connection = client::Connection::connect(addr, REQUEST_TIMEOUT)
                        .map_err(|e| format!("connect: {e}"))?;
                    let mut latencies_ms = Vec::new();
                    while Instant::now() < deadline {
                        let sent = Instant::now();
                        let response =
                            connection.request(method, target, body).map_err(|e| format!("request: {e}"))?;
                        if response.status != 200 {
                            return Err(format!(
                                "{target} returned {}: {}",
                                response.status,
                                response.text()
                            ));
                        }
                        latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                    }
                    Ok(latencies_ms)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load thread panicked")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut all = Vec::new();
    for result in results {
        all.extend(result?);
    }
    if all.is_empty() {
        return Err("no requests completed inside the measurement window".to_string());
    }
    all.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Ok(Point {
        requests: all.len(),
        reqs_per_sec: all.len() as f64 / elapsed,
        p50_ms: percentile(&all, 0.50),
        p99_ms: percentile(&all, 0.99),
    })
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// First `rows` data rows of a CSV (header preserved). The generated
/// benchmarks contain no embedded newlines, so line-splitting is exact.
fn head_csv(csv: &str, rows: usize) -> String {
    let mut out = String::new();
    for line in csv.lines().take(rows + 1) {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The smallest head of the dataset CSV (≥ [`MIN_BATCH_ROWS`] rows,
/// doubling) whose *parsed* schema hash matches the artifact's. CSV type
/// inference is per-file, so a small prefix can infer narrower column
/// types than the full dataset did — such a batch would be rejected by
/// `check_schema` exactly as a one-shot `bclean clean -m` run would reject
/// it, which is a property of the batch, not of the daemon under test.
fn stable_batch(csv: &str, artifact_hash: u64, total_rows: usize) -> (String, usize) {
    let mut rows = MIN_BATCH_ROWS.min(total_rows);
    loop {
        let head = head_csv(csv, rows);
        let parsed = parse_csv(&head).expect("round-tripped CSV parses");
        if schema_hash_of(parsed.schema()) == artifact_hash || rows >= total_rows {
            return (head, parsed.num_rows());
        }
        rows = (rows * 2).min(total_rows);
    }
}

/// Hand-written JSON in the `BENCH_*.json` snapshot family (the workspace
/// builds offline — no serde_json), with a `latencies` array in place of
/// the `speedups` array of the compute benches.
fn snapshot_json(
    scale: &str,
    rows: usize,
    columns: usize,
    workers: usize,
    batch_rows: usize,
    duration: f64,
    records: &[(String, usize, Point)],
) -> String {
    let mut body = String::new();
    for (i, (endpoint, connections, point)) in records.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"endpoint\": \"{endpoint}\", \"connections\": {connections}, \"requests\": {}, \
             \"reqs_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            point.requests,
            point.reqs_per_sec,
            point.p50_ms,
            point.p99_ms,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    format!(
        "{{\n  \"benchmark\": \"Hospital\",\n  \"scale\": \"{scale}\",\n  \"rows\": {rows},\n  \
         \"columns\": {columns},\n  \"workers\": {workers},\n  \"batch_rows\": {batch_rows},\n  \
         \"duration_seconds_per_point\": {duration},\n  \"latencies\": [\n{body}  ]\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// check mode
// ---------------------------------------------------------------------------

fn check_mode(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut clean_batch: Option<String> = None;
    let mut expect_repairs: Option<String> = None;
    let mut ingest_batch: Option<String> = None;
    let mut expect_artifact: Option<String> = None;
    let mut expect_repairs_after: Option<String> = None;
    let mut shutdown = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().cloned().ok_or(format!("{name} expects a value"));
        let result = match arg.as_str() {
            "--shutdown" => {
                shutdown = true;
                Ok(())
            }
            "--addr" => value("--addr").map(|v| addr = Some(v)),
            "--clean" => value("--clean").map(|v| clean_batch = Some(v)),
            "--expect-repairs" => value("--expect-repairs").map(|v| expect_repairs = Some(v)),
            "--ingest" => value("--ingest").map(|v| ingest_batch = Some(v)),
            "--expect-artifact" => value("--expect-artifact").map(|v| expect_artifact = Some(v)),
            "--expect-repairs-after" => {
                value("--expect-repairs-after").map(|v| expect_repairs_after = Some(v))
            }
            other => Err(format!("unknown check argument {other:?}")),
        };
        if let Err(e) = result {
            return usage(&e);
        }
    }
    let (Some(addr), Some(clean_batch), Some(expect_repairs)) = (addr, clean_batch, expect_repairs) else {
        return usage("check mode requires --addr, --clean and --expect-repairs");
    };
    match run_checks(
        &addr,
        &clean_batch,
        &expect_repairs,
        ingest_batch.as_deref(),
        expect_artifact.as_deref(),
        expect_repairs_after.as_deref(),
        shutdown,
    ) {
        Ok(checks) => {
            println!("bench_serve check: all {checks} byte-exactness checks passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_serve check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_checks(
    addr: &str,
    clean_batch: &str,
    expect_repairs: &str,
    ingest_batch: Option<&str>,
    expect_artifact: Option<&str>,
    expect_repairs_after: Option<&str>,
    shutdown: bool,
) -> Result<usize, String> {
    let addr: SocketAddr = addr.parse().map_err(|e| format!("invalid --addr: {e}"))?;
    let mut connection =
        client::Connection::connect(addr, REQUEST_TIMEOUT).map_err(|e| format!("connect {addr}: {e}"))?;
    let read = |path: &str| std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"));
    let mut checks = 0usize;

    let batch = read(clean_batch)?;
    let expected = read(expect_repairs)?;
    expect_bytes(&mut connection, "POST", "/clean", &batch, &expected, "clean repairs")?;
    checks += 1;

    if let Some(ingest_path) = ingest_batch {
        let ingest = read(ingest_path)?;
        let response =
            connection.request("POST", "/ingest", &ingest).map_err(|e| format!("/ingest request: {e}"))?;
        if response.status != 200 {
            return Err(format!("/ingest returned {}: {}", response.status, response.text()));
        }
        print!("/ingest: {}", response.text());
        let _ = std::io::stdout().flush();
        checks += 1;

        if let Some(artifact_path) = expect_artifact {
            let expected = read(artifact_path)?;
            expect_bytes(&mut connection, "GET", "/artifact", &[], &expected, "post-ingest artifact")?;
            checks += 1;
        }
        if let Some(repairs_path) = expect_repairs_after {
            let expected = read(repairs_path)?;
            expect_bytes(&mut connection, "POST", "/clean", &batch, &expected, "post-ingest clean repairs")?;
            checks += 1;
        }
    }
    if shutdown {
        let response =
            connection.request("POST", "/shutdown", &[]).map_err(|e| format!("/shutdown request: {e}"))?;
        if response.status != 200 {
            return Err(format!("/shutdown returned {}: {}", response.status, response.text()));
        }
        println!("/shutdown: acknowledged");
        checks += 1;
    }
    Ok(checks)
}

/// Issue one request and require a byte-identical 200 response.
fn expect_bytes(
    connection: &mut client::Connection,
    method: &str,
    target: &str,
    body: &[u8],
    expected: &[u8],
    what: &str,
) -> Result<(), String> {
    let response = connection.request(method, target, body).map_err(|e| format!("{target} request: {e}"))?;
    if response.status != 200 {
        return Err(format!("{target} returned {}: {}", response.status, response.text()));
    }
    if response.body != expected {
        return Err(format!(
            "{what}: daemon response ({} bytes) differs from the CLI one-shot output ({} bytes)",
            response.body.len(),
            expected.len()
        ));
    }
    println!("{target}: {what} byte-identical ({} bytes)", expected.len());
    Ok(())
}
