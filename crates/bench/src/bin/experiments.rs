//! Regenerate every table and figure of the BClean paper's evaluation (§7).
//!
//! Usage:
//!
//! ```text
//! cargo run -p bclean-bench --release --bin experiments -- [EXPERIMENT] [--scale small|default|full]
//! ```
//!
//! where `EXPERIMENT` is one of `table4`, `table5`, `table6`, `table7`,
//! `table8`, `table9`, `table10`, `fig4a`, `fig4bcd`, `fig4ef`, `fig5`,
//! `netedit`, or `all` (default). The default scale is `small` so the whole
//! suite finishes quickly; use `--scale default` to reproduce at the paper's
//! dataset sizes (see EXPERIMENTS.md).

use std::collections::HashMap;
use std::time::Duration;

use bclean_bayesnet::NetworkEdit;
use bclean_bench::{Scale, EXPERIMENT_SEED};
use bclean_core::{
    clean_stream, repairs_to_csv, BClean, BCleanConfig, BudgetParams, CleaningSession, CompensatoryParams,
    ConstraintKind, FitBudget, ModelArtifact, SourceFingerprint, StreamOptions, Variant,
};
use bclean_data::{approx_dataset_bytes, read_csv_file, write_csv_file, ChunkLimits, CsvFileChunks};
use bclean_datagen::{
    build_wide, BenchmarkDataset, DirtyDataset, ErrorSpec, ErrorType, ScaleFactor, SwapMode,
};
use bclean_eval::{
    bclean_constraints, evaluate, format_duration, repair_agreement, run_bclean_evaluated, run_method,
    run_methods, ErrorTypeRecall, Method, MethodRun, TextTable,
};

/// Default worker-thread sweep of the `bench_clean` / `bench_fit`
/// snapshots: the committed JSON records single-thread engine throughput
/// plus multi-thread scaling points.
const DEFAULT_THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut scale = Scale::Small;
    let mut threads: Vec<usize> = DEFAULT_THREAD_SWEEP.to_vec();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                if let Some(s) = iter.next().and_then(|s| Scale::parse(s)) {
                    scale = s;
                } else {
                    eprintln!("unknown scale; expected small|default|full");
                    std::process::exit(2);
                }
            }
            "--threads" => {
                let parsed: Option<Vec<usize>> = iter
                    .next()
                    .map(|list| list.split(',').map(|t| t.trim().parse::<usize>().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(list) if !list.is_empty() && list.iter().all(|&t| t >= 1) => threads = list,
                    _ => {
                        eprintln!("--threads expects a comma-separated list of positive counts, e.g. 1,2,4");
                        std::process::exit(2);
                    }
                }
            }
            "help" | "--help" | "-h" => {
                print_help();
                return;
            }
            other => experiment = other.to_string(),
        }
    }

    println!("# BClean reproduction — experiment `{experiment}`, scale {scale:?}\n");
    match experiment.as_str() {
        "table4" => {
            tables_4_and_7(scale);
        }
        "table5" => table5(scale),
        "table6" => table6(scale),
        "table7" => {
            tables_4_and_7(scale);
        }
        "table8" => parameter_sweep(scale, "lambda"),
        "table9" => parameter_sweep(scale, "beta"),
        "table10" => parameter_sweep(scale, "tau"),
        "fig4a" => fig4a(scale),
        "fig4bcd" => fig4bcd(scale),
        "fig4ef" => fig4ef(scale),
        "fig5" => fig5(scale),
        "netedit" => netedit(scale),
        "bench_clean" => bench_clean(scale, &threads),
        "bench_fit" => bench_fit(scale, &threads),
        "bench_stream" => bench_stream(scale),
        "bench_scale" => bench_scale(scale),
        "all" => {
            tables_4_and_7(scale);
            table5(scale);
            table6(scale);
            parameter_sweep(scale, "lambda");
            parameter_sweep(scale, "beta");
            parameter_sweep(scale, "tau");
            fig4a(scale);
            fig4bcd(scale);
            fig4ef(scale);
            fig5(scale);
            netedit(scale);
            bench_clean(scale, &threads);
            bench_fit(scale, &threads);
            bench_stream(scale);
            bench_scale(scale);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            print_help();
            std::process::exit(2);
        }
    }
}

fn print_help() {
    println!(
        "experiments — regenerate the BClean paper's tables and figures\n\n\
         EXPERIMENTS: table4 table5 table6 table7 table8 table9 table10\n\
                      fig4a fig4bcd fig4ef fig5 netedit bench_clean bench_fit\n\
                      bench_stream bench_scale all\n\
         OPTIONS:     --scale small|default|full   (default: small)\n\
         \x20            --threads LIST               worker sweep for bench_clean /\n\
         \x20                                         bench_fit (default: 1,2,4)\n\n\
         bench_clean / bench_fit / bench_stream / bench_scale additionally\n\
         write BENCH_clean.json / BENCH_fit.json / BENCH_stream.json /\n\
         BENCH_scale.json (machine-readable performance trajectories of the\n\
         code-space, streaming and sharded engines vs their baselines); diff\n\
         two snapshots with `cargo run -p bclean-bench --bin bench_diff`."
    );
}

fn build(dataset: BenchmarkDataset, scale: Scale) -> DirtyDataset {
    dataset.build_sized(scale.rows(dataset), EXPERIMENT_SEED)
}

/// Is this (method, dataset) pair feasible at the given scale? Mirrors the
/// paper's "out-of-runtime" dashes: the unoptimised BClean variant is skipped
/// on the largest datasets at default/full scale.
fn feasible(method: Method, dataset: BenchmarkDataset, scale: Scale) -> bool {
    if scale == Scale::Small {
        return true;
    }
    match method {
        Method::BClean(Variant::Basic) | Method::BClean(Variant::NoUserConstraints) => {
            !matches!(dataset, BenchmarkDataset::Soccer | BenchmarkDataset::Facilities)
        }
        _ => true,
    }
}

/// Tables 4 (precision / recall / F1) and 7 (execution time), produced in one
/// pass so every method is run exactly once per dataset.
fn tables_4_and_7(scale: Scale) {
    println!("## Table 4 — precision / recall / F1 of data cleaning methods\n");
    let datasets = BenchmarkDataset::all();
    let methods = Method::table4_methods();
    let mut quality = TextTable::new(
        std::iter::once("Method".to_string())
            .chain(datasets.iter().map(|d| format!("{} (P/R/F1)", d.name())))
            .collect::<Vec<_>>(),
    );
    let mut runtime = TextTable::new(
        std::iter::once("Method".to_string())
            .chain(datasets.iter().map(|d| d.name().to_string()))
            .collect::<Vec<_>>(),
    );
    // Per-dataset fan-out through the shared parallel executor: all feasible
    // methods of one benchmark run as one slate. Timing fidelity for Table 7
    // wants un-contended runs, so the slate is sequential (threads = 1) at
    // the paper's scales; the CI smoke scale trades timing fidelity for
    // wall-clock, capped at a few slate workers because each BClean run
    // spawns its own cleaner pool inside clean().
    let slate_threads = if scale == Scale::Small {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4)
    } else {
        1
    };
    let mut runs: HashMap<(String, &'static str), MethodRun> = HashMap::new();
    for &dataset in &datasets {
        let feasible_methods: Vec<Method> =
            methods.iter().copied().filter(|&m| feasible(m, dataset, scale)).collect();
        if feasible_methods.is_empty() {
            continue;
        }
        let bench = build(dataset, scale);
        for run in run_methods(&feasible_methods, dataset, &bench, slate_threads) {
            runs.insert((run.method.clone(), dataset.name()), run);
        }
    }
    for &method in &methods {
        let mut qrow = vec![method.name()];
        let mut trow = vec![method.name()];
        for &dataset in &datasets {
            match runs.get(&(method.name(), dataset.name())) {
                Some(run) => {
                    qrow.push(run.metrics.triple());
                    trow.push(format_duration(run.exec_time));
                }
                None => {
                    qrow.push("-".to_string());
                    trow.push("-".to_string());
                }
            }
        }
        quality.add_row(qrow);
        runtime.add_row(trow);
    }
    println!("{}", quality.render());
    println!("## Table 7 — execution time (user time is a human-study metric; see EXPERIMENTS.md)\n");
    if slate_threads > 1 {
        println!(
            "(smoke scale: methods ran {slate_threads} at a time, so times include contention; \
             use --scale default for comparable timings)\n"
        );
    }
    println!("{}", runtime.render());
}

/// Table 5 — cleaning quality on a sampled Soccer dataset.
fn table5(scale: Scale) {
    println!("## Table 5 — precision / recall / F1 on sampled Soccer\n");
    let rows = match scale {
        Scale::Small => 1000,
        Scale::Default => 5000,
        Scale::Full => 50_000,
    };
    let bench = BenchmarkDataset::Soccer.build_sized(rows, EXPERIMENT_SEED + 5);
    let mut table = TextTable::new(vec!["Method", "P/R/F1"]);
    for method in
        [Method::BClean(Variant::PartitionedInference), Method::HoloClean, Method::PClean, Method::RahaBaran]
    {
        let run = run_method(method, BenchmarkDataset::Soccer, &bench);
        table.add_row(vec![run.method.clone(), run.metrics.triple()]);
    }
    println!("{}", table.render());
}

/// Table 6 — recall per error type (T, M, I).
fn table6(scale: Scale) {
    println!("## Table 6 — recall for different types of errors (T / M / I)\n");
    let datasets = [BenchmarkDataset::Soccer, BenchmarkDataset::Inpatient, BenchmarkDataset::Facilities];
    let methods =
        [Method::BClean(Variant::PartitionedInference), Method::PClean, Method::HoloClean, Method::RahaBaran];
    let mut table = TextTable::new(
        std::iter::once("Method".to_string())
            .chain(datasets.iter().map(|d| format!("{} (T/M/I)", d.name())))
            .collect::<Vec<_>>(),
    );
    for &method in &methods {
        let mut row = vec![method.name()];
        for &dataset in &datasets {
            let bench = build(dataset, scale);
            let run = run_method(method, dataset, &bench);
            let recalls = ErrorTypeRecall::compute(&bench, &run.cleaned);
            let fmt = |t: ErrorType| {
                recalls.recall(t).map(|r| format!("{r:.3}")).unwrap_or_else(|| "-".to_string())
            };
            row.push(format!(
                "{}/{}/{}",
                fmt(ErrorType::Typo),
                fmt(ErrorType::Missing),
                fmt(ErrorType::Inconsistency)
            ));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
}

/// Tables 8–10 — the λ, β, τ parameter sweeps on Hospital.
fn parameter_sweep(scale: Scale, which: &str) {
    let (label, values): (&str, Vec<f64>) = match which {
        "lambda" => ("Table 8 — varying λ on Hospital (β=2, τ=0.5)", vec![0.0, 1.0, 2.0, 5.0, 10.0, 15.0]),
        "beta" => ("Table 9 — varying β on Hospital (λ=1, τ=0.5)", vec![0.0, 1.0, 2.0, 10.0, 50.0]),
        _ => ("Table 10 — varying τ on Hospital (λ=1, β=2)", vec![0.1, 0.3, 0.5, 0.7, 0.9]),
    };
    println!("## {label}\n");
    let bench = build(BenchmarkDataset::Hospital, scale);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let mut table = TextTable::new(vec![which.to_string(), "F1".to_string()]);
    for &v in &values {
        let params = match which {
            "lambda" => CompensatoryParams { lambda: v, ..CompensatoryParams::default() },
            "beta" => CompensatoryParams { beta: v, ..CompensatoryParams::default() },
            _ => CompensatoryParams { tau: v, ..CompensatoryParams::default() },
        };
        let config = BCleanConfig { params, ..Variant::PartitionedInference.config() };
        let (metrics, _) = run_bclean_evaluated(config, constraints.clone(), &bench);
        table.add_row(vec![format!("{v}"), format!("{:.5}", metrics.f1)]);
    }
    println!("{}", table.render());
}

/// Figure 4(a) — distribution of injected error types.
fn fig4a(scale: Scale) {
    println!("## Figure 4(a) — error distributions (injected error counts per type)\n");
    let mut table = TextTable::new(vec!["Dataset", "M", "T", "I", "S"]);
    for dataset in [BenchmarkDataset::Soccer, BenchmarkDataset::Inpatient, BenchmarkDataset::Facilities] {
        let bench = build(dataset, scale);
        let counts = bench.errors_by_type();
        let get = |t: ErrorType| counts.get(&t).copied().unwrap_or(0).to_string();
        table.add_row(vec![
            dataset.name().to_string(),
            get(ErrorType::Missing),
            get(ErrorType::Typo),
            get(ErrorType::Inconsistency),
            get(ErrorType::Swap),
        ]);
    }
    println!("{}", table.render());
}

/// Figure 4(b)–(d) — F1 while varying the error ratio from 10% to 70%.
fn fig4bcd(scale: Scale) {
    println!("## Figure 4(b)-(d) — F1 vs. error ratio (10%..70%)\n");
    let datasets = [BenchmarkDataset::Flights, BenchmarkDataset::Inpatient, BenchmarkDataset::Facilities];
    let methods = [Method::BClean(Variant::PartitionedInference), Method::RahaBaran, Method::HoloClean];
    for dataset in datasets {
        println!("### {}\n", dataset.name());
        let mut table = TextTable::new(vec!["Error rate", "BCleanPI", "Raha+Baran", "HoloClean"]);
        for rate_pct in [10, 30, 50, 70] {
            let rate = rate_pct as f64 / 100.0;
            let rows = scale.rows(dataset).min(2000);
            let bench = dataset.build_with_rate(rows, rate, EXPERIMENT_SEED + rate_pct as u64);
            let mut row = vec![format!("{rate_pct}%")];
            for &method in &methods {
                let run = run_method(method, dataset, &bench);
                row.push(format!("{:.3}", run.metrics.f1));
            }
            table.add_row(row);
        }
        println!("{}", table.render());
    }
}

/// Figure 4(e)–(f) — recall under swapping-value errors (same / different domain).
fn fig4ef(scale: Scale) {
    println!("## Figure 4(e)-(f) — recall under swapping value errors\n");
    let cases = [(BenchmarkDataset::Inpatient, 0.10), (BenchmarkDataset::Facilities, 0.05)];
    let methods =
        [Method::BClean(Variant::PartitionedInference), Method::PClean, Method::HoloClean, Method::RahaBaran];
    for (dataset, rate) in cases {
        println!("### {} ({}% swap errors)\n", dataset.name(), (rate * 100.0) as u32);
        let mut table = TextTable::new(vec!["Method", "Same domain", "Different domain"]);
        let rows = scale.rows(dataset).min(2000);
        let clean = dataset.generate_clean(rows, EXPERIMENT_SEED);
        let same = bclean_datagen::inject_errors(
            &clean,
            &ErrorSpec::only(ErrorType::Swap, rate).with_swap_mode(SwapMode::SameAttribute),
            EXPERIMENT_SEED + 31,
        );
        let different = bclean_datagen::inject_errors(
            &clean,
            &ErrorSpec::only(ErrorType::Swap, rate).with_swap_mode(SwapMode::DifferentAttribute),
            EXPERIMENT_SEED + 37,
        );
        for &method in &methods {
            let same_run = run_method(method, dataset, &same);
            let diff_run = run_method(method, dataset, &different);
            table.add_row(vec![
                method.name(),
                format!("{:.3}", same_run.metrics.recall),
                format!("{:.3}", diff_run.metrics.recall),
            ]);
        }
        println!("{}", table.render());
    }
}

/// Figure 5 — effect of incomplete user constraints on precision and recall.
fn fig5(scale: Scale) {
    println!("## Figure 5 — effect of incomplete UCs (Com / Max / Min / Nul / Pat / All)\n");
    let datasets = [BenchmarkDataset::Hospital, BenchmarkDataset::Flights, BenchmarkDataset::Soccer];
    let ablations: [(&str, Option<ConstraintKind>); 6] = [
        ("Com", None),
        ("Max", Some(ConstraintKind::Max)),
        ("Min", Some(ConstraintKind::Min)),
        ("Nul", Some(ConstraintKind::NotNull)),
        ("Pat", Some(ConstraintKind::Pattern)),
        ("All", None), // handled specially: remove everything
    ];
    for dataset in datasets {
        println!("### {}\n", dataset.name());
        let rows = scale.rows(dataset).min(3000);
        let bench = dataset.build_sized(rows, EXPERIMENT_SEED + 53);
        let full = bclean_constraints(dataset);
        let mut table = TextTable::new(vec!["UC set", "Precision", "Recall"]);
        for (label, kind) in ablations {
            let constraints = match (label, kind) {
                ("All", _) => bclean_core::ConstraintSet::new(),
                (_, Some(kind)) => full.without_kind(kind),
                _ => full.clone(),
            };
            let (metrics, _) =
                run_bclean_evaluated(Variant::PartitionedInference.config(), constraints, &bench);
            table.add_row(vec![
                label.to_string(),
                format!("{:.3}", metrics.precision),
                format!("{:.3}", metrics.recall),
            ]);
        }
        println!("{}", table.render());
    }
}

/// Render the `speedups` array + trailer shared by every `BENCH_*.json`
/// snapshot: one `{variant, threads, speedup}` record per measured pair, a
/// minimum, and the wall-clock. `bench_diff` matches baseline/candidate
/// records on `(variant, threads)`.
fn speedups_json(
    speedups: &[(String, usize, f64)],
    extra_records: &[String],
    min_speedup: f64,
    total_seconds: f64,
) -> String {
    let mut records: Vec<String> = speedups
        .iter()
        .map(|(name, threads, s)| {
            format!("    {{\"variant\": \"{name}\", \"threads\": {threads}, \"speedup\": {s:.3}}}")
        })
        .collect();
    records.extend(extra_records.iter().cloned());
    format!(
        "  \"speedups\": [\n{}\n  ],\n  \"min_speedup\": {:.3},\n  \"total_wall_seconds\": {:.3}\n}}\n",
        records.join(",\n"),
        min_speedup,
        total_seconds,
    )
}

/// Cleaning-throughput benchmark: the dictionary-encoded engine
/// (`BCleanModel::clean`) against the retained `Value`-path baseline
/// (`BCleanModel::clean_reference`) on the Hospital workload, one BClean
/// variant per row, swept across worker-thread counts. Besides the stdout
/// table, the measurements are written to `BENCH_clean.json` so the
/// performance trajectory (including multi-thread scaling) is
/// machine-readable and tracked across PRs. The shared fit of each
/// (variant, threads) pair is timed once and recorded in its own `fits`
/// array — both engines clean the *same* fitted model, so duplicating the
/// fit time into every engine row would just repeat one measurement.
fn bench_clean(scale: Scale, threads_sweep: &[usize]) {
    println!("## BENCH_clean — encoded engine vs Value-path baseline (Hospital)\n");
    let total_start = std::time::Instant::now();
    let rows = scale.rows(BenchmarkDataset::Hospital);
    let bench = BenchmarkDataset::Hospital.build_sized(rows, EXPERIMENT_SEED);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let cols = bench.dirty.num_columns();
    let iters = 3usize;

    let mut table = TextTable::new(vec![
        "Variant",
        "Threads",
        "Engine",
        "Fit",
        "Clean (best)",
        "Rows/s",
        "Repairs",
        "Speedup",
    ]);
    let mut fits_json: Vec<String> = Vec::new();
    let mut runs_json: Vec<String> = Vec::new();
    let mut speedups: Vec<(String, usize, f64)> = Vec::new();
    for variant in Variant::all() {
        for &threads in threads_sweep {
            let fit_start = std::time::Instant::now();
            let model = BClean::new(variant.config().with_threads(threads))
                .with_constraints(constraints.clone())
                .fit(&bench.dirty);
            let fit_time: Duration = fit_start.elapsed();
            fits_json.push(format!(
                "    {{\"variant\": \"{}\", \"threads\": {}, \"fit_seconds\": {:.6}}}",
                variant.name(),
                threads,
                fit_time.as_secs_f64(),
            ));
            let mut per_engine: Vec<(&str, f64, usize)> = Vec::new();
            for engine in ["encoded", "reference"] {
                let mut best = f64::INFINITY;
                let mut repairs = 0usize;
                for _ in 0..iters {
                    let start = std::time::Instant::now();
                    let result = if engine == "encoded" {
                        model.clean(&bench.dirty)
                    } else {
                        model.clean_reference(&bench.dirty)
                    };
                    best = best.min(start.elapsed().as_secs_f64());
                    repairs = result.repairs.len();
                }
                per_engine.push((engine, best, repairs));
            }
            let encoded = per_engine[0];
            let reference = per_engine[1];
            let speedup = reference.1 / encoded.1.max(1e-12);
            speedups.push((variant.name().to_string(), threads, speedup));
            for (engine, best, repairs) in &per_engine {
                let rows_per_sec = rows as f64 / best.max(1e-12);
                table.add_row(vec![
                    variant.name().to_string(),
                    threads.to_string(),
                    engine.to_string(),
                    if *engine == "encoded" { format_duration(fit_time) } else { "(shared)".to_string() },
                    format!("{:.4}s", best),
                    format!("{rows_per_sec:.0}"),
                    repairs.to_string(),
                    if *engine == "encoded" { format!("{speedup:.2}x") } else { "1.00x".to_string() },
                ]);
                runs_json.push(format!(
                    "    {{\"variant\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \
                     \"clean_seconds\": {:.6}, \"rows_per_sec\": {:.2}, \
                     \"cells_per_sec\": {:.2}, \"repairs\": {}}}",
                    variant.name(),
                    engine,
                    threads,
                    best,
                    rows_per_sec,
                    (rows * cols) as f64 / best.max(1e-12),
                    repairs
                ));
            }
        }
    }
    println!("{}", table.render());

    let min_speedup = speedups.iter().map(|(_, _, s)| *s).fold(f64::INFINITY, f64::min);
    let threads_json: Vec<String> = threads_sweep.iter().map(|t| t.to_string()).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"Hospital\",\n  \"scale\": \"{:?}\",\n  \"rows\": {},\n  \
         \"columns\": {},\n  \"cells\": {},\n  \"threads_swept\": [{}],\n  \"clean_iters\": {},\n  \
         \"fits\": [\n{}\n  ],\n  \"runs\": [\n{}\n  ],\n{}",
        scale,
        rows,
        cols,
        rows * cols,
        threads_json.join(", "),
        iters,
        fits_json.join(",\n"),
        runs_json.join(",\n"),
        speedups_json(&speedups, &[], min_speedup, total_start.elapsed().as_secs_f64()),
    );
    match std::fs::write("BENCH_clean.json", &json) {
        Ok(()) => println!("wrote BENCH_clean.json (min speedup {min_speedup:.2}x)\n"),
        Err(e) => eprintln!("could not write BENCH_clean.json: {e}"),
    }
}

/// Model-fitting benchmark: the code-space fit pipeline (`BClean::fit` —
/// encoded structure learning, direct-to-compiled CPT counting, parallel
/// compensatory build) against the retained `Value`-path construction
/// (`BClean::fit_reference`) on the Hospital workload, one BClean variant
/// per row. Besides the stdout table, the measurements are written to
/// `BENCH_fit.json` so the fit-performance trajectory is machine-readable
/// and tracked across PRs (same schema family as `BENCH_clean.json`; the CI
/// perf gate compares fresh runs against the committed snapshot via
/// `bench_diff`).
fn bench_fit(scale: Scale, threads_sweep: &[usize]) {
    println!("## BENCH_fit — code-space fit vs Value-path construction (Hospital)\n");
    let total_start = std::time::Instant::now();
    let rows = scale.rows(BenchmarkDataset::Hospital);
    let bench = BenchmarkDataset::Hospital.build_sized(rows, EXPERIMENT_SEED);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let cols = bench.dirty.num_columns();
    let iters = 3usize;

    let mut table = TextTable::new(vec![
        "Variant",
        "Threads",
        "Engine",
        "Fit (best)",
        "Rows/s",
        "Edges",
        "Repairs",
        "Speedup",
    ]);
    let mut runs_json: Vec<String> = Vec::new();
    let mut speedups: Vec<(String, usize, f64)> = Vec::new();
    for variant in Variant::all() {
        for &threads in threads_sweep {
            let cleaner =
                BClean::new(variant.config().with_threads(threads)).with_constraints(constraints.clone());
            let mut per_engine: Vec<(&str, f64, usize, usize)> = Vec::new();
            for engine in ["encoded", "reference"] {
                let mut best = f64::INFINITY;
                let mut model = None;
                for _ in 0..iters {
                    let start = std::time::Instant::now();
                    model = Some(if engine == "encoded" {
                        cleaner.fit(&bench.dirty)
                    } else {
                        cleaner.fit_reference(&bench.dirty)
                    });
                    best = best.min(start.elapsed().as_secs_f64());
                }
                let model = model.expect("at least one fit iteration ran");
                let edges = model.network().dag().num_edges();
                // Downstream sanity (outside the timing loop): the fitted model
                // must clean identically regardless of which fit path built it.
                let repairs = model.clean(&bench.dirty).repairs.len();
                per_engine.push((engine, best, edges, repairs));
            }
            let encoded = per_engine[0];
            let reference = per_engine[1];
            assert_eq!(
                encoded.3, reference.3,
                "fit and fit_reference must produce models with identical repairs"
            );
            let speedup = reference.1 / encoded.1.max(1e-12);
            speedups.push((variant.name().to_string(), threads, speedup));
            for (engine, best, edges, repairs) in &per_engine {
                let rows_per_sec = rows as f64 / best.max(1e-12);
                table.add_row(vec![
                    variant.name().to_string(),
                    threads.to_string(),
                    engine.to_string(),
                    format!("{:.4}s", best),
                    format!("{rows_per_sec:.0}"),
                    edges.to_string(),
                    repairs.to_string(),
                    if *engine == "encoded" { format!("{speedup:.2}x") } else { "1.00x".to_string() },
                ]);
                runs_json.push(format!(
                    "    {{\"variant\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \
                     \"fit_seconds\": {:.6}, \"rows_per_sec\": {:.2}, \"structure_edges\": {}, \
                     \"repairs\": {}}}",
                    variant.name(),
                    engine,
                    threads,
                    best,
                    rows_per_sec,
                    edges,
                    repairs
                ));
            }
        }
    }
    println!("{}", table.render());

    // Wide-schema scale tier: the sketch-budget fit (`FitBudget::Budgeted`)
    // against the exact default on the 32-column scale dataset, serial. The
    // timed surface is `fit_artifact` — the artifact production `bclean
    // fit` runs (CPT compilation is a clean-time cost both paths share
    // unchanged). Repair agreement is measured outside the timing loop by
    // cleaning with both artifacts under the same top-k pruned config: the
    // budget approximates structure *search* only (pair tallies stay exact
    // through the hybrid stores), so agreement records how often the
    // sampled search still lands on repairs the exact fit would make.
    let factor = match scale {
        Scale::Small => ScaleFactor::S10K,
        Scale::Default => ScaleFactor::S100K,
        Scale::Full => ScaleFactor::S1M,
    };
    let wide_rows = factor.rows();
    println!("### wide-schema tier — budgeted vs exact fit ({wide_rows} rows)\n");
    let wide = build_wide(wide_rows, EXPERIMENT_SEED);
    let budget = BudgetParams {
        sample_rows: (wide_rows / 5).clamp(2_000, 20_000),
        heavy_hitters: 64,
        ..BudgetParams::default()
    };
    let exact_cfg = Variant::PartitionedInference.config().with_threads(1).with_candidate_top_k(16);
    let budgeted_cfg = exact_cfg.clone().with_fit_budget(FitBudget::Budgeted(budget));
    let wide_iters = if scale == Scale::Full { 2usize } else { 3 };
    let mut wide_table =
        TextTable::new(vec!["Engine", "Fit artifact (best)", "Rows/s", "Edges", "Repairs", "Speedup"]);
    let mut wide_measured: Vec<(&str, f64, usize, Vec<bclean_core::Repair>)> = Vec::new();
    for (engine, cfg) in [("exact", &exact_cfg), ("budgeted", &budgeted_cfg)] {
        let mut best = f64::INFINITY;
        let mut artifact = None;
        for _ in 0..wide_iters {
            let start = std::time::Instant::now();
            artifact = Some(BClean::new(cfg.clone()).fit_artifact(&wide.dirty));
            best = best.min(start.elapsed().as_secs_f64());
        }
        let artifact = artifact.expect("at least one wide fit iteration ran");
        let model = artifact.compile();
        let edges = model.network().dag().num_edges();
        let repairs = model.clean(&wide.dirty).repairs;
        wide_measured.push((engine, best, edges, repairs));
    }
    let wide_speedup = wide_measured[0].1 / wide_measured[1].1.max(1e-12);
    let agreement = repair_agreement(&wide_measured[0].3, &wide_measured[1].3);
    for (engine, best, edges, repairs) in &wide_measured {
        let rows_per_sec = wide_rows as f64 / best.max(1e-12);
        wide_table.add_row(vec![
            engine.to_string(),
            format!("{best:.4}s"),
            format!("{rows_per_sec:.0}"),
            edges.to_string(),
            repairs.len().to_string(),
            if *engine == "budgeted" { format!("{wide_speedup:.2}x") } else { "1.00x".to_string() },
        ]);
        runs_json.push(format!(
            "    {{\"variant\": \"wide\", \"engine\": \"{}\", \"threads\": 1, \"rows\": {}, \
             \"fit_seconds\": {:.6}, \"rows_per_sec\": {:.2}, \"structure_edges\": {}, \
             \"repairs\": {}, \"sample_rows\": {}, \"heavy_hitters\": {}, \"agreement\": {:.4}}}",
            engine,
            wide_rows,
            best,
            rows_per_sec,
            edges,
            repairs.len(),
            budget.sample_rows,
            budget.heavy_hitters,
            agreement,
        ));
    }
    println!("{}", wide_table.render());
    println!(
        "wide tier: budgeted-vs-exact fit speedup {wide_speedup:.2}x, repair agreement {agreement:.4}\n"
    );
    let wide_record = format!(
        "    {{\"variant\": \"wide/budgeted-vs-exact\", \"threads\": 1, \"speedup\": {wide_speedup:.3}, \
         \"agreement\": {agreement:.4}}}"
    );

    let min_speedup = speedups.iter().map(|(_, _, s)| *s).fold(f64::INFINITY, f64::min).min(wide_speedup);
    let threads_json: Vec<String> = threads_sweep.iter().map(|t| t.to_string()).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"Hospital\",\n  \"scale\": \"{:?}\",\n  \"rows\": {},\n  \
         \"columns\": {},\n  \"cells\": {},\n  \"threads_swept\": [{}],\n  \"fit_iters\": {},\n  \
         \"runs\": [\n{}\n  ],\n{}",
        scale,
        rows,
        cols,
        rows * cols,
        threads_json.join(", "),
        iters,
        runs_json.join(",\n"),
        speedups_json(&speedups, &[wide_record], min_speedup, total_start.elapsed().as_secs_f64()),
    );
    match std::fs::write("BENCH_fit.json", &json) {
        Ok(()) => println!("wrote BENCH_fit.json (min speedup {min_speedup:.2}x)\n"),
        Err(e) => eprintln!("could not write BENCH_fit.json: {e}"),
    }
}

/// Streaming-session benchmark: chunked `CleaningSession::ingest` against
/// the equivalent one-shot `fit` + `clean`, across two benchmark families
/// (Hospital and the error-heavier Flights) and every variant.
///
/// Two headline numbers per run land in `BENCH_stream.json`:
///
/// * `throughput_ratio` — amortized streaming cells/sec (absorbs, cadence
///   refits and per-batch cleans included) over the cells/sec of the
///   *equivalent one-shot work* (encoded `fit` + `clean`) on the same data;
///   `clean_only_ratio` additionally records the stricter comparison
///   against the one-shot clean alone (the session is maintaining the
///   model *and* cleaning, so this one dips below 1 by construction);
/// * `refit_speedup` — a full refit (one-shot `fit` over everything the
///   session absorbed) over the session's average *incremental* refit,
///   which reuses dictionary codes, similarity caches and per-node counts.
///
/// The `speedups` records gate the refit speedups in CI via `bench_diff`,
/// keyed `"<benchmark>/<variant>"` with the session's thread count.
///
/// A second, **out-of-core tier** exercises the bounded-memory
/// [`clean_stream`] pipeline at scale-factor row counts (10⁴ / 10⁵ / 10⁶
/// rows for `--scale small|default|full`): the dirty table is written to a
/// CSV file and cleaned chunk-by-chunk from disk, asserting bit-identical
/// repairs against the in-RAM one-shot. The tier lands in the snapshot's
/// `ooc` object — rows/s streamed vs resident, the `peak_bytes`
/// peak-memory proxy against the resident dataset's footprint
/// (`memory_ratio`), the warm re-clean speedup from the persisted encoded
/// dataset, and the accuracy-vs-speed record of a sketch-budgeted streamed
/// fit (`budgeted_agreement`). The object is informational, not gated:
/// `bench_diff` warns on snapshot keys it does not know rather than
/// failing, so adding tiers like this one never breaks an older gate.
fn bench_stream(scale: Scale) {
    println!("## BENCH_stream — chunked streaming sessions vs one-shot fit+clean\n");
    let total_start = std::time::Instant::now();
    let chunks = 8usize;
    let refit_every = 2usize;
    let clean_iters = 2usize;

    let mut table = TextTable::new(vec![
        "Benchmark",
        "Variant",
        "Ingest",
        "Stream cells/s",
        "1-shot fit+clean cells/s",
        "Ratio",
        "Incr refit",
        "Full refit",
        "Refit speedup",
    ]);
    let mut runs_json: Vec<String> = Vec::new();
    let mut speedups: Vec<(String, usize, f64)> = Vec::new();
    let mut min_ratio = f64::INFINITY;
    for benchmark in [BenchmarkDataset::Hospital, BenchmarkDataset::Flights] {
        let rows = scale.rows(benchmark);
        let bench = benchmark.build_sized(rows, EXPERIMENT_SEED);
        let constraints = bclean_constraints(benchmark);
        let cols = bench.dirty.num_columns();
        let cells = (rows * cols) as f64;
        let chunk_rows = rows.div_ceil(chunks);
        for variant in Variant::all() {
            let cleaner = BClean::new(variant.config().with_threads(1)).with_constraints(constraints.clone());

            // One-shot baseline: best-of fits (a fit from scratch is also
            // the full-refit baseline — exactly what a session would pay to
            // refit without its incremental statistics), then best-of clean.
            let mut full_refit_seconds = f64::INFINITY;
            let mut model = None;
            for _ in 0..clean_iters {
                let fit_start = std::time::Instant::now();
                model = Some(cleaner.fit(&bench.dirty));
                full_refit_seconds = full_refit_seconds.min(fit_start.elapsed().as_secs_f64());
            }
            let model = model.expect("at least one fit ran");
            let mut oneshot_clean_seconds = f64::INFINITY;
            let mut oneshot_repairs = 0usize;
            for _ in 0..clean_iters {
                let start = std::time::Instant::now();
                oneshot_repairs = model.clean(&bench.dirty).repairs.len();
                oneshot_clean_seconds = oneshot_clean_seconds.min(start.elapsed().as_secs_f64());
            }
            let oneshot_cells_per_sec = cells / oneshot_clean_seconds.max(1e-12);

            // Streaming: equal chunks, cadence refits, provisional repairs.
            let mut session = CleaningSession::new(cleaner.clone(), bench.dirty.schema().clone())
                .with_refit_every(refit_every);
            let mut stream_repairs = 0usize;
            let mut first_refit_seconds = 0.0;
            let mut first_refits = 0usize;
            let ingest_start = std::time::Instant::now();
            for chunk_idx in 0..chunks {
                let lo = chunk_idx * chunk_rows;
                let hi = ((chunk_idx + 1) * chunk_rows).min(rows);
                if lo >= hi {
                    continue;
                }
                let mut batch = bclean_data::Dataset::new(bench.dirty.schema().clone());
                for r in lo..hi {
                    batch.push_row(bench.dirty.row(r).expect("row in range").to_vec()).expect("arity");
                }
                stream_repairs += session.ingest(&batch).len();
                if chunk_idx == 0 {
                    // The first ingest is the initial full fit, not an
                    // incremental refit; exclude it from the average.
                    first_refit_seconds = session.stats().refit_seconds;
                    first_refits = session.stats().refits;
                }
            }
            let ingest_seconds = ingest_start.elapsed().as_secs_f64();
            let stats = session.stats();
            let final_repairs = session.finalize().repairs.len();
            assert_eq!(
                final_repairs, oneshot_repairs,
                "a finalized session must reproduce the one-shot repairs"
            );

            let stream_cells_per_sec = cells / ingest_seconds.max(1e-12);
            let oneshot_total_seconds = full_refit_seconds + oneshot_clean_seconds;
            let oneshot_total_cells_per_sec = cells / oneshot_total_seconds.max(1e-12);
            let throughput_ratio = stream_cells_per_sec / oneshot_total_cells_per_sec.max(1e-12);
            let clean_only_ratio = stream_cells_per_sec / oneshot_cells_per_sec.max(1e-12);
            min_ratio = min_ratio.min(throughput_ratio);
            let incremental_refits = stats.refits.saturating_sub(first_refits).max(1);
            let incremental_refit_seconds =
                (stats.refit_seconds - first_refit_seconds).max(0.0) / incremental_refits as f64;
            let refit_speedup = full_refit_seconds / incremental_refit_seconds.max(1e-12);
            speedups.push((format!("{}/{}", benchmark.name(), variant.name()), 1, refit_speedup));

            table.add_row(vec![
                benchmark.name().to_string(),
                variant.name().to_string(),
                format!("{ingest_seconds:.4}s"),
                format!("{stream_cells_per_sec:.0}"),
                format!("{oneshot_total_cells_per_sec:.0}"),
                format!("{throughput_ratio:.2}"),
                format!("{:.4}s", incremental_refit_seconds),
                format!("{full_refit_seconds:.4}s"),
                format!("{refit_speedup:.2}x"),
            ]);
            runs_json.push(format!(
                "    {{\"benchmark\": \"{}\", \"variant\": \"{}\", \"threads\": 1, \"rows\": {}, \
                 \"columns\": {}, \"chunks\": {}, \"refit_every\": {}, \
                 \"oneshot_fit_seconds\": {:.6}, \"oneshot_clean_seconds\": {:.6}, \
                 \"oneshot_total_cells_per_sec\": {:.2}, \"oneshot_clean_cells_per_sec\": {:.2}, \
                 \"stream_ingest_seconds\": {:.6}, \"stream_cells_per_sec\": {:.2}, \
                 \"throughput_ratio\": {:.4}, \"clean_only_ratio\": {:.4}, \
                 \"absorb_seconds\": {:.6}, \"refit_seconds\": {:.6}, \"clean_seconds\": {:.6}, \
                 \"refits\": {}, \"incremental_refit_seconds_avg\": {:.6}, \
                 \"full_refit_seconds\": {:.6}, \"refit_speedup\": {:.3}, \
                 \"stream_repairs\": {}, \"final_repairs\": {}, \"oneshot_repairs\": {}}}",
                benchmark.name(),
                variant.name(),
                rows,
                cols,
                chunks,
                refit_every,
                full_refit_seconds,
                oneshot_clean_seconds,
                oneshot_total_cells_per_sec,
                oneshot_cells_per_sec,
                ingest_seconds,
                stream_cells_per_sec,
                throughput_ratio,
                clean_only_ratio,
                stats.absorb_seconds,
                stats.refit_seconds,
                stats.clean_seconds,
                stats.refits,
                incremental_refit_seconds,
                full_refit_seconds,
                refit_speedup,
                stream_repairs,
                final_repairs,
                oneshot_repairs,
            ));
        }
    }
    println!("{}", table.render());

    // Out-of-core tier: the bounded-memory `clean_stream` pipeline reading
    // the dirty table back from a CSV file in fixed-row chunks, against the
    // in-RAM one-shot on the resident dataset. Timed once per mode — the
    // tier's headline numbers are the memory proxy, the bit-identity
    // assertions and the warm-cache / budgeted comparisons, not
    // jitter-sensitive speedups (none of them are gated).
    let factor = match scale {
        Scale::Small => ScaleFactor::S10K,
        Scale::Default => ScaleFactor::S100K,
        Scale::Full => ScaleFactor::S1M,
    };
    let ooc_rows = factor.rows();
    let ooc_chunk_rows = 2048usize;
    println!("### out-of-core tier — streamed clean vs in-RAM one-shot (Hospital, {ooc_rows} rows)\n");
    let ooc_bench = BenchmarkDataset::Hospital.build_sized(ooc_rows, EXPERIMENT_SEED);
    let ooc_cleaner = BClean::new(Variant::PartitionedInference.config().with_threads(1))
        .with_constraints(bclean_constraints(BenchmarkDataset::Hospital));

    // Both modes clean the same on-disk CSV: the baseline loads it whole
    // (schema inference included — the exact work `bclean clean` does),
    // the streamed runs read it back in bounded chunks.
    let tmp = std::env::temp_dir().join(format!("bclean-bench-ooc-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create bench temp dir");
    let csv_path = tmp.join("ooc.csv");
    let cache_path = tmp.join("ooc-encoded.bclean");
    write_csv_file(&ooc_bench.dirty, &csv_path).expect("write streaming source CSV");

    // In-RAM baseline: the whole dataset resident, one-shot artifact + clean.
    let oneshot_start = std::time::Instant::now();
    let resident = read_csv_file(&csv_path).expect("load streaming source whole");
    let ooc_artifact = ooc_cleaner.fit_artifact(&resident);
    let ooc_model = ooc_artifact.compile();
    let ooc_oneshot = ooc_model.clean(&resident);
    let oneshot_seconds = oneshot_start.elapsed().as_secs_f64();
    let ooc_cols = resident.num_columns();
    let resident_bytes = approx_dataset_bytes(&resident);
    let oneshot_csv = repairs_to_csv(&ooc_oneshot.repairs);
    let ooc_options = StreamOptions {
        limits: ChunkLimits::rows(ooc_chunk_rows),
        cache_path: Some(cache_path.clone()),
        fingerprint: Some(SourceFingerprint::of_file(&csv_path).expect("fingerprint streaming source")),
        cleaned_path: None,
    };
    let run_stream = |cleaner: &BClean, options: &StreamOptions| {
        let mut source = CsvFileChunks::open(&csv_path, options.limits).expect("open streaming source");
        let start = std::time::Instant::now();
        let outcome = clean_stream(cleaner, &mut source, options).expect("streamed clean");
        (start.elapsed().as_secs_f64(), outcome)
    };
    let (cold_seconds, cold) = run_stream(&ooc_cleaner, &ooc_options);
    assert!(
        !cold.encode_skipped && cold.cache_written,
        "the first streamed run must encode from the source and persist the encoded dataset"
    );
    assert_eq!(
        repairs_to_csv(&cold.repairs),
        oneshot_csv,
        "the streamed clean must be bit-identical to the in-RAM one-shot"
    );
    let (warm_seconds, warm) = run_stream(&ooc_cleaner, &ooc_options);
    assert!(warm.encode_skipped, "the re-clean must hit the persisted encoded dataset");
    assert_eq!(
        repairs_to_csv(&warm.repairs),
        oneshot_csv,
        "the warm re-clean must reproduce the cold repairs byte for byte"
    );

    // Accuracy-vs-speed: the same streamed pipeline under a sketch fit
    // budget — the documented large-scale mode (`bclean clean --stream
    // --fit-sample`), where structure search runs on a sample while the
    // clean itself still sees every row.
    let ooc_budget = BudgetParams {
        sample_rows: (ooc_rows / 5).clamp(2_000, 20_000),
        heavy_hitters: 64,
        ..BudgetParams::default()
    };
    let budgeted_cleaner = BClean::new(
        Variant::PartitionedInference
            .config()
            .with_threads(1)
            .with_fit_budget(FitBudget::Budgeted(ooc_budget)),
    )
    .with_constraints(bclean_constraints(BenchmarkDataset::Hospital));
    let budget_options = StreamOptions { limits: ChunkLimits::rows(ooc_chunk_rows), ..Default::default() };
    let (budgeted_seconds, budgeted) = run_stream(&budgeted_cleaner, &budget_options);
    let budgeted_agreement = repair_agreement(&ooc_oneshot.repairs, &budgeted.repairs);
    let _ = std::fs::remove_dir_all(&tmp);

    let oneshot_rows_per_sec = ooc_rows as f64 / oneshot_seconds.max(1e-12);
    let cold_rows_per_sec = ooc_rows as f64 / cold_seconds.max(1e-12);
    let warm_rows_per_sec = ooc_rows as f64 / warm_seconds.max(1e-12);
    let budgeted_rows_per_sec = ooc_rows as f64 / budgeted_seconds.max(1e-12);
    let ooc_throughput_ratio = cold_rows_per_sec / oneshot_rows_per_sec.max(1e-12);
    let warm_speedup = cold_seconds / warm_seconds.max(1e-12);
    let budgeted_speedup = cold_seconds / budgeted_seconds.max(1e-12);
    let memory_ratio = cold.peak_bytes as f64 / (resident_bytes.max(1)) as f64;
    let mut ooc_table = TextTable::new(vec!["Mode", "Wall", "Rows/s", "Peak bytes", "Repairs", "Agreement"]);
    for (mode, seconds, rows_per_sec, peak, repairs, agreement) in [
        (
            "in-RAM one-shot",
            oneshot_seconds,
            oneshot_rows_per_sec,
            resident_bytes,
            ooc_oneshot.repairs.len(),
            1.0,
        ),
        ("streamed (cold)", cold_seconds, cold_rows_per_sec, cold.peak_bytes, cold.repairs.len(), 1.0),
        ("streamed (warm cache)", warm_seconds, warm_rows_per_sec, warm.peak_bytes, warm.repairs.len(), 1.0),
        (
            "streamed (budgeted)",
            budgeted_seconds,
            budgeted_rows_per_sec,
            budgeted.peak_bytes,
            budgeted.repairs.len(),
            budgeted_agreement,
        ),
    ] {
        ooc_table.add_row(vec![
            mode.to_string(),
            format!("{seconds:.4}s"),
            format!("{rows_per_sec:.0}"),
            peak.to_string(),
            repairs.to_string(),
            format!("{agreement:.4}"),
        ]);
    }
    println!("{}", ooc_table.render());
    println!(
        "out-of-core tier: peak chunk memory {:.1}% of resident, warm-cache speedup {warm_speedup:.2}x, \
         budgeted agreement {budgeted_agreement:.4}\n",
        memory_ratio * 100.0
    );
    let ooc_json = format!(
        "  \"ooc\": {{\"benchmark\": \"Hospital\", \"rows\": {ooc_rows}, \"columns\": {ooc_cols}, \
         \"chunk_rows\": {ooc_chunk_rows}, \"chunks\": {}, \
         \"oneshot_seconds\": {oneshot_seconds:.6}, \"oneshot_rows_per_sec\": {oneshot_rows_per_sec:.2}, \
         \"resident_bytes\": {resident_bytes}, \
         \"stream_cold_seconds\": {cold_seconds:.6}, \"stream_cold_rows_per_sec\": {cold_rows_per_sec:.2}, \
         \"peak_bytes\": {}, \"memory_ratio\": {memory_ratio:.4}, \
         \"throughput_ratio\": {ooc_throughput_ratio:.4}, \
         \"stream_warm_seconds\": {warm_seconds:.6}, \"warm_cache_speedup\": {warm_speedup:.3}, \
         \"budgeted_seconds\": {budgeted_seconds:.6}, \"budgeted_speedup\": {budgeted_speedup:.3}, \
         \"budgeted_agreement\": {budgeted_agreement:.4}, \
         \"repairs\": {}}},",
        cold.chunks,
        cold.peak_bytes,
        ooc_oneshot.repairs.len(),
    );

    let min_speedup = speedups.iter().map(|(_, _, s)| *s).fold(f64::INFINITY, f64::min);
    let json = format!(
        "{{\n  \"benchmarks\": [\"Hospital\", \"Flights\"],\n  \"scale\": \"{:?}\",\n  \
         \"chunks\": {},\n  \"refit_every\": {},\n  \"clean_iters\": {},\n  \
         \"min_throughput_ratio\": {:.4},\n  \"runs\": [\n{}\n  ],\n{}\n{}",
        scale,
        chunks,
        refit_every,
        clean_iters,
        min_ratio,
        runs_json.join(",\n"),
        ooc_json,
        speedups_json(&speedups, &[], min_speedup, total_start.elapsed().as_secs_f64()),
    );
    match std::fs::write("BENCH_stream.json", &json) {
        Ok(()) => println!(
            "wrote BENCH_stream.json (min refit speedup {min_speedup:.2}x, min throughput ratio {min_ratio:.2})\n"
        ),
        Err(e) => eprintln!("could not write BENCH_stream.json: {e}"),
    }
}

/// Large-scale benchmark: the sharded cleaning pipeline on the wide-schema
/// (32-column) scale dataset, at 10⁴ / 10⁵ / 10⁶ rows for
/// `--scale small|default|full`.
///
/// Two families of runs land in `BENCH_scale.json`:
///
/// * an **exact grid** over shards × threads — sharding is bit-identical to
///   the serial clean (asserted here and guarded in
///   `tests/stream_equivalence.rs`), so these rows chart how row-sharded
///   work distribution scales with real cores (on a single-core runner they
///   hover near 1×, which is the honest reading);
/// * the **scale tier** — shards *plus* top-k candidate pruning
///   (`candidate_top_k`, off by default in the library), whose speedup is
///   algorithmic: error injection inflates every column's cardinality with
///   near-unique typo values, and capping candidate lists at the `TOP_K`
///   most frequent codes cuts per-cell scoring work by the cardinality
///   ratio, on any machine.
///
/// The `speedups` records CI gates via `bench_diff` are the machine-stable
/// algorithmic ones: pruned-vs-exact at the serial point, and the full
/// scale tier (4 shards / 4 threads / top-k) against the serial exact
/// baseline.
fn bench_scale(scale: Scale) {
    let factor = match scale {
        Scale::Small => ScaleFactor::S10K,
        Scale::Default => ScaleFactor::S100K,
        Scale::Full => ScaleFactor::S1M,
    };
    let rows = factor.rows();
    println!("## BENCH_scale — sharded cleaning scale tier (wide schema, {rows} rows)\n");
    let total_start = std::time::Instant::now();
    let bench = build_wide(rows, EXPERIMENT_SEED);
    let cols = bench.dirty.num_columns();
    let cells = rows * cols;
    const TOP_K: usize = 16;
    let clean_iters = if scale == Scale::Small { 2usize } else { 1 };

    // One fit serves every grid point: shards, threads and the candidate
    // cap are execution knobs on the artifact (sharded fitting is
    // bit-identical to serial — see tests/stream_equivalence.rs), so the
    // grid re-times cleaning, not fitting. The fit itself is timed at the
    // serial and the 4-shard/4-thread configurations to record both paths.
    let fit_start = std::time::Instant::now();
    let mut artifact =
        BClean::new(Variant::PartitionedInference.config().with_threads(1)).fit_artifact(&bench.dirty);
    let fit_serial_seconds = fit_start.elapsed().as_secs_f64();
    let fit_start = std::time::Instant::now();
    let _ = BClean::new(Variant::PartitionedInference.config().with_threads(4).with_shards(4))
        .fit_artifact(&bench.dirty);
    let fit_sharded_seconds = fit_start.elapsed().as_secs_f64();

    let mut table = TextTable::new(vec![
        "Config",
        "Shards",
        "Threads",
        "Top-k",
        "Clean (best)",
        "Rows/s",
        "Cells/s",
        "Repairs",
    ]);
    let mut runs_json: Vec<String> = Vec::new();
    let mut timed_clean =
        |artifact: &ModelArtifact, label: &str, shards: usize, threads: usize, pruned: bool| {
            let model = artifact.compile();
            let mut best = f64::INFINITY;
            let mut repairs = Vec::new();
            for _ in 0..clean_iters {
                let start = std::time::Instant::now();
                let result = model.clean(&bench.dirty);
                best = best.min(start.elapsed().as_secs_f64());
                repairs = result.repairs;
            }
            let rows_per_sec = rows as f64 / best.max(1e-12);
            let cells_per_sec = cells as f64 / best.max(1e-12);
            table.add_row(vec![
                label.to_string(),
                shards.to_string(),
                threads.to_string(),
                if pruned { TOP_K.to_string() } else { "exact".to_string() },
                format!("{best:.4}s"),
                format!("{rows_per_sec:.0}"),
                format!("{cells_per_sec:.0}"),
                repairs.len().to_string(),
            ]);
            runs_json.push(format!(
                "    {{\"config\": \"{label}\", \"shards\": {shards}, \"threads\": {threads}, \
             \"pruned\": {pruned}, \"clean_seconds\": {best:.6}, \"rows_per_sec\": {rows_per_sec:.2}, \
             \"cells_per_sec\": {cells_per_sec:.2}, \"repairs\": {}}}",
                repairs.len(),
            ));
            (best, repairs)
        };

    // Exact grid: every point must merge to the serial baseline's repairs.
    let (exact_serial_seconds, baseline_repairs) = timed_clean(&artifact, "exact/s1t1", 1, 1, false);
    for (shards, threads) in [(2usize, 2usize), (4, 4), (8, 4)] {
        artifact.set_shards(shards);
        artifact.set_threads(threads);
        let (_, repairs) =
            timed_clean(&artifact, &format!("exact/s{shards}t{threads}"), shards, threads, false);
        assert_eq!(repairs, baseline_repairs, "sharded clean diverged at {shards} shards");
    }

    // Scale tier: candidate pruning, serial and sharded.
    artifact.set_shards(1);
    artifact.set_threads(1);
    artifact.set_candidate_top_k(TOP_K);
    let (pruned_serial_seconds, _) = timed_clean(&artifact, "pruned/s1t1", 1, 1, true);
    artifact.set_shards(4);
    artifact.set_threads(4);
    let (scale_tier_seconds, _) = timed_clean(&artifact, "pruned/s4t4", 4, 4, true);
    println!("{}", table.render());

    let speedups = vec![
        ("wide/pruned-top16".to_string(), 1usize, exact_serial_seconds / pruned_serial_seconds.max(1e-12)),
        ("wide/scale-tier-s4t4".to_string(), 4usize, exact_serial_seconds / scale_tier_seconds.max(1e-12)),
    ];
    let min_speedup = speedups.iter().map(|(_, _, s)| *s).fold(f64::INFINITY, f64::min);
    let json = format!(
        "{{\n  \"benchmark\": \"WideScale\",\n  \"scale\": \"{:?}\",\n  \"scale_factor\": \"{}\",\n  \
         \"rows\": {},\n  \"columns\": {},\n  \"cells\": {},\n  \"candidate_top_k\": {},\n  \
         \"clean_iters\": {},\n  \"fits\": [\n    \
         {{\"config\": \"exact/s1t1\", \"fit_seconds\": {:.6}}},\n    \
         {{\"config\": \"exact/s4t4\", \"fit_seconds\": {:.6}}}\n  ],\n  \"runs\": [\n{}\n  ],\n{}",
        scale,
        factor.name(),
        rows,
        cols,
        cells,
        TOP_K,
        clean_iters,
        fit_serial_seconds,
        fit_sharded_seconds,
        runs_json.join(",\n"),
        speedups_json(&speedups, &[], min_speedup, total_start.elapsed().as_secs_f64()),
    );
    match std::fs::write("BENCH_scale.json", &json) {
        Ok(()) => println!("wrote BENCH_scale.json (min speedup {min_speedup:.2}x)\n"),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }
}

/// §7.3.2 — impact of user network manipulation on Flights.
fn netedit(scale: Scale) {
    println!("## §7.3.2 — impact of user network manipulation (Flights)\n");
    let bench = build(BenchmarkDataset::Flights, scale);
    let constraints = bclean_constraints(BenchmarkDataset::Flights);
    // Automatically learned network.
    let auto_model = BClean::new(Variant::PartitionedInference.config())
        .with_constraints(constraints.clone())
        .fit(&bench.dirty);
    let auto_start = std::time::Instant::now();
    let auto_result = auto_model.clean(&bench.dirty);
    let auto_time = auto_start.elapsed();
    let auto_metrics = evaluate(&bench.dirty, &auto_result.cleaned, &bench.clean).expect("shapes match");

    // User adjustment: make `flight` the parent of the four time attributes.
    let mut edited_model =
        BClean::new(Variant::PartitionedInference.config()).with_constraints(constraints).fit(&bench.dirty);
    let schema = bench.dirty.schema();
    let flight = schema.index_of("flight").expect("flight attribute exists");
    let mut edits = Vec::new();
    for (from, to) in edited_model.network().dag().edges() {
        edits.push(NetworkEdit::RemoveEdge { from, to });
    }
    for time_attr in ["sched_dep_time", "act_dep_time", "sched_arr_time", "act_arr_time"] {
        let to = schema.index_of(time_attr).expect("time attribute exists");
        edits.push(NetworkEdit::AddEdge { from: flight, to });
    }
    edited_model.edit_network(&bench.dirty, edits).expect("edits are valid");
    let edit_start = std::time::Instant::now();
    let edited_result = edited_model.clean(&bench.dirty);
    let edit_time: Duration = edit_start.elapsed();
    let edited_metrics = evaluate(&bench.dirty, &edited_result.cleaned, &bench.clean).expect("shapes match");

    let mut table = TextTable::new(vec!["Network", "Precision", "Recall", "F1", "Exec"]);
    table.add_row(vec![
        "Automatic".to_string(),
        format!("{:.3}", auto_metrics.precision),
        format!("{:.3}", auto_metrics.recall),
        format!("{:.3}", auto_metrics.f1),
        format_duration(auto_time),
    ]);
    table.add_row(vec![
        "User-adjusted".to_string(),
        format!("{:.3}", edited_metrics.precision),
        format!("{:.3}", edited_metrics.recall),
        format!("{:.3}", edited_metrics.f1),
        format_duration(edit_time),
    ]);
    println!("{}", table.render());
}
