//! Diff two `BENCH_*.json` snapshots and (optionally) gate on regressions.
//!
//! ```text
//! cargo run -p bclean-bench --bin bench_diff -- <baseline.json> <candidate.json> \
//!     [--gate <frac>] [--floor <abs>] [--summary <path>]
//! ```
//!
//! Both files must carry measured records in one (or both) of two shapes:
//!
//! * a `speedups` array of `{variant, threads, speedup}` records (the
//!   `experiments` binary's `bench_clean` / `bench_fit` / `bench_stream` /
//!   `bench_scale`), matched on **`(variant, threads)`** — snapshots sweep
//!   multiple worker-thread counts, so a one-thread baseline never gates a
//!   four-thread candidate. The legacy single-thread
//!   `speedup_encoded_vs_reference` object (pre-sweep snapshots) is still
//!   accepted.
//! * a `latencies` array of `{endpoint, connections, reqs_per_sec, p50_ms,
//!   p99_ms}` records (`bench_serve`'s `BENCH_serve.json`), matched on
//!   **`(endpoint, connections)`**.
//!
//! The tool prints a markdown table of the records and their deltas; with
//! `--summary` the same table is appended to a file (CI passes
//! `$GITHUB_STEP_SUMMARY`).
//!
//! With `--gate <frac>` the run becomes the CI perf-regression gate. Every
//! matched speedup record's candidate must reach `max(floor, frac ×
//! baseline)`, where `baseline` is the committed snapshot's speedup (the
//! thresholds therefore live in the committed `BENCH_*.json`, not in CI
//! config) and `floor` (`--floor`, default 1.2) is the absolute backstop
//! under which the measured engine would be barely faster than its
//! baseline. Every matched latency record must keep `reqs_per_sec ≥ frac ×
//! baseline` and `p99_ms ≤ baseline / frac` — throughput floor and tail
//! ceiling, both relative to the committed snapshot since absolute
//! latencies are machine-dependent. Any record outside its threshold fails
//! the process with exit code 1.

use std::fmt::Write as _;
use std::process::ExitCode;

use bclean_bench::json::Json;

/// Default fraction of the committed speedup a fresh run must retain when
/// `--gate` is passed without a value. CI runners are noisy and the small
/// scale amplifies constant costs, so the gate fires on collapses (an
/// accidental `Value`-path fallback, a quadratic slip), not on jitter.
const DEFAULT_GATE_FRAC: f64 = 0.35;

/// Default absolute speedup backstop for gating.
const DEFAULT_FLOOR: f64 = 1.2;

/// Top-level snapshot keys the comparator understands (the union of what
/// `experiments` writes across `bench_clean` / `bench_fit` /
/// `bench_stream`, plus the legacy pre-sweep schema). Anything else is
/// reported as a warning — a misspelled `speedups` key would otherwise
/// fall back to the legacy path or an empty record set and let the gate
/// pass vacuously.
const KNOWN_TOP_LEVEL_KEYS: &[&str] = &[
    "benchmark",
    "benchmarks",
    "scale",
    "scale_factor",
    "rows",
    "columns",
    "cells",
    "candidate_top_k",
    "threads_swept",
    "clean_iters",
    "fit_iters",
    "chunks",
    "refit_every",
    "min_throughput_ratio",
    "fits",
    "runs",
    "speedups",
    "min_speedup",
    "total_wall_seconds",
    "speedup_encoded_vs_reference",
    "threads",
    "workers",
    "batch_rows",
    "duration_seconds_per_point",
    "latencies",
    // `bench_stream`'s out-of-core tier: informational (never gated) —
    // bounded-memory streamed clean vs the in-RAM one-shot, the peak-memory
    // proxy, the warm encoded-cache re-clean and the budgeted
    // accuracy-vs-speed record.
    "ooc",
];

/// Keys of one record inside the `speedups` array. `agreement` rides along
/// on budgeted-vs-exact fit records (`BENCH_fit.json`'s wide tier): the
/// repair agreement of the budgeted artifact against the exact one — the
/// accuracy half of a speedup whose fast path is approximate.
const KNOWN_RECORD_KEYS: &[&str] = &["variant", "threads", "speedup", "agreement"];

/// Keys of one record inside the `latencies` array (`BENCH_serve.json`).
const KNOWN_LATENCY_KEYS: &[&str] =
    &["endpoint", "connections", "requests", "reqs_per_sec", "p50_ms", "p99_ms"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut gate: Option<f64> = None;
    let mut floor = DEFAULT_FLOOR;
    let mut summary_path: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--gate" => {
                // FRAC is optional: only consume the lookahead when it
                // actually parses as a number, so `--gate a.json b.json`
                // keeps both file operands.
                gate = Some(match iter.peek().and_then(|v| v.parse::<f64>().ok()) {
                    Some(frac) => {
                        iter.next();
                        frac
                    }
                    None => DEFAULT_GATE_FRAC,
                });
            }
            "--floor" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) => floor = f,
                None => return usage("--floor expects a number"),
            },
            "--summary" => match iter.next() {
                Some(path) => summary_path = Some(path.clone()),
                None => return usage("--summary expects a path"),
            },
            "help" | "--help" | "-h" => {
                return usage("");
            }
            other => files.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        return usage("expected exactly two snapshot files");
    };

    let (baseline, baseline_warnings) = match load_snapshot(baseline_path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("{baseline_path}: {e}")),
    };
    let (candidate, candidate_warnings) = match load_snapshot(candidate_path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("{candidate_path}: {e}")),
    };

    let mut table = String::new();
    let _ = writeln!(table, "### bench_diff — `{baseline_path}` → `{candidate_path}`\n");
    // Unknown keys are warnings, not failures — but they land in the same
    // summary the gate table does, so a misspelled record key can never
    // produce a *silently* green gate.
    for (path, warnings) in [(baseline_path, &baseline_warnings), (candidate_path, &candidate_warnings)] {
        for warning in warnings {
            eprintln!("bench_diff: warning: {path}: {warning}");
            let _ = writeln!(table, "> ⚠️ `{path}`: {warning}\n");
        }
    }
    let mut failures = 0usize;
    failures += diff_speedups(&mut table, &baseline.speedups, &candidate.speedups, gate, floor);
    failures += diff_latencies(&mut table, &baseline.latencies, &candidate.latencies, gate);

    println!("{table}");
    if let Some(path) = summary_path {
        if let Err(e) = append_to(&path, &table) {
            eprintln!("could not append summary to {path}: {e}");
        }
    }

    match (gate, failures) {
        (None, _) => ExitCode::SUCCESS,
        (Some(_), 0) => {
            println!("perf gate: all records within thresholds");
            ExitCode::SUCCESS
        }
        (Some(_), n) => {
            eprintln!("perf gate: {n} record(s) regressed outside their thresholds");
            ExitCode::FAILURE
        }
    }
}

/// Render (and under `--gate` evaluate) the speedup-record diff. A
/// baseline record *missing* from the candidate fails the gate (a vanished
/// measurement could hide a collapse); a record only the *candidate* has —
/// a freshly added benchmark tier — passes with a `*new*` marker, so
/// growing a snapshot never breaks an older committed baseline.
fn diff_speedups(
    table: &mut String,
    baseline: &Speedups,
    candidate: &Speedups,
    gate: Option<f64>,
    floor: f64,
) -> usize {
    if baseline.is_empty() && candidate.is_empty() {
        return 0;
    }
    let header = if gate.is_some() {
        "| Variant | Threads | Baseline | Candidate | Delta | Threshold | Status |\n|---|---|---|---|---|---|---|"
    } else {
        "| Variant | Threads | Baseline | Candidate | Delta |\n|---|---|---|---|---|"
    };
    let _ = writeln!(table, "{header}");
    let mut failures = 0usize;
    for ((variant, threads), base) in baseline {
        let Some(cand) = candidate.iter().find(|((v, t), _)| v == variant && t == threads).map(|(_, s)| *s)
        else {
            let _ = writeln!(
                table,
                "| {variant} | {threads} | {base:.2}x | *missing* | — |{}",
                gate_cols(gate, None)
            );
            failures += 1;
            continue;
        };
        let delta_pct = (cand / base - 1.0) * 100.0;
        match gate {
            None => {
                let _ =
                    writeln!(table, "| {variant} | {threads} | {base:.2}x | {cand:.2}x | {delta_pct:+.1}% |");
            }
            Some(frac) => {
                let threshold = (frac * base).max(floor);
                let ok = cand >= threshold;
                if !ok {
                    failures += 1;
                }
                let _ = writeln!(
                    table,
                    "| {variant} | {threads} | {base:.2}x | {cand:.2}x | {delta_pct:+.1}% | ≥ {threshold:.2}x | {} |",
                    if ok { "✅ pass" } else { "❌ FAIL" }
                );
            }
        }
    }
    for (key, cand) in candidate {
        if !baseline.iter().any(|(k, _)| k == key) {
            let (variant, threads) = key;
            let _ = writeln!(
                table,
                "| {variant} | {threads} | *new* | {cand:.2}x | — |{}",
                gate_cols(gate, Some(true))
            );
        }
    }
    failures
}

/// Render (and under `--gate` evaluate) the latency-record diff. Gating is
/// fully relative: candidate req/s must stay above `frac × baseline` and
/// candidate p99 below `baseline / frac` — the `--floor` speedup backstop
/// does not apply, because absolute latencies depend on the runner.
fn diff_latencies(
    table: &mut String,
    baseline: &Latencies,
    candidate: &Latencies,
    gate: Option<f64>,
) -> usize {
    if baseline.is_empty() && candidate.is_empty() {
        return 0;
    }
    let header = if gate.is_some() {
        "| Endpoint | Conns | Base req/s | Cand req/s | Base p99 ms | Cand p99 ms | Thresholds | Status |\n|---|---|---|---|---|---|---|---|"
    } else {
        "| Endpoint | Conns | Base req/s | Cand req/s | Base p99 ms | Cand p99 ms |\n|---|---|---|---|---|---|"
    };
    let _ = writeln!(table, "\n{header}");
    let mut failures = 0usize;
    for ((endpoint, connections), base) in baseline {
        let Some(cand) =
            candidate.iter().find(|((e, c), _)| e == endpoint && c == connections).map(|(_, record)| record)
        else {
            let _ = writeln!(
                table,
                "| {endpoint} | {connections} | {:.1} | *missing* | {:.3} | *missing* |{}",
                base.reqs_per_sec,
                base.p99_ms,
                gate_cols(gate, None)
            );
            failures += 1;
            continue;
        };
        match gate {
            None => {
                let _ = writeln!(
                    table,
                    "| {endpoint} | {connections} | {:.1} | {:.1} | {:.3} | {:.3} |",
                    base.reqs_per_sec, cand.reqs_per_sec, base.p99_ms, cand.p99_ms
                );
            }
            Some(frac) => {
                let rps_threshold = frac * base.reqs_per_sec;
                let p99_threshold = base.p99_ms / frac;
                let ok = cand.reqs_per_sec >= rps_threshold && cand.p99_ms <= p99_threshold;
                if !ok {
                    failures += 1;
                }
                let _ = writeln!(
                    table,
                    "| {endpoint} | {connections} | {:.1} | {:.1} | {:.3} | {:.3} | req/s ≥ {rps_threshold:.1}, p99 ≤ {p99_threshold:.3} | {} |",
                    base.reqs_per_sec,
                    cand.reqs_per_sec,
                    base.p99_ms,
                    cand.p99_ms,
                    if ok { "✅ pass" } else { "❌ FAIL" }
                );
            }
        }
    }
    for (key, cand) in candidate {
        if !baseline.iter().any(|(k, _)| k == key) {
            let (endpoint, connections) = key;
            let _ = writeln!(
                table,
                "| {endpoint} | {connections} | *new* | {:.1} | *new* | {:.3} |{}",
                cand.reqs_per_sec,
                cand.p99_ms,
                gate_cols(gate, Some(true))
            );
        }
    }
    failures
}

/// The trailing gate columns for rows that never evaluate a threshold.
fn gate_cols(gate: Option<f64>, pass: Option<bool>) -> &'static str {
    match (gate, pass) {
        (None, _) => "",
        (Some(_), Some(true)) => " — | ✅ pass |",
        (Some(_), _) => " — | ❌ FAIL |",
    }
}

/// A snapshot's speedup records: `(variant, threads) → speedup`.
type Speedups = Vec<((String, u64), f64)>;

/// The gated fields of one latency record.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LatencyRecord {
    reqs_per_sec: f64,
    p99_ms: f64,
}

/// A snapshot's latency records: `(endpoint, connections) → record`.
type Latencies = Vec<((String, u64), LatencyRecord)>;

/// Everything bench_diff compares from one `BENCH_*.json`.
#[derive(Debug, Default)]
struct Snapshot {
    speedups: Speedups,
    latencies: Latencies,
}

/// Read the records of one snapshot, in file order: the `speedups` array
/// written by the compute benches, the `latencies` array written by
/// `bench_serve`, or the legacy single-thread
/// `speedup_encoded_vs_reference` object (whose records carry the
/// file-level `threads`, defaulting to 1). Unknown top-level and record
/// keys are returned as warnings for the summary.
fn load_snapshot(path: &str) -> Result<(Snapshot, Vec<String>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let json = Json::parse(&text)?;
    parse_snapshot(&json)
}

/// The parsing half of [`load_snapshot`], separated for testability.
fn parse_snapshot(json: &Json) -> Result<(Snapshot, Vec<String>), String> {
    let mut snapshot = Snapshot::default();
    let mut warnings = Vec::new();
    if let Some(members) = json.as_obj() {
        for (key, _) in members {
            if !KNOWN_TOP_LEVEL_KEYS.contains(&key.as_str()) {
                warnings.push(format!("unknown top-level snapshot key `{key}` (ignored)"));
            }
        }
    } else {
        return Err("snapshot is not a JSON object".to_string());
    }
    if let Some(records) = json.get("speedups").and_then(Json::as_arr) {
        for record in records {
            if let Some(members) = record.as_obj() {
                for (key, _) in members {
                    if !KNOWN_RECORD_KEYS.contains(&key.as_str()) {
                        warnings.push(format!("unknown speedup-record key `{key}` (ignored)"));
                    }
                }
            }
            let variant = record
                .get("variant")
                .and_then(Json::as_str)
                .ok_or_else(|| "speedup record without a `variant`".to_string())?;
            let threads = record.get("threads").and_then(Json::as_f64).unwrap_or(1.0) as u64;
            let speedup = record
                .get("speedup")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("speedup of `{variant}` is not a number"))?;
            snapshot.speedups.push(((variant.to_string(), threads), speedup));
        }
    } else if let Some(members) = json.get("speedup_encoded_vs_reference").and_then(Json::as_obj) {
        let threads = json.get("threads").and_then(Json::as_f64).unwrap_or(1.0) as u64;
        for (variant, value) in members {
            let speedup = value.as_f64().ok_or_else(|| format!("speedup of `{variant}` is not a number"))?;
            snapshot.speedups.push(((variant.clone(), threads), speedup));
        }
    }
    if let Some(records) = json.get("latencies").and_then(Json::as_arr) {
        for record in records {
            if let Some(members) = record.as_obj() {
                for (key, _) in members {
                    if !KNOWN_LATENCY_KEYS.contains(&key.as_str()) {
                        warnings.push(format!("unknown latency-record key `{key}` (ignored)"));
                    }
                }
            }
            let endpoint = record
                .get("endpoint")
                .and_then(Json::as_str)
                .ok_or_else(|| "latency record without an `endpoint`".to_string())?;
            let connections = record.get("connections").and_then(Json::as_f64).unwrap_or(1.0) as u64;
            let reqs_per_sec = record
                .get("reqs_per_sec")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("reqs_per_sec of `{endpoint}` is not a number"))?;
            let p99_ms = record
                .get("p99_ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("p99_ms of `{endpoint}` is not a number"))?;
            snapshot
                .latencies
                .push(((endpoint.to_string(), connections), LatencyRecord { reqs_per_sec, p99_ms }));
        }
    }
    if snapshot.speedups.is_empty() && snapshot.latencies.is_empty() {
        return Err("no records: need a `speedups` array, a `latencies` array, or the legacy \
             `speedup_encoded_vs_reference` object"
            .to_string());
    }
    Ok((snapshot, warnings))
}

fn append_to(path: &str, text: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{text}")
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("bench_diff: {error}\n");
    }
    println!(
        "bench_diff — compare two BENCH_*.json snapshots\n\n\
         USAGE: bench_diff <baseline.json> <candidate.json> [OPTIONS]\n\n\
         OPTIONS:\n\
         \x20 --gate [FRAC]     fail (exit 1) when a variant's candidate speedup drops\n\
         \x20                   below max(floor, FRAC x baseline)  (FRAC default {DEFAULT_GATE_FRAC})\n\
         \x20 --floor ABS       absolute speedup backstop for --gate (default {DEFAULT_FLOOR})\n\
         \x20 --summary PATH    append the markdown table to PATH (e.g. $GITHUB_STEP_SUMMARY)"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("bench_diff: {message}");
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_snapshots_parse_without_warnings() {
        for path in [
            "BENCH_clean.json",
            "BENCH_fit.json",
            "BENCH_stream.json",
            "BENCH_scale.json",
            "BENCH_serve.json",
        ] {
            // The committed snapshots live at the workspace root, two levels
            // above this crate.
            let full = format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&full).expect("committed snapshot exists");
            let (snapshot, warnings) = parse_snapshot(&Json::parse(&text).unwrap()).unwrap();
            assert!(!snapshot.speedups.is_empty() || !snapshot.latencies.is_empty(), "{path} has no records");
            assert!(warnings.is_empty(), "{path} triggered warnings: {warnings:?}");
        }
    }

    #[test]
    fn unknown_keys_are_warned_not_ignored() {
        let doc = r#"{
  "benchmark": "Hospital",
  "speedupz_typo": {"BClean": 2.0},
  "speedups": [
    {"variant": "BClean", "threads": 1, "speedup": 2.5, "speeedup": 9.9}
  ]
}"#;
        let (snapshot, warnings) = parse_snapshot(&Json::parse(doc).unwrap()).unwrap();
        assert_eq!(snapshot.speedups.len(), 1);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("speedupz_typo"));
        assert!(warnings[1].contains("speeedup"));
    }

    #[test]
    fn missing_records_are_still_hard_errors() {
        assert!(parse_snapshot(&Json::parse("{}").unwrap()).is_err());
        assert!(parse_snapshot(&Json::parse("{\"speedups\": []}").unwrap()).is_err());
        assert!(parse_snapshot(&Json::parse("[1]").unwrap()).is_err());
        // Legacy schema still parses.
        let legacy = r#"{"threads": 2, "speedup_encoded_vs_reference": {"BClean": 3.5}}"#;
        let (snapshot, warnings) = parse_snapshot(&Json::parse(legacy).unwrap()).unwrap();
        assert_eq!(snapshot.speedups, vec![(("BClean".to_string(), 2), 3.5)]);
        assert!(warnings.is_empty());
    }

    #[test]
    fn new_tiers_warn_or_pass_but_never_fail_the_gate() {
        // A candidate that grew records the baseline lacks (a new benchmark
        // tier) passes the gate with a `*new*` marker …
        let base: Speedups = vec![(("Hospital/BClean".to_string(), 1), 3.0)];
        let mut cand = base.clone();
        cand.push((("Hospital/ooc-warm".to_string(), 1), 1.1));
        let mut table = String::new();
        assert_eq!(diff_speedups(&mut table, &base, &cand, Some(0.35), 1.2), 0, "{table}");
        assert!(table.contains("*new*"), "{table}");
        // … while a baseline record *missing* from the candidate still fails.
        assert_eq!(diff_speedups(&mut table, &cand, &base, Some(0.35), 1.2), 1);

        // The `ooc` tier object is a known top-level key (no warning); a
        // tier this tool has never heard of warns but still parses — new
        // snapshot keys must never fail the diff.
        let doc = r#"{
  "benchmarks": ["Hospital"],
  "ooc": {"rows": 10000, "peak_bytes": 123, "memory_ratio": 0.25},
  "some_future_tier": {"anything": 1},
  "speedups": [{"variant": "Hospital/BClean", "threads": 1, "speedup": 3.0}]
}"#;
        let (snapshot, warnings) = parse_snapshot(&Json::parse(doc).unwrap()).unwrap();
        assert_eq!(snapshot.speedups.len(), 1);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("some_future_tier"));
    }

    #[test]
    fn latency_records_parse_and_gate() {
        let doc = r#"{
  "benchmark": "Hospital",
  "workers": 4,
  "latencies": [
    {"endpoint": "clean", "connections": 2, "requests": 900, "reqs_per_sec": 450.0,
     "p50_ms": 2.0, "p99_ms": 4.0, "p999_ms": 9.0}
  ]
}"#;
        let (snapshot, warnings) = parse_snapshot(&Json::parse(doc).unwrap()).unwrap();
        assert!(snapshot.speedups.is_empty());
        assert_eq!(
            snapshot.latencies,
            vec![(("clean".to_string(), 2), LatencyRecord { reqs_per_sec: 450.0, p99_ms: 4.0 })]
        );
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("p999_ms"));

        let base = snapshot.latencies;
        // Candidate holding ≥ frac × req/s and ≤ p99 / frac passes …
        let good = vec![(("clean".to_string(), 2), LatencyRecord { reqs_per_sec: 200.0, p99_ms: 8.0 })];
        let mut table = String::new();
        assert_eq!(diff_latencies(&mut table, &base, &good, Some(0.35)), 0, "{table}");
        // … a throughput collapse fails …
        let slow = vec![(("clean".to_string(), 2), LatencyRecord { reqs_per_sec: 100.0, p99_ms: 4.0 })];
        assert_eq!(diff_latencies(&mut table, &base, &slow, Some(0.35)), 1);
        // … a p99 blowup fails …
        let spiky = vec![(("clean".to_string(), 2), LatencyRecord { reqs_per_sec: 450.0, p99_ms: 50.0 })];
        assert_eq!(diff_latencies(&mut table, &base, &spiky, Some(0.35)), 1);
        // … and a missing record fails.
        assert_eq!(diff_latencies(&mut table, &base, &Vec::new(), Some(0.35)), 1);
        // Without --gate nothing fails; the table is informational.
        assert_eq!(diff_latencies(&mut table, &base, &slow, None), 0);
    }
}
