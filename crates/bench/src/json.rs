//! A minimal JSON reader for the committed `BENCH_*.json` snapshots.
//!
//! The workspace builds offline (no `serde_json`), and the only JSON this
//! crate consumes is the benchmark snapshots it writes itself — flat objects
//! of numbers, strings and one level of nesting. This recursive-descent
//! parser covers the full JSON grammar anyway (objects, arrays, strings
//! with escapes, numbers, booleans, null) so the comparator keeps working
//! as the snapshot schema grows. Object member order is preserved, which
//! keeps `bench_diff` tables in the writer's variant order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document. Returns a message with a byte offset on error;
    /// trailing non-whitespace input is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..=0xDBFF).contains(&code)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            // UTF-16 surrogate pair (RFC 8259 §7): combine
                            // the high half with the following \u escape.
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if (0xDC00..=0xDFFF).contains(&low) {
                                let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                                *pos += 6;
                            } else {
                                // Unpaired high surrogate followed by an
                                // ordinary escape: replace it, leave the
                                // next escape to the loop.
                                out.push('\u{fffd}');
                            }
                        } else {
                            // Lone surrogates are not scalar values; replace.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy a full UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8".to_string())?;
                let ch = rest.chars().next().expect("non-empty by construction");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Read the four hex digits of a `\u` escape starting at `start`.
fn parse_hex4(bytes: &[u8], start: usize) -> Result<u32, String> {
    let hex = bytes
        .get(start..start + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape `{hex}`"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_snapshot_shape() {
        let doc = r#"{
  "benchmark": "Hospital",
  "rows": 1000,
  "runs": [
    {"variant": "BClean", "engine": "encoded", "fit_seconds": 0.1234}
  ],
  "speedup_encoded_vs_reference": {
    "BClean-UC": 8.382,
    "BClean": 8.634
  },
  "min_speedup": 7.632
}"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.get("benchmark").and_then(Json::as_str), Some("Hospital"));
        assert_eq!(json.get("rows").and_then(Json::as_f64), Some(1000.0));
        let speedups = json.get("speedup_encoded_vs_reference").and_then(Json::as_obj).unwrap();
        assert_eq!(speedups.len(), 2);
        assert_eq!(speedups[0].0, "BClean-UC"); // member order preserved
        assert_eq!(speedups[0].1.as_f64(), Some(8.382));
        let runs = json.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs[0].get("engine").and_then(Json::as_str), Some("encoded"));
        assert_eq!(runs[0].get("fit_seconds").and_then(Json::as_f64), Some(0.1234));
    }

    #[test]
    fn parses_scalars_arrays_and_escapes() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("[1, 2, 3]").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::parse(r#""a\"b\\c\ndAé""#).unwrap(), Json::Str("a\"b\\c\ndAé".to_string()));
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // U+1F600 encoded per RFC 8259 as a UTF-16 surrogate pair, and as a
        // raw scalar.
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".to_string()));
        assert_eq!(Json::parse("\"a\\ud83d\\ude00b\"").unwrap(), Json::Str("a😀b".to_string()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
        // Lone or mispaired surrogates degrade to replacement characters
        // instead of corrupting neighbouring escapes.
        assert_eq!(Json::parse(r#""\ud83d""#).unwrap(), Json::Str("\u{fffd}".to_string()));
        assert_eq!(Json::parse(r#""\ud83d\n""#).unwrap(), Json::Str("\u{fffd}\n".to_string()));
        assert_eq!(Json::parse(r#""\ud83dA""#).unwrap(), Json::Str("\u{fffd}A".to_string()));
        assert!(Json::parse(r#""\ud83d\u00""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors_are_type_safe() {
        let json = Json::parse("{\"x\": 1}").unwrap();
        assert!(json.get("y").is_none());
        assert!(json.get("x").unwrap().as_str().is_none());
        assert!(json.as_f64().is_none());
        assert!(Json::Num(1.0).get("x").is_none());
    }
}
