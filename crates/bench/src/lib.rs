//! # bclean-bench
//!
//! The benchmark harness of the BClean reproduction. The `experiments`
//! binary regenerates every table and figure of the paper's evaluation
//! (§7) against the synthetic benchmarks; the Criterion benches under
//! `benches/` measure the performance-sensitive kernels (structure learning,
//! inference, compensatory-score construction, regex matching).
//!
//! Run `cargo run -p bclean-bench --release --bin experiments -- help` for
//! the list of reproducible experiments.

#![warn(missing_docs)]

pub mod json;

use bclean_datagen::BenchmarkDataset;

/// How large the generated benchmarks are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~10% of the paper's row counts; finishes in seconds. Default for CI.
    Small,
    /// The paper's row counts (Soccer scaled to 20 000 rows).
    Default,
    /// The paper's row counts including the full 200 000-row Soccer table.
    Full,
}

impl Scale {
    /// Parse a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Number of rows to generate for a dataset at this scale.
    pub fn rows(&self, dataset: BenchmarkDataset) -> usize {
        match self {
            Scale::Small => dataset.small_rows(),
            Scale::Default => dataset.default_rows(),
            Scale::Full => dataset.paper_rows(),
        }
    }
}

/// Deterministic seed shared by all experiments so every table is reproducible.
pub const EXPERIMENT_SEED: u64 = 20240612;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_rows() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
        assert!(
            Scale::Small.rows(BenchmarkDataset::Hospital) < Scale::Default.rows(BenchmarkDataset::Hospital)
        );
        assert_eq!(Scale::Full.rows(BenchmarkDataset::Soccer), 200_000);
        assert_eq!(Scale::Default.rows(BenchmarkDataset::Soccer), 20_000);
    }
}
