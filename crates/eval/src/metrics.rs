//! Cleaning-quality metrics (paper §7.1).
//!
//! * **Precision** — correctly repaired errors / all modified cells;
//! * **Recall** — correctly repaired errors / all ground-truth errors;
//! * **F1** — their harmonic mean.
//!
//! A repair is *correct* when the cleaned cell equals the ground truth and
//! the dirty cell did not.

use std::collections::BTreeSet;

use bclean_core::Repair;
use bclean_data::{DataResult, Dataset};
use serde::Serialize;

/// Precision / recall / F1 plus their raw counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Metrics {
    /// Fraction of modified cells that now hold the ground-truth value.
    pub precision: f64,
    /// Fraction of ground-truth errors that were correctly repaired.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of cells the system modified.
    pub modified: usize,
    /// Number of modifications that match the ground truth.
    pub correct: usize,
    /// Number of ground-truth errors (dirty ≠ truth).
    pub errors: usize,
}

impl Metrics {
    /// Compute metrics from raw counters.
    pub fn from_counts(correct: usize, modified: usize, errors: usize) -> Metrics {
        let precision = if modified == 0 { 0.0 } else { correct as f64 / modified as f64 };
        let recall = if errors == 0 { 0.0 } else { correct as f64 / errors as f64 };
        let f1 =
            if precision + recall == 0.0 { 0.0 } else { 2.0 * precision * recall / (precision + recall) };
        Metrics { precision, recall, f1, modified, correct, errors }
    }

    /// Render as the paper's `P / R / F1` triple.
    pub fn triple(&self) -> String {
        format!("{:.3}/{:.3}/{:.3}", self.precision, self.recall, self.f1)
    }
}

/// Evaluate a cleaning run against ground truth.
pub fn evaluate(dirty: &Dataset, cleaned: &Dataset, truth: &Dataset) -> DataResult<Metrics> {
    dirty.check_same_shape(cleaned)?;
    dirty.check_same_shape(truth)?;
    let mut modified = 0usize;
    let mut correct = 0usize;
    let mut errors = 0usize;
    for ((dirty_row, cleaned_row), truth_row) in dirty.rows().zip(cleaned.rows()).zip(truth.rows()) {
        for ((d, c), t) in dirty_row.iter().zip(cleaned_row.iter()).zip(truth_row.iter()) {
            let was_error = d != t;
            let was_modified = d != c;
            if was_error {
                errors += 1;
            }
            if was_modified {
                modified += 1;
                if c == t && was_error {
                    correct += 1;
                }
            }
        }
    }
    Ok(Metrics::from_counts(correct, modified, errors))
}

/// Agreement between two repair sets over the same dirty dataset — the
/// Jaccard similarity of their `(cell, repaired-to)` sets. Two identical
/// repair streams (including two empty ones) score 1.0; disjoint streams
/// score 0.0. This is the headline metric of budgeted-vs-exact fitting
/// (`FitBudget::Budgeted`): it penalises missed repairs, extra repairs and
/// different repair targets alike, without needing ground truth.
pub fn repair_agreement(a: &[Repair], b: &[Repair]) -> f64 {
    let key = |r: &Repair| (r.at.row, r.at.col, r.to.to_string());
    let a: BTreeSet<_> = a.iter().map(key).collect();
    let b: BTreeSet<_> = b.iter().map(key).collect();
    let union = a.union(&b).count();
    if union == 0 {
        return 1.0;
    }
    a.intersection(&b).count() as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::{dataset_from, CellRef, Value};

    #[test]
    fn perfect_cleaning() {
        let truth = dataset_from(&["a", "b"], &[vec!["1", "x"], vec!["2", "y"]]);
        let dirty = dataset_from(&["a", "b"], &[vec!["9", "x"], vec!["2", ""]]);
        let m = evaluate(&dirty, &truth, &truth).unwrap();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.errors, 2);
        assert_eq!(m.correct, 2);
        assert_eq!(m.modified, 2);
    }

    #[test]
    fn no_repairs_gives_zero_recall() {
        let truth = dataset_from(&["a"], &[vec!["1"], vec!["2"]]);
        let dirty = dataset_from(&["a"], &[vec!["9"], vec!["2"]]);
        let m = evaluate(&dirty, &dirty, &truth).unwrap();
        assert_eq!(m.modified, 0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn wrong_repairs_hurt_precision() {
        let truth = dataset_from(&["a"], &[vec!["1"], vec!["2"], vec!["3"], vec!["4"]]);
        let dirty = dataset_from(&["a"], &[vec!["9"], vec!["9"], vec!["3"], vec!["4"]]);
        // Fix one error correctly, one incorrectly, and break a clean cell.
        let cleaned = dataset_from(&["a"], &[vec!["1"], vec!["7"], vec!["8"], vec!["4"]]);
        let m = evaluate(&dirty, &cleaned, &truth).unwrap();
        assert_eq!(m.modified, 3);
        assert_eq!(m.correct, 1);
        assert_eq!(m.errors, 2);
        assert!((m.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!(m.f1 > 0.0 && m.f1 < 0.5);
    }

    #[test]
    fn reverting_a_clean_cell_to_truth_is_not_a_correct_repair() {
        // "Repairing" a cell that was already correct should not raise recall,
        // and modifying it to something wrong should lower precision.
        let truth = dataset_from(&["a"], &[vec!["1"], vec!["2"]]);
        let dirty = dataset_from(&["a"], &[vec!["1"], vec!["9"]]);
        let cleaned = dataset_from(&["a"], &[vec!["1"], vec!["2"]]);
        let m = evaluate(&dirty, &cleaned, &truth).unwrap();
        assert_eq!(m.correct, 1);
        assert_eq!(m.modified, 1);
    }

    #[test]
    fn repair_agreement_is_jaccard_over_cell_and_target() {
        let repair = |row: usize, col: usize, to: &str| Repair {
            at: CellRef::new(row, col),
            attribute: "a".to_string(),
            from: Value::Null,
            to: Value::from(to),
            score_gain: 1.0,
        };
        let exact = vec![repair(0, 0, "x"), repair(1, 1, "y"), repair(2, 0, "z")];
        assert_eq!(repair_agreement(&exact, &exact), 1.0);
        assert_eq!(repair_agreement(&[], &[]), 1.0);
        assert_eq!(repair_agreement(&exact, &[]), 0.0);
        // Same cell, different target counts on both sides of the union.
        let budgeted = vec![repair(0, 0, "x"), repair(1, 1, "w")];
        assert!((repair_agreement(&exact, &budgeted) - 0.25).abs() < 1e-12);
        // Score gains and attribute names are not part of the key.
        let mut renamed = exact.clone();
        renamed[0].score_gain = 9.0;
        assert_eq!(repair_agreement(&exact, &renamed), 1.0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = dataset_from(&["a"], &[vec!["1"]]);
        let b = dataset_from(&["a"], &[vec!["1"], vec!["2"]]);
        assert!(evaluate(&a, &a, &b).is_err());
        assert!(evaluate(&a, &b, &a).is_err());
    }

    #[test]
    fn triple_formatting_and_zero_division() {
        let m = Metrics::from_counts(0, 0, 0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.triple(), "0.000/0.000/0.000");
        let m = Metrics::from_counts(9, 10, 12);
        assert_eq!(m.triple(), "0.900/0.750/0.818");
    }
}
