//! The experiment harness: run any evaluated method on any benchmark.

use std::time::{Duration, Instant};

use bclean_baselines::{Cleaner, GarfLite, HoloCleanLite, PCleanLite, RahaBaranLite};
use bclean_core::{BClean, BCleanConfig, ConstraintSet, ParallelExecutor, Variant};
use bclean_data::Dataset;
use bclean_datagen::{BenchmarkDataset, DirtyDataset};

use crate::inputs;
use crate::metrics::{evaluate, Metrics};

/// A method evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// One of the four BClean variants.
    BClean(Variant),
    /// PClean-lite with the per-dataset hand-written model.
    PClean,
    /// HoloClean-lite with the per-dataset denial constraints.
    HoloClean,
    /// Raha+Baran-lite with 20+20 labelled tuples.
    RahaBaran,
    /// Garf-lite (no user input).
    Garf,
}

impl Method {
    /// The methods of Table 4, in the paper's row order.
    pub fn table4_methods() -> Vec<Method> {
        vec![
            Method::BClean(Variant::NoUserConstraints),
            Method::BClean(Variant::Basic),
            Method::BClean(Variant::PartitionedInference),
            Method::BClean(Variant::PartitionedInferencePruning),
            Method::PClean,
            Method::HoloClean,
            Method::RahaBaran,
            Method::Garf,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Method::BClean(v) => v.name().to_string(),
            Method::PClean => "PClean".to_string(),
            Method::HoloClean => "HoloClean".to_string(),
            Method::RahaBaran => "Raha+Baran".to_string(),
            Method::Garf => "Garf".to_string(),
        }
    }
}

/// The outcome of running one method on one benchmark.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Method display name.
    pub method: String,
    /// Cleaning-quality metrics against ground truth.
    pub metrics: Metrics,
    /// Wall-clock execution time (model fitting + cleaning).
    pub exec_time: Duration,
    /// The cleaned dataset (kept for error-type breakdowns).
    pub cleaned: Dataset,
}

/// Run one method on a benchmark, using the per-dataset expert inputs from
/// [`crate::inputs`].
pub fn run_method(method: Method, dataset: BenchmarkDataset, bench: &DirtyDataset) -> MethodRun {
    let start = Instant::now();
    let cleaned = match method {
        Method::BClean(variant) => {
            let constraints = inputs::bclean_constraints(dataset);
            run_bclean(variant.config(), constraints, bench)
        }
        Method::PClean => PCleanLite::new(inputs::pclean_model(dataset)).clean(&bench.dirty),
        Method::HoloClean => HoloCleanLite::new(inputs::holoclean_constraints(dataset)).clean(&bench.dirty),
        Method::RahaBaran => {
            // 20 tuples labelled for detection + 20 for correction (paper setup).
            let labels = inputs::raha_labels(bench, 40);
            RahaBaranLite::new(labels).clean(&bench.dirty)
        }
        Method::Garf => GarfLite::new().clean(&bench.dirty),
    };
    let exec_time = start.elapsed();
    let metrics = evaluate(&bench.dirty, &cleaned, &bench.clean).expect("benchmark datasets share shape");
    MethodRun { method: method.name(), metrics, exec_time, cleaned }
}

/// Run a slate of methods on one benchmark, one method per work unit, through
/// the workspace's shared [`ParallelExecutor`]. Results come back in the
/// order of `methods` regardless of scheduling, so callers can zip them.
///
/// Each method run is itself deterministic, so the output is identical to
/// calling [`run_method`] in a loop; only wall-clock changes. Because
/// concurrent runs contend for cores, per-run `exec_time` is only meaningful
/// with `threads == 1` — use that for timing tables, and more threads for
/// quality sweeps.
pub fn run_methods(
    methods: &[Method],
    dataset: BenchmarkDataset,
    bench: &DirtyDataset,
    threads: usize,
) -> Vec<MethodRun> {
    ParallelExecutor::new(threads).map(methods.len(), |i| run_method(methods[i], dataset, bench))
}

/// Run BClean with an explicit configuration and constraint set (used by the
/// parameter sweeps of Tables 8–10 and the UC ablation of Figure 5).
pub fn run_bclean(config: BCleanConfig, constraints: ConstraintSet, bench: &DirtyDataset) -> Dataset {
    let model = BClean::new(config).with_constraints(constraints).fit(&bench.dirty);
    model.clean(&bench.dirty).cleaned
}

/// Convenience: run BClean with a config/constraints pair and evaluate it.
pub fn run_bclean_evaluated(
    config: BCleanConfig,
    constraints: ConstraintSet,
    bench: &DirtyDataset,
) -> (Metrics, Duration) {
    let start = Instant::now();
    let cleaned = run_bclean(config, constraints, bench);
    let elapsed = start.elapsed();
    (evaluate(&bench.dirty, &cleaned, &bench.clean).expect("benchmark datasets share shape"), elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_baselines::NoOpCleaner;

    fn small_hospital() -> DirtyDataset {
        BenchmarkDataset::Hospital.build_sized(240, 17)
    }

    #[test]
    fn table4_method_list_matches_paper() {
        let methods = Method::table4_methods();
        assert_eq!(methods.len(), 8);
        assert_eq!(methods[0].name(), "BClean-UC");
        assert_eq!(methods[4].name(), "PClean");
        assert_eq!(methods[7].name(), "Garf");
    }

    #[test]
    fn bclean_pi_beats_noop_and_reaches_reasonable_f1() {
        let bench = small_hospital();
        let run =
            run_method(Method::BClean(Variant::PartitionedInference), BenchmarkDataset::Hospital, &bench);
        let noop = evaluate(&bench.dirty, &NoOpCleaner.clean(&bench.dirty), &bench.clean).unwrap();
        assert!(run.metrics.f1 > noop.f1);
        assert!(run.metrics.f1 > 0.5, "BCleanPI F1 too low: {:?}", run.metrics);
        assert!(run.metrics.precision > 0.5);
        assert!(run.exec_time.as_nanos() > 0);
    }

    #[test]
    fn every_method_runs_on_a_small_benchmark() {
        let bench = BenchmarkDataset::Beers.build_sized(150, 23);
        for method in Method::table4_methods() {
            let run = run_method(method, BenchmarkDataset::Beers, &bench);
            assert!(run.metrics.precision >= 0.0 && run.metrics.precision <= 1.0);
            assert!(run.metrics.recall >= 0.0 && run.metrics.recall <= 1.0);
            assert_eq!(run.cleaned.num_rows(), bench.dirty.num_rows());
        }
    }

    #[test]
    fn run_methods_matches_sequential_runs() {
        let bench = BenchmarkDataset::Beers.build_sized(120, 11);
        let methods = [Method::BClean(Variant::PartitionedInference), Method::HoloClean, Method::Garf];
        let parallel = run_methods(&methods, BenchmarkDataset::Beers, &bench, 3);
        assert_eq!(parallel.len(), methods.len());
        for (method, run) in methods.iter().zip(&parallel) {
            let sequential = run_method(*method, BenchmarkDataset::Beers, &bench);
            assert_eq!(run.method, sequential.method);
            assert_eq!(run.metrics.f1, sequential.metrics.f1);
            assert_eq!(run.cleaned, sequential.cleaned);
        }
    }

    #[test]
    fn holoclean_is_high_precision_on_hospital() {
        let bench = small_hospital();
        let run = run_method(Method::HoloClean, BenchmarkDataset::Hospital, &bench);
        assert!(run.metrics.precision > 0.6, "{:?}", run.metrics);
    }

    #[test]
    fn parameter_sweep_entry_point_works() {
        let bench = BenchmarkDataset::Hospital.build_sized(150, 29);
        let constraints = inputs::bclean_constraints(BenchmarkDataset::Hospital);
        let (metrics, _) = run_bclean_evaluated(Variant::PartitionedInference.config(), constraints, &bench);
        assert!(metrics.f1 > 0.3, "{metrics:?}");
    }
}
