//! # bclean-eval
//!
//! The evaluation harness of the BClean reproduction: cleaning-quality
//! metrics (precision / recall / F1), per-error-type recall, the per-dataset
//! expert inputs each system receives (user constraints, denial constraints,
//! PClean models, Raha labels), a uniform method runner and plain-text table
//! rendering used by the `experiments` binary in `bclean-bench`.
//!
//! ```
//! use bclean_core::Variant;
//! use bclean_datagen::BenchmarkDataset;
//! use bclean_eval::{run_method, Method};
//!
//! let bench = BenchmarkDataset::Hospital.build_sized(150, 1);
//! let run = run_method(Method::BClean(Variant::PartitionedInference), BenchmarkDataset::Hospital, &bench);
//! assert!(run.metrics.f1 > 0.0);
//! ```

#![warn(missing_docs)]

pub mod error_types;
pub mod harness;
pub mod inputs;
pub mod metrics;
pub mod report;

pub use error_types::ErrorTypeRecall;
pub use harness::{run_bclean, run_bclean_evaluated, run_method, run_methods, Method, MethodRun};
pub use inputs::{bclean_constraints, holoclean_constraints, pclean_model, raha_labels};
pub use metrics::{evaluate, repair_agreement, Metrics};
pub use report::{format_duration, TextTable};
