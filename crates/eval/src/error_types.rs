//! Per-error-type recall (paper Table 6 and Figure 4(e)–(f)).

use std::collections::HashMap;

use bclean_data::Dataset;
use bclean_datagen::{DirtyDataset, ErrorType};

/// Recall broken down by injected error type.
#[derive(Debug, Clone, Default)]
pub struct ErrorTypeRecall {
    per_type: HashMap<ErrorType, (usize, usize)>,
}

impl ErrorTypeRecall {
    /// Compute per-type recall of a cleaning run over an error-injected
    /// benchmark: for each injected error, did the cleaned cell recover the
    /// ground-truth value?
    pub fn compute(bench: &DirtyDataset, cleaned: &Dataset) -> ErrorTypeRecall {
        let mut per_type: HashMap<ErrorType, (usize, usize)> = HashMap::new();
        for error in &bench.errors {
            let entry = per_type.entry(error.error_type).or_insert((0, 0));
            entry.1 += 1;
            let repaired = cleaned.cell_at(error.at).map(|v| v == &error.original).unwrap_or(false);
            if repaired {
                entry.0 += 1;
            }
        }
        ErrorTypeRecall { per_type }
    }

    /// Recall for one error type (`None` when no error of that type was injected).
    pub fn recall(&self, error_type: ErrorType) -> Option<f64> {
        self.per_type.get(&error_type).map(
            |(fixed, total)| {
                if *total == 0 {
                    0.0
                } else {
                    *fixed as f64 / *total as f64
                }
            },
        )
    }

    /// Number of injected errors of one type.
    pub fn total(&self, error_type: ErrorType) -> usize {
        self.per_type.get(&error_type).map(|(_, t)| *t).unwrap_or(0)
    }

    /// All `(type, recall)` pairs, sorted by error-type code for stable output.
    pub fn all(&self) -> Vec<(ErrorType, f64)> {
        let mut out: Vec<(ErrorType, f64)> = self
            .per_type
            .iter()
            .map(|(t, (fixed, total))| (*t, if *total == 0 { 0.0 } else { *fixed as f64 / *total as f64 }))
            .collect();
        out.sort_by_key(|(t, _)| t.code());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::dataset_from;
    use bclean_datagen::{inject_errors, ErrorSpec};

    fn bench() -> DirtyDataset {
        let rows: Vec<Vec<String>> =
            (0..40).map(|i| vec![format!("v{}", i % 4), format!("w{}", i % 4)]).collect();
        let refs: Vec<Vec<&str>> = rows.iter().map(|r| r.iter().map(|s| s.as_str()).collect()).collect();
        let clean = dataset_from(&["a", "b"], &refs);
        inject_errors(&clean, &ErrorSpec::default_mix(0.2), 3)
    }

    #[test]
    fn perfect_cleaning_has_recall_one_everywhere() {
        let b = bench();
        let r = ErrorTypeRecall::compute(&b, &b.clean);
        for (_, recall) in r.all() {
            assert!((recall - 1.0).abs() < 1e-12);
        }
        assert!(!r.all().is_empty());
    }

    #[test]
    fn no_cleaning_has_recall_zero() {
        let b = bench();
        let r = ErrorTypeRecall::compute(&b, &b.dirty);
        for (_, recall) in r.all() {
            assert_eq!(recall, 0.0);
        }
    }

    #[test]
    fn partial_cleaning_counts_per_type() {
        let b = bench();
        // Repair only the missing-value errors.
        let mut cleaned = b.dirty.clone();
        for e in &b.errors {
            if e.error_type == ErrorType::Missing {
                cleaned.set_cell(e.at.row, e.at.col, e.original.clone()).unwrap();
            }
        }
        let r = ErrorTypeRecall::compute(&b, &cleaned);
        assert_eq!(r.recall(ErrorType::Missing), Some(1.0));
        if r.total(ErrorType::Typo) > 0 {
            assert_eq!(r.recall(ErrorType::Typo), Some(0.0));
        }
        assert_eq!(r.recall(ErrorType::Swap), None);
        assert_eq!(r.total(ErrorType::Swap), 0);
    }
}
