//! Per-dataset expert inputs for every evaluated system.
//!
//! The paper's experiments give each system the prior knowledge it was
//! designed for (Table 2, "Prior Knowledge"): BClean gets lightweight user
//! constraints (Table 3), HoloClean gets denial constraints authored by an
//! expert, PClean gets a hand-written generative model, and Raha+Baran gets
//! ~20 labelled tuples. This module encodes those inputs for the six
//! synthetic benchmarks so the harness can assemble any method on any
//! dataset.

use bclean_baselines::{AttributeModel, FunctionalDependency, LabelledCell, PCleanModel};
use bclean_core::{ConstraintSet, UserConstraint};
use bclean_data::CellRef;
use bclean_datagen::{BenchmarkDataset, DirtyDataset};

/// The BClean user constraints of Table 3 for one benchmark.
pub fn bclean_constraints(dataset: BenchmarkDataset) -> ConstraintSet {
    let mut ucs = ConstraintSet::new();
    match dataset {
        BenchmarkDataset::Hospital => {
            ucs.add(
                "ZipCode",
                UserConstraint::pattern("^([1-9][0-9]{4,4}|0[1-9][0-9]{3,3})$").expect("valid pattern"),
            );
            ucs.add("ProviderNumber", UserConstraint::pattern("^([1-9][0-9]{4,4})$").expect("valid pattern"));
            ucs.add("PhoneNumber", UserConstraint::pattern("^([1-9][0-9]{9,9})$").expect("valid pattern"));
            ucs.add("State", UserConstraint::MaxLength(2));
            ucs.add("State", UserConstraint::MinLength(2));
            for attr in [
                "HospitalName",
                "City",
                "CountyName",
                "Condition",
                "MeasureCode",
                "MeasureName",
                "Address",
                "StateAvg",
            ] {
                ucs.add(attr, UserConstraint::NotNull);
                ucs.add(attr, UserConstraint::MinLength(2));
                ucs.add(attr, UserConstraint::MaxLength(64));
            }
        }
        BenchmarkDataset::Flights => {
            let time = UserConstraint::pattern(
                r"([1-9]:[0-5][0-9][ap]\.m\.|1[0-2]:[0-5][0-9][ap]\.m\.|0[1-9]:[0-5][0-9][ap]\.m\.)",
            )
            .expect("valid pattern");
            for attr in ["sched_dep_time", "act_dep_time", "sched_arr_time", "act_arr_time"] {
                ucs.add(attr, time.clone());
                ucs.add(attr, UserConstraint::NotNull);
            }
            ucs.add("src", UserConstraint::NotNull);
            ucs.add("flight", UserConstraint::NotNull);
            ucs.add("flight", UserConstraint::MinLength(5));
        }
        BenchmarkDataset::Soccer => {
            ucs.add("birthyear", UserConstraint::pattern("([1][9][6-9][0-9])").expect("valid pattern"));
            ucs.add("season", UserConstraint::pattern("([2][0][0-9][0-9])").expect("valid pattern"));
            for attr in ["name", "birthplace", "country", "club", "league", "position"] {
                ucs.add(attr, UserConstraint::NotNull);
                ucs.add(attr, UserConstraint::MinLength(2));
                ucs.add(attr, UserConstraint::MaxLength(40));
            }
        }
        BenchmarkDataset::Beers => {
            let number = UserConstraint::pattern(r"\d+\.\d+|(\d+)").expect("valid pattern");
            ucs.add("ounces", number.clone());
            ucs.add("abv", number);
            for attr in ["beer_name", "style", "brewery_name", "city", "state"] {
                ucs.add(attr, UserConstraint::NotNull);
                ucs.add(attr, UserConstraint::MinLength(2));
                ucs.add(attr, UserConstraint::MaxLength(64));
            }
            ucs.add("state", UserConstraint::MaxLength(2));
        }
        BenchmarkDataset::Inpatient => {
            // Table 3 lists no patterns for Inpatient; length/not-null UCs only.
            for attr in [
                "ProviderId",
                "ProviderName",
                "City",
                "State",
                "ZipCode",
                "County",
                "DRGCode",
                "DRGDefinition",
            ] {
                ucs.add(attr, UserConstraint::NotNull);
            }
            ucs.add("State", UserConstraint::MaxLength(2));
            ucs.add("ZipCode", UserConstraint::MinLength(5));
            ucs.add("ZipCode", UserConstraint::MaxLength(5));
        }
        BenchmarkDataset::Facilities => {
            for attr in [
                "FacilityId",
                "FacilityName",
                "City",
                "State",
                "ZipCode",
                "County",
                "Phone",
                "Type",
                "Ownership",
            ] {
                ucs.add(attr, UserConstraint::NotNull);
            }
            ucs.add("State", UserConstraint::MaxLength(2));
            ucs.add("ZipCode", UserConstraint::MinLength(5));
            ucs.add("ZipCode", UserConstraint::MaxLength(5));
        }
    }
    ucs
}

/// The denial constraints (as FDs) an expert would hand to HoloClean.
pub fn holoclean_constraints(dataset: BenchmarkDataset) -> Vec<FunctionalDependency> {
    match dataset {
        BenchmarkDataset::Hospital => vec![
            FunctionalDependency::new(vec!["ProviderNumber"], "HospitalName"),
            FunctionalDependency::new(vec!["ProviderNumber"], "Address"),
            FunctionalDependency::new(vec!["ProviderNumber"], "City"),
            FunctionalDependency::new(vec!["ProviderNumber"], "State"),
            FunctionalDependency::new(vec!["ProviderNumber"], "ZipCode"),
            FunctionalDependency::new(vec!["ProviderNumber"], "CountyName"),
            FunctionalDependency::new(vec!["ProviderNumber"], "PhoneNumber"),
            FunctionalDependency::new(vec!["ZipCode"], "State"),
            FunctionalDependency::new(vec!["ZipCode"], "City"),
            FunctionalDependency::new(vec!["MeasureCode"], "MeasureName"),
            FunctionalDependency::new(vec!["MeasureCode"], "Condition"),
            FunctionalDependency::new(vec!["City"], "CountyName"),
            FunctionalDependency::new(vec!["State", "MeasureCode"], "StateAvg"),
        ],
        BenchmarkDataset::Flights => vec![
            FunctionalDependency::new(vec!["flight"], "sched_dep_time"),
            FunctionalDependency::new(vec!["flight"], "act_dep_time"),
            FunctionalDependency::new(vec!["flight"], "sched_arr_time"),
            FunctionalDependency::new(vec!["flight"], "act_arr_time"),
        ],
        BenchmarkDataset::Soccer => vec![
            FunctionalDependency::new(vec!["club"], "league"),
            FunctionalDependency::new(vec!["birthplace"], "country"),
            FunctionalDependency::new(vec!["name"], "birthyear"),
            FunctionalDependency::new(vec!["name"], "birthplace"),
        ],
        BenchmarkDataset::Beers => vec![
            FunctionalDependency::new(vec!["brewery_id"], "brewery_name"),
            FunctionalDependency::new(vec!["brewery_id"], "city"),
            FunctionalDependency::new(vec!["brewery_id"], "state"),
            FunctionalDependency::new(vec!["city"], "state"),
            FunctionalDependency::new(vec!["id"], "beer_name"),
            FunctionalDependency::new(vec!["id"], "style"),
        ],
        BenchmarkDataset::Inpatient => vec![
            FunctionalDependency::new(vec!["ProviderId"], "ProviderName"),
            FunctionalDependency::new(vec!["ProviderId"], "ZipCode"),
            FunctionalDependency::new(vec!["DRGCode"], "DRGDefinition"),
        ],
        BenchmarkDataset::Facilities => vec![
            FunctionalDependency::new(vec!["FacilityId"], "FacilityName"),
            FunctionalDependency::new(vec!["FacilityId"], "Address"),
            FunctionalDependency::new(vec!["FacilityId"], "City"),
            FunctionalDependency::new(vec!["FacilityId"], "State"),
            FunctionalDependency::new(vec!["FacilityId"], "ZipCode"),
            FunctionalDependency::new(vec!["FacilityId"], "Phone"),
            FunctionalDependency::new(vec!["City"], "State"),
            FunctionalDependency::new(vec!["ZipCode"], "City"),
        ],
    }
}

/// The hand-written PClean-lite model for one benchmark. The Flights and
/// Hospital models are carefully specified (that is where PClean shines in
/// Table 4); the Soccer model is deliberately coarse, reflecting the paper's
/// observation that experts could not describe that domain well.
pub fn pclean_model(dataset: BenchmarkDataset) -> PCleanModel {
    match dataset {
        BenchmarkDataset::Hospital => PCleanModel::new()
            .with(AttributeModel::independent("ProviderNumber"))
            .with(AttributeModel::dependent("HospitalName", vec!["ProviderNumber"]))
            .with(AttributeModel::dependent("Address", vec!["ProviderNumber"]))
            .with(AttributeModel::dependent("City", vec!["ProviderNumber"]))
            .with(AttributeModel::dependent("State", vec!["ProviderNumber"]))
            .with(AttributeModel::dependent("ZipCode", vec!["ProviderNumber"]))
            .with(AttributeModel::dependent("CountyName", vec!["ProviderNumber"]))
            .with(AttributeModel::dependent("PhoneNumber", vec!["ProviderNumber"]))
            .with(AttributeModel::dependent("MeasureName", vec!["MeasureCode"]))
            .with(AttributeModel::dependent("Condition", vec!["MeasureCode"]))
            .with(AttributeModel::dependent("StateAvg", vec!["State", "MeasureCode"]))
            .with(AttributeModel::independent("HospitalType"))
            .with(AttributeModel::independent("EmergencyService")),
        BenchmarkDataset::Flights => PCleanModel::new()
            .with(AttributeModel::independent("flight"))
            .with(AttributeModel::dependent("sched_dep_time", vec!["flight"]))
            .with(AttributeModel::dependent("act_dep_time", vec!["flight"]))
            .with(AttributeModel::dependent("sched_arr_time", vec!["flight"]))
            .with(AttributeModel::dependent("act_arr_time", vec!["flight"])),
        BenchmarkDataset::Soccer => {
            // The "expert" cannot articulate the player-level dependencies and
            // falls back to marginal priors for the noisy text columns, which
            // over-corrects rare-but-correct values.
            PCleanModel::new()
                .with(AttributeModel::independent("name"))
                .with(AttributeModel::independent("birthyear"))
                .with(AttributeModel::independent("birthplace"))
                .with(AttributeModel::independent("country"))
                .with(AttributeModel::independent("club"))
                .with(AttributeModel::independent("league"))
        }
        BenchmarkDataset::Beers => PCleanModel::new()
            .with(AttributeModel::independent("brewery_id"))
            .with(AttributeModel::dependent("brewery_name", vec!["brewery_id"]))
            .with(AttributeModel::dependent("city", vec!["brewery_id"]))
            .with(AttributeModel::dependent("state", vec!["brewery_id"]))
            .with(AttributeModel::independent("style"))
            .with(AttributeModel::independent("ounces"))
            .with(AttributeModel::independent("abv")),
        BenchmarkDataset::Inpatient => PCleanModel::new()
            .with(AttributeModel::independent("ProviderId"))
            .with(AttributeModel::dependent("ProviderName", vec!["ProviderId"]))
            .with(AttributeModel::dependent("City", vec!["ProviderId"]))
            .with(AttributeModel::dependent("State", vec!["ProviderId"]))
            .with(AttributeModel::dependent("ZipCode", vec!["ProviderId"]))
            .with(AttributeModel::dependent("DRGDefinition", vec!["DRGCode"])),
        BenchmarkDataset::Facilities => PCleanModel::new()
            .with(AttributeModel::independent("FacilityId"))
            .with(AttributeModel::dependent("FacilityName", vec!["FacilityId"]))
            .with(AttributeModel::dependent("City", vec!["FacilityId"]))
            .with(AttributeModel::dependent("State", vec!["FacilityId"]))
            .with(AttributeModel::dependent("ZipCode", vec!["FacilityId"])),
    }
}

/// Labels for Raha+Baran: the ground-truth error flags of the cells of the
/// first `num_tuples` tuples (the stand-in for the user labelling 20 tuples
/// for detection plus 20 for correction).
pub fn raha_labels(bench: &DirtyDataset, num_tuples: usize) -> Vec<LabelledCell> {
    let rows = bench.dirty.num_rows().min(num_tuples);
    let mut labels = Vec::new();
    for r in 0..rows {
        for c in 0..bench.dirty.num_columns() {
            let dirty_cell = bench.dirty.cell(r, c).expect("cell in range");
            let clean_cell = bench.clean.cell(r, c).expect("cell in range");
            labels.push(LabelledCell { at: CellRef::new(r, c), is_error: dirty_cell != clean_cell });
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use bclean_data::Value;

    #[test]
    fn every_dataset_has_constraints_and_inputs() {
        for ds in BenchmarkDataset::all() {
            let ucs = bclean_constraints(ds);
            assert!(!ucs.is_empty(), "{} has no UCs", ds.name());
            assert!(!holoclean_constraints(ds).is_empty());
            assert!(!pclean_model(ds).is_empty());
        }
    }

    #[test]
    fn constraints_accept_clean_data() {
        // Clean generated data should overwhelmingly satisfy its own UCs.
        for ds in BenchmarkDataset::all() {
            let clean = ds.generate_clean(120, 5);
            let ucs = bclean_constraints(ds);
            let rate = ucs.satisfaction_rate(&clean);
            assert!(rate > 0.97, "{}: clean satisfaction rate {rate}", ds.name());
        }
    }

    #[test]
    fn constraints_reject_obvious_garbage() {
        let ucs = bclean_constraints(BenchmarkDataset::Hospital);
        assert!(!ucs.check("ZipCode", &Value::text("3x150")));
        assert!(!ucs.check("State", &Value::text("California")));
        assert!(ucs.check("State", &Value::text("AL")));
        let flights = bclean_constraints(BenchmarkDataset::Flights);
        assert!(!flights.check("sched_dep_time", &Value::text("7:21am")));
        assert!(flights.check("sched_dep_time", &Value::text("7:21a.m.")));
    }

    #[test]
    fn holoclean_constraints_resolve_against_generated_schemas() {
        for ds in BenchmarkDataset::all() {
            let clean = ds.generate_clean(30, 1);
            for fd in holoclean_constraints(ds) {
                assert!(fd.resolve(&clean).is_some(), "{}: constraint {:?} does not resolve", ds.name(), fd);
            }
        }
    }

    #[test]
    fn raha_labels_match_ground_truth() {
        let bench = BenchmarkDataset::Hospital.build_sized(100, 11);
        let labels = raha_labels(&bench, 20);
        assert_eq!(labels.len(), 20 * bench.dirty.num_columns());
        for label in &labels {
            let is_error = bench.dirty.cell_at(label.at).unwrap() != bench.clean.cell_at(label.at).unwrap();
            assert_eq!(label.is_error, is_error);
        }
    }
}
