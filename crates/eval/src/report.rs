//! Plain-text table rendering for the experiment binary.

use std::fmt::Write as _;
use std::time::Duration;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row. Shorter rows are padded with empty cells.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<width$}", width = w)).collect();
            format!("| {} |", padded.join(" | "))
        };
        let separator: String =
            format!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
        let _ = writeln!(out, "{}", render_row(&self.headers, &widths));
        let _ = writeln!(out, "{separator}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }
}

/// Format a duration the way the paper's Table 7 does (`25s`, `1m40s`, `7h41m`).
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs();
    if secs >= 3600 {
        format!("{}h{}m", secs / 3600, (secs % 3600) / 60)
    } else if secs >= 60 {
        format!("{}m{}s", secs / 60, secs % 60)
    } else if secs > 0 {
        format!("{}s", secs)
    } else {
        format!("{}ms", d.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Method", "F1"]);
        t.add_row(vec!["BClean", "0.976"]);
        t.add_row(vec!["HoloClean-with-long-name", "0.626"]);
        let rendered = t.render();
        assert!(rendered.contains("| Method"));
        assert!(rendered.contains("| BClean "));
        assert!(rendered.lines().count() >= 4);
        assert_eq!(t.num_rows(), 2);
        // All lines have equal width.
        let widths: Vec<usize> = rendered.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        let rendered = t.render();
        assert!(rendered.lines().count() == 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_millis(250)), "250ms");
        assert_eq!(format_duration(Duration::from_secs(25)), "25s");
        assert_eq!(format_duration(Duration::from_secs(100)), "1m40s");
        assert_eq!(format_duration(Duration::from_secs(7 * 3600 + 41 * 60)), "7h41m");
    }
}
