//! Deterministic end-to-end guard for the whole pipeline: generate a seeded
//! Hospital benchmark, fit, clean, and check that (a) cleaning strictly
//! improves F1 over leaving the dirty data untouched, (b) the run is
//! reproducible from the seed, and (c) the result is byte-identical for
//! every thread count (the shared parallel executor's core promise).

use bclean::baselines::{Cleaner, NoOpCleaner};
use bclean::eval::{bclean_constraints, evaluate};
use bclean::prelude::*;

const ROWS: usize = 240;
const SEED: u64 = 20240817;

fn hospital() -> DirtyDataset {
    BenchmarkDataset::Hospital.build_sized(ROWS, SEED)
}

fn clean_with_threads(bench: &DirtyDataset, threads: usize) -> CleaningResult {
    let model = BClean::new(Variant::PartitionedInference.config().with_threads(threads))
        .with_constraints(bclean_constraints(BenchmarkDataset::Hospital))
        .fit(&bench.dirty);
    model.clean(&bench.dirty)
}

#[test]
fn cleaning_strictly_improves_f1_over_dirty_baseline() {
    let bench = hospital();
    assert!(bench.num_errors() > 0, "the generator must inject errors");

    let result = clean_with_threads(&bench, 0);
    let cleaned_metrics = evaluate(&bench.dirty, &result.cleaned, &bench.clean).unwrap();
    let dirty_metrics = evaluate(&bench.dirty, &NoOpCleaner.clean(&bench.dirty), &bench.clean).unwrap();

    assert!(
        cleaned_metrics.f1 > dirty_metrics.f1,
        "cleaning must strictly improve F1: cleaned {:.3} vs dirty {:.3}",
        cleaned_metrics.f1,
        dirty_metrics.f1
    );
    assert!(cleaned_metrics.f1 > 0.5, "end-to-end F1 collapsed: {:?}", cleaned_metrics);
    assert!(!result.repairs.is_empty());
}

#[test]
fn same_seed_reproduces_the_same_run() {
    let first = hospital();
    let second = hospital();
    assert_eq!(first.dirty, second.dirty, "benchmark generation must be seed-deterministic");
    assert_eq!(first.clean, second.clean);

    let run_a = clean_with_threads(&first, 2);
    let run_b = clean_with_threads(&second, 2);
    assert_eq!(run_a.cleaned, run_b.cleaned);
    assert_eq!(run_a.repairs, run_b.repairs);
}

#[test]
fn every_thread_count_produces_identical_results() {
    let bench = hospital();
    let reference = clean_with_threads(&bench, 1);
    for threads in [2, 3, 8, ROWS + 7] {
        let run = clean_with_threads(&bench, threads);
        assert_eq!(run.cleaned, reference.cleaned, "threads={threads} diverged");
        assert_eq!(run.repairs, reference.repairs, "threads={threads} repair list diverged");
        assert_eq!(run.stats.cells_examined, reference.stats.cells_examined);
        assert_eq!(run.stats.candidates_evaluated, reference.stats.candidates_evaluated);
    }
}
