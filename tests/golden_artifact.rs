//! The golden-artifact compatibility gate.
//!
//! `tests/fixtures/` commits a small Hospital model artifact
//! (`hospital.bclean`, fit from `hospital.csv` + `hospital.bc` at a fixed
//! seed) together with the repairs it must produce
//! (`hospital_repairs.csv`). This test loads the **committed** artifact
//! with the **current** code and asserts:
//!
//! 1. the artifact still loads and reports the current `FORMAT_VERSION`;
//! 2. re-saving the loaded artifact reproduces the committed bytes exactly
//!    (save/load is a fixpoint — any on-disk layout change that forgot to
//!    bump `FORMAT_VERSION` either fails to load or fails this byte
//!    comparison);
//! 3. cleaning the committed CSV with the loaded artifact reproduces the
//!    committed repairs byte for byte (any scoring drift fails here).
//!
//! The sanctioned escape hatch for *intentional* format or scoring
//! changes: bump `FORMAT_VERSION` in `crates/store/src/container.rs` (for
//! layout changes) and regenerate the fixtures with
//!
//! ```text
//! BCLEAN_REGEN_GOLDEN=1 cargo test --test golden_artifact
//! ```
//!
//! then commit the diff. The policy is documented in the README's
//! "Persistence & CLI" section; CI runs this test as its own
//! `golden-artifact` job.

use std::path::{Path, PathBuf};

use bclean::eval::bclean_constraints;
use bclean::prelude::*;
use bclean::store::ContainerReader;

/// Fixture generation parameters — change them only together with a
/// regeneration.
const ROWS: usize = 160;
const SEED: u64 = 20240817;
const THREADS: usize = 1;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fit_fixture_artifact(data: &bclean::data::Dataset, constraints: ConstraintSet) -> ModelArtifact {
    BClean::new(Variant::PartitionedInference.config().with_threads(THREADS))
        .with_constraints(constraints)
        .fit_artifact(data)
}

/// Regenerate every fixture file from the seeded generator. Returns the
/// paths written (used by the regen mode of the test below).
fn regenerate(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED);
    bclean::data::write_csv_file(&bench.dirty, dir.join("hospital.csv"))
        .expect("fixture CSV must be writable");
    let spec = bclean_constraints(BenchmarkDataset::Hospital)
        .to_spec_text()
        .expect("Hospital constraints are representable");
    std::fs::write(dir.join("hospital.bc"), &spec)?;
    // Fit from the *re-read* CSV so the fixture pipeline is exactly what a
    // `bclean fit tests/fixtures/hospital.csv` invocation sees.
    let data = bclean::data::read_csv_file(dir.join("hospital.csv")).expect("fixture CSV re-reads");
    let constraints = ConstraintSet::from_spec_text(&spec).expect("fixture spec parses");
    let artifact = fit_fixture_artifact(&data, constraints);
    artifact.save(dir.join("hospital.bclean")).expect("fixture artifact must save");
    let repairs = artifact.compile().clean(&data).repairs;
    assert!(!repairs.is_empty(), "the fixture must exercise repairs");
    std::fs::write(dir.join("hospital_repairs.csv"), bclean::core::repairs_to_csv(&repairs))?;
    Ok(())
}

#[test]
fn committed_artifact_loads_and_reproduces_committed_repairs() {
    let dir = fixtures_dir();
    if std::env::var_os("BCLEAN_REGEN_GOLDEN").is_some() {
        regenerate(&dir).expect("fixture regeneration");
        println!("regenerated golden fixtures under {}", dir.display());
    }

    let bytes = std::fs::read(dir.join("hospital.bclean"))
        .expect("tests/fixtures/hospital.bclean is committed; regenerate with BCLEAN_REGEN_GOLDEN=1");

    // (1) The committed container parses at the current format version.
    let container = ContainerReader::parse(&bytes).expect("committed artifact must parse");
    assert_eq!(
        container.version(),
        FORMAT_VERSION,
        "the committed fixture was written at format version {} but the code is at {}; \
         bump + regenerate (BCLEAN_REGEN_GOLDEN=1 cargo test --test golden_artifact)",
        container.version(),
        FORMAT_VERSION
    );
    let artifact = ModelArtifact::from_bytes(&bytes).expect(
        "the committed artifact no longer loads — an on-disk format change landed without a \
         FORMAT_VERSION bump + fixture regeneration",
    );

    // (2) Save/load is a fixpoint on the committed bytes.
    assert_eq!(
        artifact.to_bytes().expect("loaded artifact serializes"),
        bytes,
        "re-saving the committed artifact changed its bytes — the serialization layout drifted \
         without a FORMAT_VERSION bump + fixture regeneration"
    );

    // (3) The loaded artifact reproduces the committed repairs exactly.
    let data = bclean::data::read_csv_file(dir.join("hospital.csv")).expect("fixture CSV reads");
    artifact.check_schema(data.schema()).expect("fixture CSV matches the artifact schema");
    let repairs = artifact.compile().clean(&data).repairs;
    let expected = std::fs::read_to_string(dir.join("hospital_repairs.csv"))
        .expect("tests/fixtures/hospital_repairs.csv is committed");
    assert_eq!(
        bclean::core::repairs_to_csv(&repairs),
        expected,
        "cleaning with the committed artifact produced different repairs — scoring drifted; if \
         intentional, regenerate the fixtures (BCLEAN_REGEN_GOLDEN=1) and explain the drift in \
         the PR"
    );
}

/// The fixture provenance is reproducible: refitting from the committed
/// CSV + constraints with the current code must still agree with the
/// committed artifact on every *repair*. (The byte-level fit comparison is
/// intentionally not asserted here — it runs at regeneration time — so the
/// gate keys on observable behaviour, not on float-op scheduling.)
#[test]
fn refit_from_committed_inputs_reproduces_committed_repairs() {
    let dir = fixtures_dir();
    let data = bclean::data::read_csv_file(dir.join("hospital.csv")).expect("fixture CSV reads");
    let spec = std::fs::read_to_string(dir.join("hospital.bc")).expect("fixture constraints read");
    let constraints = ConstraintSet::from_spec_text(&spec).expect("fixture spec parses");
    let refit = fit_fixture_artifact(&data, constraints);
    let repairs = refit.compile().clean(&data).repairs;
    let expected = std::fs::read_to_string(dir.join("hospital_repairs.csv"))
        .expect("tests/fixtures/hospital_repairs.csv is committed");
    assert_eq!(bclean::core::repairs_to_csv(&repairs), expected);
}
