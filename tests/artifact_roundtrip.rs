//! Persistence equivalence guard: `ModelArtifact::load(save(a))` followed
//! by compile + clean must be bit-identical to cleaning with the original
//! artifact — identical structures, CPTs, domains and repairs — on the
//! Hospital fixture for every paper variant and for 1, 2 and 8 worker
//! threads. A property test repeats the repair-level check across every
//! datagen benchmark family, and a corruption battery asserts that every
//! way a `.bclean` file can rot yields a typed `StoreError`, never a panic
//! and never a silently different model.

use bclean::data::AttributeDomain;
use bclean::eval::bclean_constraints;
use bclean::prelude::*;
use bclean::store::{ContainerReader, MAGIC};
use proptest::prelude::*;

const ROWS: usize = 160;
const SEED: u64 = 20240817;

fn hospital_artifact(variant: Variant, threads: usize) -> (DirtyDataset, ModelArtifact) {
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED);
    let artifact = BClean::new(variant.config().with_threads(threads))
        .with_constraints(bclean_constraints(BenchmarkDataset::Hospital))
        .fit_artifact(&bench.dirty);
    (bench, artifact)
}

#[test]
fn save_load_clean_is_bit_identical_for_every_variant_and_thread_count() {
    let mut total_repairs = 0usize;
    for variant in Variant::all() {
        for threads in [1usize, 2, 8] {
            let (bench, artifact) = hospital_artifact(variant, threads);
            let bytes = artifact.to_bytes().expect("artifact serializes");
            let loaded = ModelArtifact::from_bytes(&bytes).expect("artifact loads");

            // Identical structures and fit metadata.
            assert_eq!(loaded.dag(), artifact.dag(), "variant {variant:?} threads {threads}");
            assert_eq!(loaded.attribute_names(), artifact.attribute_names());
            assert_eq!(loaded.attribute_types(), artifact.attribute_types());
            assert_eq!(loaded.num_rows(), artifact.num_rows());
            assert_eq!(loaded.schema_hash(), artifact.schema_hash());

            let original = artifact.compile();
            let restored = loaded.compile();

            // Identical domains (derived PartialEq covers values + counts).
            for col in 0..bench.dirty.num_columns() {
                assert_eq!(
                    restored.domains().attribute(col),
                    &AttributeDomain::from_column(&bench.dirty, col),
                    "domain diverged: column {col}"
                );
            }

            // Identical CPTs, bit for bit, via the probability API over
            // every observed tuple and candidate value (plus null).
            for (r, row) in bench.dirty.rows().enumerate() {
                for col in 0..bench.dirty.num_columns() {
                    let mut probes: Vec<Value> = restored.domains().attribute(col).values().to_vec();
                    probes.push(Value::Null);
                    for value in &probes {
                        assert_eq!(
                            restored.network().cpt(col).prob_given_row(value, row).to_bits(),
                            original.network().cpt(col).prob_given_row(value, row).to_bits(),
                            "CPT diverged: variant {variant:?} row {r} col {col} value {value}"
                        );
                    }
                }
            }

            // Identical downstream repairs, cleaned datasets and counters.
            let original_run = original.clean(&bench.dirty);
            let restored_run = restored.clean(&bench.dirty);
            assert_eq!(
                restored_run.repairs, original_run.repairs,
                "repairs diverged: variant {variant:?} threads {threads}"
            );
            assert_eq!(restored_run.cleaned, original_run.cleaned);
            assert_eq!(restored_run.stats.cells_examined, original_run.stats.cells_examined);
            assert_eq!(restored_run.stats.cells_skipped, original_run.stats.cells_skipped);
            assert_eq!(restored_run.stats.candidates_evaluated, original_run.stats.candidates_evaluated);
            total_repairs += original_run.repairs.len();

            // Serialization is deterministic and save/load is a fixpoint:
            // re-saving the loaded artifact reproduces the bytes exactly
            // (what CI's golden-artifact gate byte-compares).
            assert_eq!(loaded.to_bytes().expect("loaded artifact serializes"), bytes);
        }
    }
    assert!(total_repairs > 0, "the fixture must exercise actual repairs");
}

#[test]
fn every_corruption_mode_is_a_typed_error_never_a_panic() {
    let (_, artifact) = hospital_artifact(Variant::PartitionedInference, 1);
    let bytes = artifact.to_bytes().expect("artifact serializes");

    // Wrong magic.
    let mut wrong_magic = bytes.clone();
    wrong_magic[..MAGIC.len()].copy_from_slice(b"NOTBCLEA");
    assert!(matches!(ModelArtifact::from_bytes(&wrong_magic), Err(StoreError::BadMagic { .. })));

    // Future format version.
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match ModelArtifact::from_bytes(&future) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    // Truncation at every kind of boundary: header, section header, payload.
    for cut in [0, 4, MAGIC.len(), 13, 20, bytes.len() / 2, bytes.len() - 1] {
        let err = ModelArtifact::from_bytes(&bytes[..cut]).expect_err("truncated file must not load");
        assert!(
            matches!(
                err,
                StoreError::BadMagic { .. }
                    | StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }

    // A flipped byte anywhere in any section payload fails its CRC. Probe a
    // spread of offsets past the header.
    let header = MAGIC.len() + 8;
    let step = (bytes.len() - header) / 23 + 1;
    for offset in (header..bytes.len()).step_by(step) {
        let mut flipped = bytes.clone();
        flipped[offset] ^= 0x20;
        if flipped == bytes {
            continue;
        }
        let err = ModelArtifact::from_bytes(&flipped).expect_err("bit rot must not load");
        assert!(
            matches!(
                err,
                StoreError::ChecksumMismatch { .. } | StoreError::Corrupt(_) | StoreError::Truncated { .. }
            ),
            "flip at {offset}: unexpected error {err:?}"
        );
    }

    // The pristine bytes still parse (the battery did not mutate in place).
    assert!(ContainerReader::parse(&bytes).is_ok());
    assert!(ModelArtifact::from_bytes(&bytes).is_ok());
}

fn benchmark_strategy() -> impl Strategy<Value = (BenchmarkDataset, usize, u64)> {
    (0usize..BenchmarkDataset::all().len(), 30usize..100, 0u64..1_000_000)
        .prop_map(|(idx, rows, seed)| (BenchmarkDataset::all()[idx], rows, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Across every datagen benchmark family, random sizes and seeds:
    /// save → load → compile → clean must reproduce the original repairs
    /// byte for byte, and re-saving must reproduce the original bytes.
    #[test]
    fn save_load_round_trips_over_generated_benchmarks((dataset, rows, seed) in benchmark_strategy()) {
        let bench = dataset.build_sized(rows, seed);
        let artifact = BClean::new(Variant::PartitionedInference.config().with_threads(2))
            .with_constraints(bclean_constraints(dataset))
            .fit_artifact(&bench.dirty);
        let bytes = artifact.to_bytes().expect("artifact serializes");
        let loaded = ModelArtifact::from_bytes(&bytes).expect("artifact loads");
        prop_assert_eq!(loaded.dag(), artifact.dag());
        prop_assert_eq!(loaded.to_bytes().expect("loaded artifact serializes"), bytes);
        let original = artifact.compile().clean(&bench.dirty);
        let restored = loaded.compile().clean(&bench.dirty);
        prop_assert_eq!(&restored.repairs, &original.repairs);
        prop_assert_eq!(&restored.cleaned, &original.cleaned);
    }
}
