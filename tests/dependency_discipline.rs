//! The workspace's offline no-deps discipline, as an executable guard: the
//! build must never acquire a crates.io (or git) dependency. Everything
//! resolves to workspace members — external APIs are stood in for by the
//! path-dependency shims under `crates/compat/`. CI runs this alongside a
//! manifest lint; the test is the half that keeps working on developer
//! machines with no CI around.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every manifest in the workspace: the root plus each member crate's.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = repo_root();
    let mut manifests = vec![root.join("Cargo.toml")];
    let mut dirs = vec![root.join("crates")];
    while let Some(dir) = dirs.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable workspace directory") {
            let path = entry.expect("readable directory entry").path();
            if path.is_dir() {
                let manifest = path.join("Cargo.toml");
                if manifest.is_file() {
                    manifests.push(manifest);
                } else {
                    // e.g. crates/compat/, which holds nested members.
                    dirs.push(path);
                }
            }
        }
    }
    assert!(manifests.len() > 10, "workspace scan found only {} manifests", manifests.len());
    manifests
}

/// A registry or git dependency in the lockfile always carries a `source`
/// key; pure path/workspace dependencies never do. So one grep over
/// `Cargo.lock` proves the whole resolved graph is in-tree.
#[test]
fn lockfile_resolves_no_external_sources() {
    let lock = repo_root().join("Cargo.lock");
    let contents = std::fs::read_to_string(&lock).expect("Cargo.lock exists at the workspace root");
    assert!(contents.contains("[[package]]"), "lockfile looks empty — was it regenerated?");
    let offenders: Vec<&str> =
        contents.lines().filter(|line| line.trim_start().starts_with("source = ")).collect();
    assert!(
        offenders.is_empty(),
        "Cargo.lock resolves external dependencies — the workspace builds offline, so new \
         APIs must be stood in for under crates/compat/ instead:\n{}",
        offenders.join("\n")
    );
}

/// Manifest-side check: inside every dependency table, each entry must be
/// either a workspace reference (`foo.workspace = true`) or an explicit
/// path dependency. Version-only entries (`foo = "1.0"`) would ask cargo to
/// hit the registry.
#[test]
fn manifests_declare_only_workspace_and_path_dependencies() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        let contents = std::fs::read_to_string(&manifest).expect("readable manifest");
        let mut in_dependency_table = false;
        for (number, line) in contents.lines().enumerate() {
            let line = line.trim();
            if line.starts_with('[') {
                in_dependency_table =
                    line.trim_matches(['[', ']']).split('.').next_back().is_some_and(|section| {
                        section == "dependencies"
                            || section == "dev-dependencies"
                            || section == "build-dependencies"
                    });
                continue;
            }
            if !in_dependency_table || line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !(line.contains("workspace = true") || line.contains("path = ")) {
                violations.push(format!("{}:{}: {line}", manifest.display(), number + 1));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "dependency entries that are neither workspace references nor path \
         dependencies (these would pull from a registry):\n{}",
        violations.join("\n")
    );
}

/// The compat shims must stay leaves: a shim that itself grew a non-path
/// dependency would smuggle the registry in through the back door.
#[test]
fn compat_shims_depend_only_on_each_other() {
    let compat = repo_root().join("crates").join("compat");
    for entry in std::fs::read_dir(&compat).expect("crates/compat exists") {
        let dir = entry.expect("readable entry").path();
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let contents = std::fs::read_to_string(&manifest).expect("readable manifest");
        let mut in_dependency_table = false;
        for line in contents.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_dependency_table = line.contains("dependencies");
                continue;
            }
            if in_dependency_table && line.contains("path = ") {
                let target = line.split("path = ").nth(1).unwrap_or("").trim_matches(['"', ' ', '}', ',']);
                let resolved = dir.join(target);
                let resolved = resolved.canonicalize().unwrap_or(resolved);
                assert!(
                    resolved.starts_with(compat.canonicalize().expect("compat path")),
                    "{}: compat shim depends outside crates/compat/: {line}",
                    manifest.display()
                );
            }
        }
    }
}
