//! Property tests for the dictionary-encoding layer over datagen-generated
//! benchmarks: for every generated dataset, `Value → code → Value`
//! round-trips exactly and `EncodedDataset` row iteration matches
//! `Dataset::rows()` cell-for-cell, with the dictionary order equal to the
//! shared sorted-domain order.

use bclean::data::{AttributeDomain, EncodedDataset};
use bclean::prelude::*;
use proptest::prelude::*;

fn benchmark_strategy() -> impl Strategy<Value = (BenchmarkDataset, usize, u64)> {
    (0usize..BenchmarkDataset::all().len(), 20usize..120, 0u64..1_000_000)
        .prop_map(|(idx, rows, seed)| (BenchmarkDataset::all()[idx], rows, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every cell of a generated dirty dataset encodes to a code that decodes
    /// back to the exact same value, and `EncodedDataset::rows()` reproduces
    /// `Dataset::rows()` cell-for-cell.
    #[test]
    fn value_code_roundtrip_over_generated_benchmarks((dataset, rows, seed) in benchmark_strategy()) {
        let bench = dataset.build_sized(rows, seed);
        for table in [&bench.dirty, &bench.clean] {
            let encoded = EncodedDataset::from_dataset(table);
            prop_assert_eq!(encoded.num_rows(), table.num_rows());
            prop_assert_eq!(encoded.num_columns(), table.num_columns());
            for (r, (codes, row)) in encoded.rows().zip(table.rows()).enumerate() {
                for (c, value) in row.iter().enumerate() {
                    // Value → code is total over the fitting dataset…
                    let code = encoded.dict(c).encode(value);
                    prop_assert_eq!(code, Some(codes[c]), "encode mismatch at ({}, {})", r, c);
                    // …and code → Value is the exact inverse.
                    prop_assert_eq!(encoded.dict(c).decode(codes[c]), value, "decode mismatch at ({}, {})", r, c);
                    prop_assert_eq!(encoded.decode_cell(r, c), value);
                }
            }
        }
    }

    /// The dictionary's code order is the sorted-domain order shared with
    /// `AttributeDomain` (and `DiscreteDomain`), and null/unseen sentinels
    /// sit directly above the value codes.
    #[test]
    fn dict_order_matches_attribute_domains((dataset, rows, seed) in benchmark_strategy()) {
        let bench = dataset.build_sized(rows, seed);
        let encoded = EncodedDataset::from_dataset(&bench.dirty);
        for col in 0..bench.dirty.num_columns() {
            let dict = encoded.dict(col);
            let domain = AttributeDomain::from_column(&bench.dirty, col);
            prop_assert_eq!(dict.values(), domain.values(), "column {}", col);
            prop_assert_eq!(dict.cardinality() as u32, dict.null_code());
            prop_assert_eq!(dict.null_code() + 1, dict.unseen_code());
            for code in 0..dict.cardinality() as u32 {
                prop_assert_eq!(dict.encode(&dict.values()[code as usize]), Some(code));
            }
        }
    }
}
