//! Cross-crate integration tests: the full BClean pipeline on every synthetic
//! benchmark, variant consistency, and baseline sanity checks.

use bclean::baselines::{Cleaner, NoOpCleaner};
use bclean::eval::{bclean_constraints, evaluate, run_method, ErrorTypeRecall, Method};
use bclean::prelude::*;

/// Small but non-trivial benchmark instances used across these tests.
fn small(dataset: BenchmarkDataset) -> DirtyDataset {
    dataset.build_sized(300, 4242)
}

#[test]
fn bclean_improves_every_benchmark_over_doing_nothing() {
    for dataset in BenchmarkDataset::all() {
        let bench = small(dataset);
        let run = run_method(Method::BClean(Variant::PartitionedInference), dataset, &bench);
        let noop = evaluate(&bench.dirty, &NoOpCleaner.clean(&bench.dirty), &bench.clean).unwrap();
        assert!(
            run.metrics.f1 > noop.f1,
            "{}: BCleanPI F1 {} not better than doing nothing",
            dataset.name(),
            run.metrics.f1
        );
        assert!(
            run.metrics.precision > 0.4,
            "{}: precision {:.3} too low",
            dataset.name(),
            run.metrics.precision
        );
    }
}

#[test]
fn bclean_beats_every_baseline_on_hospital() {
    let bench = BenchmarkDataset::Hospital.build_sized(500, 7);
    let bclean =
        run_method(Method::BClean(Variant::PartitionedInference), BenchmarkDataset::Hospital, &bench);
    for baseline in [Method::HoloClean, Method::RahaBaran, Method::Garf] {
        let run = run_method(baseline, BenchmarkDataset::Hospital, &bench);
        // Raha+Baran-lite receives perfect labels for 40 tuples, so on this
        // small instance it can come within a whisker of BClean; allow a small
        // tolerance rather than demanding strict dominance at every seed.
        assert!(
            bclean.metrics.f1 >= run.metrics.f1 - 0.05,
            "BClean F1 {:.3} should be >= {} F1 {:.3} - 0.05",
            bclean.metrics.f1,
            run.method,
            run.metrics.f1
        );
    }
}

#[test]
fn variants_agree_on_quality_within_tolerance() {
    // Paper §7.2.1: the efficiency-optimised variants show similar quality to
    // the unoptimised one.
    let bench = small(BenchmarkDataset::Hospital);
    let basic = run_method(Method::BClean(Variant::Basic), BenchmarkDataset::Hospital, &bench);
    let pi = run_method(Method::BClean(Variant::PartitionedInference), BenchmarkDataset::Hospital, &bench);
    let pip =
        run_method(Method::BClean(Variant::PartitionedInferencePruning), BenchmarkDataset::Hospital, &bench);
    assert!(
        (basic.metrics.f1 - pi.metrics.f1).abs() < 0.1,
        "basic {:?} vs PI {:?}",
        basic.metrics,
        pi.metrics
    );
    assert!(pi.metrics.f1 - pip.metrics.f1 < 0.2, "PIP dropped too much: {:?}", pip.metrics);
}

#[test]
fn missing_value_recall_is_high_on_inpatient() {
    // Table 6: BClean's recall on missing values is near 1.0.
    let bench = small(BenchmarkDataset::Inpatient);
    let run = run_method(Method::BClean(Variant::PartitionedInference), BenchmarkDataset::Inpatient, &bench);
    let recalls = ErrorTypeRecall::compute(&bench, &run.cleaned);
    if let Some(missing) = recalls.recall(ErrorType::Missing) {
        assert!(missing > 0.6, "missing-value recall {missing} too low");
    }
}

#[test]
fn uc_ablation_hurts_flights() {
    // Figure 5: dropping pattern constraints hurts the high-noise Flights data.
    let bench = BenchmarkDataset::Flights.build_sized(600, 11);
    let full = bclean_constraints(BenchmarkDataset::Flights);
    let with_ucs = BClean::new(Variant::PartitionedInference.config())
        .with_constraints(full)
        .fit(&bench.dirty)
        .clean(&bench.dirty);
    let without_ucs = BClean::new(Variant::NoUserConstraints.config()).fit(&bench.dirty).clean(&bench.dirty);
    let m_with = evaluate(&bench.dirty, &with_ucs.cleaned, &bench.clean).unwrap();
    let m_without = evaluate(&bench.dirty, &without_ucs.cleaned, &bench.clean).unwrap();
    assert!(m_with.f1 >= m_without.f1, "UCs should not hurt: with {:?} vs without {:?}", m_with, m_without);
}

#[test]
fn cleaned_dataset_preserves_shape_and_only_touches_reported_cells() {
    let bench = small(BenchmarkDataset::Beers);
    let constraints = bclean_constraints(BenchmarkDataset::Beers);
    let model = BClean::new(Variant::PartitionedInferencePruning.config())
        .with_constraints(constraints)
        .fit(&bench.dirty);
    let result = model.clean(&bench.dirty);
    assert_eq!(result.cleaned.num_rows(), bench.dirty.num_rows());
    assert_eq!(result.cleaned.num_columns(), bench.dirty.num_columns());
    // Every difference between dirty and cleaned is covered by a repair record.
    let changes = bclean::data::diff(&bench.dirty, &result.cleaned).unwrap();
    assert_eq!(changes.len(), result.repairs.len());
    for change in changes {
        let repair = result.repairs.iter().find(|r| r.at == change.at).expect("repair recorded");
        assert_eq!(repair.to, change.to);
        assert_eq!(repair.from, change.from);
    }
}

#[test]
fn csv_roundtrip_of_cleaned_output() {
    let bench = small(BenchmarkDataset::Soccer);
    let run =
        run_method(Method::BClean(Variant::PartitionedInferencePruning), BenchmarkDataset::Soccer, &bench);
    let csv = bclean::data::to_csv(&run.cleaned);
    let parsed = bclean::data::parse_csv(&csv).unwrap();
    assert_eq!(parsed.num_rows(), run.cleaned.num_rows());
    assert_eq!(parsed.schema().names(), run.cleaned.schema().names());
}

#[test]
fn every_baseline_runs_on_every_benchmark() {
    for dataset in BenchmarkDataset::all() {
        let bench = dataset.build_sized(150, 17);
        for method in [Method::PClean, Method::HoloClean, Method::RahaBaran, Method::Garf] {
            let run = run_method(method, dataset, &bench);
            assert!(run.metrics.precision.is_finite());
            assert!(run.metrics.recall <= 1.0);
            assert_eq!(run.cleaned.num_rows(), bench.dirty.num_rows());
        }
    }
}

#[test]
fn swap_errors_are_partially_recovered_by_bclean() {
    // Figure 4(e): BClean handles swapping errors better than chance.
    let clean = BenchmarkDataset::Inpatient.generate_clean(400, 3);
    let swapped = bclean::datagen::inject_errors(&clean, &ErrorSpec::only(ErrorType::Swap, 0.08), 5);
    let run =
        run_method(Method::BClean(Variant::PartitionedInference), BenchmarkDataset::Inpatient, &swapped);
    assert!(run.metrics.recall > 0.2, "swap recall {:.3}", run.metrics.recall);
}

#[test]
fn parameter_defaults_are_robust() {
    // Tables 8-10: the three compensatory parameters barely move F1.
    let bench = BenchmarkDataset::Hospital.build_sized(300, 23);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let mut f1s = Vec::new();
    for lambda in [0.0, 1.0, 5.0] {
        let config = BCleanConfig {
            params: CompensatoryParams { lambda, ..CompensatoryParams::default() },
            ..Variant::PartitionedInference.config()
        };
        let model = BClean::new(config).with_constraints(constraints.clone()).fit(&bench.dirty);
        let result = model.clean(&bench.dirty);
        f1s.push(evaluate(&bench.dirty, &result.cleaned, &bench.clean).unwrap().f1);
    }
    let max = f1s.iter().cloned().fold(f64::MIN, f64::max);
    let min = f1s.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.1, "lambda sweep unstable: {f1s:?}");
}

#[test]
fn expression_constraints_match_builtin_constraints_on_hospital() {
    // Encoding the Table 3 ZIP / phone patterns as expression rules must not
    // change cleaning quality compared to the equivalent built-in patterns.
    let bench = small(BenchmarkDataset::Hospital);
    let builtin = bclean_constraints(BenchmarkDataset::Hospital);

    let mut expressions = bclean_constraints(BenchmarkDataset::Hospital);
    expressions.add("ZipCode", UserConstraint::expression("len(value) == 5 && is_number(value)").unwrap());
    expressions.add("State", UserConstraint::expression("len(value) == 2").unwrap());

    let base = BClean::new(Variant::PartitionedInference.config())
        .with_constraints(builtin)
        .fit(&bench.dirty)
        .clean(&bench.dirty);
    let with_exprs = BClean::new(Variant::PartitionedInference.config())
        .with_constraints(expressions)
        .fit(&bench.dirty)
        .clean(&bench.dirty);

    let m_base = evaluate(&bench.dirty, &base.cleaned, &bench.clean).unwrap();
    let m_expr = evaluate(&bench.dirty, &with_exprs.cleaned, &bench.clean).unwrap();
    assert!(
        m_expr.f1 >= m_base.f1 - 0.05,
        "expression constraints degraded F1: {} vs {}",
        m_expr.f1,
        m_base.f1
    );
}

#[test]
fn row_rules_repair_cross_attribute_violations() {
    // A tuple-level rule relating InsuranceCode and ZipCode catches a
    // format-valid but inconsistent ZIP that per-attribute constraints miss.
    let rows: Vec<Vec<&str>> = (0..40)
        .map(|i| {
            if i % 2 == 0 {
                vec!["sylacauga", "CA", "35150", "2567600035150"]
            } else {
                vec!["centre", "KT", "35960", "2560018035960"]
            }
        })
        .collect();
    let mut rows = rows;
    // Swap-style error: a valid ZIP from the other city.
    rows[7][2] = "35150";

    let dirty = dataset_from(&["City", "State", "ZipCode", "InsuranceCode"], &rows);

    let without_rule = ConstraintSet::new();
    let with_rule = ConstraintSet::new().with_row_rule("ends_with(InsuranceCode, ZipCode)").unwrap();

    let plain = BClean::new(Variant::PartitionedInference.config())
        .with_constraints(without_rule)
        .fit(&dirty)
        .clean(&dirty);
    let ruled = BClean::new(Variant::PartitionedInference.config())
        .with_constraints(with_rule)
        .fit(&dirty)
        .clean(&dirty);

    let fixed_by_rule = ruled
        .repairs
        .iter()
        .any(|r| r.at.row == 7 && r.attribute == "ZipCode" && r.to.to_string() == "35960");
    assert!(fixed_by_rule, "row rule should repair the swapped ZipCode: {:?}", ruled.repairs);
    // The rule must not cause spurious repairs elsewhere.
    assert!(ruled.repairs.len() <= plain.repairs.len() + 1);
    for repair in &ruled.repairs {
        assert!(repair.at.row == 7 || plain.repairs.iter().any(|p| p.at == repair.at));
    }
}

#[test]
fn exact_inference_agrees_with_bclean_on_fd_determined_cells() {
    use bclean::bayesnet::{argmax_posterior, InferenceEngine};

    let bench = small(BenchmarkDataset::Hospital);
    let model = BClean::new(Variant::PartitionedInference.config())
        .with_constraints(bclean_constraints(BenchmarkDataset::Hospital))
        .fit(&bench.dirty);
    let network = model.network();
    let engine = InferenceEngine::new(network, &bench.dirty);

    // Columns whose domains are small enough for exact inference in a test.
    let small_cols: Vec<usize> = (0..bench.dirty.num_columns())
        .filter(|&c| engine.domain(c).map(|d| d.cardinality() <= 60).unwrap_or(false))
        .collect();
    assert!(!small_cols.is_empty());

    let mut checked = 0usize;
    for err in bench.errors.iter().filter(|e| small_cols.contains(&e.at.col)).take(5) {
        let row = bench.dirty.row(err.at.row).unwrap();
        let exact = engine.posterior_for_cell(row, err.at.col).unwrap();
        let exact_best = argmax_posterior(&exact).unwrap().0.clone();
        let blanket_best = engine
            .domain(err.at.col)
            .unwrap()
            .values()
            .iter()
            .max_by(|a, b| {
                network
                    .blanket_log_score(row, err.at.col, a)
                    .partial_cmp(&network.blanket_log_score(row, err.at.col, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .cloned()
            .unwrap();
        assert_eq!(exact_best, blanket_best, "engines disagree on row {} col {}", err.at.row, err.at.col);
        checked += 1;
    }
    assert!(checked > 0, "no low-cardinality erroneous cells found to compare");
}

#[test]
fn gibbs_sampling_recovers_fd_partner_in_pipeline_network() {
    use bclean::bayesnet::{argmax_posterior, ApproxConfig, InferenceEngine};

    // Zip -> State FD table with one corrupted State cell.
    let rows: Vec<Vec<&str>> =
        (0..60).map(|i| if i % 2 == 0 { vec!["35150", "CA"] } else { vec!["35960", "KT"] }).collect();
    let dirty = dataset_from(&["ZipCode", "State"], &rows);
    let model = BClean::new(Variant::PartitionedInference.config()).fit(&dirty);
    let engine = InferenceEngine::new(model.network(), &dirty);

    let posterior =
        engine.posterior_gibbs(1, &[(0, Value::parse("35150"))], ApproxConfig::default()).unwrap();
    assert_eq!(argmax_posterior(&posterior).unwrap().0, Value::text("CA"));
}
