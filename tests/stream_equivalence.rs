//! Equivalence guard for the streaming engine: a [`CleaningSession`] that
//! refits after every batch must end up in exactly the state a one-shot
//! `BClean::fit` + `BCleanModel::clean` on the concatenated batches reaches —
//! identical learned structures, bit-identical CPTs (compared through their
//! probability APIs), identical domains and FD-confidence matrices, and
//! byte-identical repairs from [`CleaningSession::finalize`] — for every
//! paper variant and for 1, 2 and 8 worker threads, even though the
//! session's dictionaries carry appended (unsorted) code layouts. A property
//! test repeats the repair-level check across every datagen benchmark family
//! under random batch splits, including single-row batches, one whole-dataset
//! batch, and batches that introduce values and nulls the session has never
//! seen.
//!
//! The same guard covers the sharded pipeline: fitting and cleaning in row
//! shards (any shard count × any thread count, shards composing with
//! streaming sessions and with candidate pruning) must reproduce the serial
//! one-shot artifact byte-for-byte and its repairs repair-for-repair.

use bclean::core::CleaningSession;
use bclean::data::AttributeDomain;
use bclean::eval::bclean_constraints;
use bclean::prelude::*;
use proptest::prelude::*;

const ROWS: usize = 160;
const SEED: u64 = 20240817;

/// Split `dataset` into consecutive batches of the given sizes (the last
/// batch takes any remainder).
fn split(dataset: &Dataset, sizes: &[usize]) -> Vec<Dataset> {
    let mut batches = Vec::new();
    let mut start = 0usize;
    for (i, &size) in sizes.iter().enumerate() {
        let end =
            if i + 1 == sizes.len() { dataset.num_rows() } else { (start + size).min(dataset.num_rows()) };
        let mut batch = Dataset::new(dataset.schema().clone());
        for r in start..end {
            batch.push_row(dataset.row(r).unwrap().to_vec()).unwrap();
        }
        batches.push(batch);
        start = end;
        if start >= dataset.num_rows() {
            break;
        }
    }
    batches
}

#[test]
fn session_matches_one_shot_for_every_variant_and_thread_count() {
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let m = bench.dirty.num_columns();
    let mut total_repairs = 0usize;
    for variant in Variant::all() {
        let oneshot_model = BClean::new(variant.config().with_threads(1))
            .with_constraints(constraints.clone())
            .fit(&bench.dirty);
        let oneshot = oneshot_model.clean(&bench.dirty);
        total_repairs += oneshot.repairs.len();
        for threads in [1usize, 2, 8] {
            let cleaner =
                BClean::new(variant.config().with_threads(threads)).with_constraints(constraints.clone());
            let mut session = CleaningSession::new(cleaner, bench.dirty.schema().clone());
            // Uneven batches, including a single-row one, so later batches
            // bring values (and nulls) the session has never seen.
            let mut streamed = 0usize;
            for batch in split(&bench.dirty, &[1, 40, 7, 64, 100]) {
                streamed += session.ingest(&batch).len();
            }
            assert_eq!(session.num_rows(), bench.dirty.num_rows());
            let result = session.finalize();
            let model = session.model().expect("data was ingested");

            // Identical structures.
            assert_eq!(
                model.network().dag().edges(),
                oneshot_model.network().dag().edges(),
                "structure diverged: variant {variant:?} threads {threads}"
            );
            assert_eq!(model.network().attribute_names(), oneshot_model.network().attribute_names());
            assert_eq!(model.network().num_parameters(), oneshot_model.network().num_parameters());

            // Identical domains, despite the appended dictionary layout.
            for col in 0..m {
                assert_eq!(
                    model.domains().attribute(col),
                    &AttributeDomain::from_column(&bench.dirty, col),
                    "domain diverged: column {col}"
                );
            }

            // Bit-identical CPTs through the probability API: every domain
            // value (plus null) of every column against every observed
            // parent context.
            for (r, row) in bench.dirty.rows().enumerate() {
                for col in 0..m {
                    let mut probes: Vec<Value> = model.domains().attribute(col).values().to_vec();
                    probes.push(Value::Null);
                    for value in &probes {
                        assert_eq!(
                            model.network().cpt(col).prob_given_row(value, row).to_bits(),
                            oneshot_model.network().cpt(col).prob_given_row(value, row).to_bits(),
                            "CPT diverged: variant {variant:?} row {r} col {col} value {value}"
                        );
                        assert_eq!(
                            model.network().cpt(col).marginal_prob(value).to_bits(),
                            oneshot_model.network().cpt(col).marginal_prob(value).to_bits()
                        );
                    }
                }
            }

            // Byte-identical authoritative repairs and counters.
            assert_eq!(
                result.repairs, oneshot.repairs,
                "repairs diverged: variant {variant:?} threads {threads}"
            );
            assert_eq!(result.cleaned, oneshot.cleaned);
            assert_eq!(result.stats.cells_examined, oneshot.stats.cells_examined);
            assert_eq!(result.stats.cells_skipped, oneshot.stats.cells_skipped);
            assert_eq!(result.stats.candidates_evaluated, oneshot.stats.candidates_evaluated);

            // The per-ingest streams are provisional but must have flowed.
            assert!(streamed > 0 || oneshot.repairs.is_empty(), "no streaming repairs were emitted");
            let stats = session.stats();
            assert_eq!(stats.rows, bench.dirty.num_rows());
            assert!(stats.refits >= stats.batches, "refit-every-batch cadence must refit per batch");
        }
    }
    assert!(total_repairs > 0, "the fixture must exercise actual repairs");
}

/// Ingesting the whole dataset as one batch cleans it against the fully
/// fitted model, so even the *streaming* repairs match one-shot cleaning.
#[test]
fn whole_dataset_batch_streams_one_shot_repairs() {
    let bench = BenchmarkDataset::Hospital.build_sized(120, SEED + 1);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let cleaner =
        BClean::new(Variant::PartitionedInference.config().with_threads(2)).with_constraints(constraints);
    let oneshot = cleaner.fit(&bench.dirty).clean(&bench.dirty);
    let mut session = CleaningSession::new(cleaner, bench.dirty.schema().clone());
    let streamed = session.ingest(&bench.dirty);
    assert_eq!(streamed, oneshot.repairs);
    assert_eq!(session.finalize().repairs, oneshot.repairs);
}

/// Empty batches are harmless no-ops at any point of the stream.
#[test]
fn empty_batches_are_noops() {
    let bench = BenchmarkDataset::Hospital.build_sized(60, SEED + 2);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let cleaner = BClean::new(Variant::Basic.config().with_threads(1)).with_constraints(constraints.clone());
    let empty = Dataset::new(bench.dirty.schema().clone());
    let mut session = CleaningSession::new(cleaner.clone(), bench.dirty.schema().clone());
    assert!(session.ingest(&empty).is_empty());
    assert!(session.model().is_none());
    assert!(session.finalize().repairs.is_empty());
    session.ingest(&bench.dirty);
    assert!(session.ingest(&empty).is_empty());
    let oneshot = cleaner.fit(&bench.dirty).clean(&bench.dirty);
    assert_eq!(session.finalize().repairs, oneshot.repairs);
}

/// Sharded fit + sharded clean must be bit-identical to the one-shot
/// pipeline for every paper variant, shard count and thread count: the
/// serialized artifact bytes match (after normalising the persisted
/// shard/thread knobs, which are execution hints, not statistics) and the
/// cleaning output matches repair-for-repair.
#[test]
fn sharded_fit_and_clean_match_one_shot_for_every_variant() {
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let mut total_repairs = 0usize;
    for variant in Variant::all() {
        let baseline = BClean::new(variant.config().with_threads(1))
            .with_constraints(constraints.clone())
            .fit_artifact(&bench.dirty);
        let baseline_bytes = baseline.to_bytes().expect("artifact serialises");
        let oneshot = baseline.compile().clean(&bench.dirty);
        total_repairs += oneshot.repairs.len();
        for shards in [2usize, 4, 8] {
            for threads in [1usize, 2, 8] {
                let cleaner = BClean::new(variant.config().with_threads(threads).with_shards(shards))
                    .with_constraints(constraints.clone());
                let mut artifact = cleaner.fit_artifact(&bench.dirty);
                let result = artifact.compile().clean(&bench.dirty);

                // Statistics are bit-identical: serialise with the execution
                // knobs normalised back to the baseline's and compare bytes.
                artifact.set_shards(1);
                artifact.set_threads(1);
                assert_eq!(
                    artifact.to_bytes().expect("artifact serialises"),
                    baseline_bytes,
                    "artifact diverged: variant {variant:?} shards {shards} threads {threads}"
                );

                // The sharded clean path merges to the same output.
                assert_eq!(
                    result.repairs, oneshot.repairs,
                    "repairs diverged: variant {variant:?} shards {shards} threads {threads}"
                );
                assert_eq!(result.cleaned, oneshot.cleaned);
                assert_eq!(result.stats.cells_examined, oneshot.stats.cells_examined);
                assert_eq!(result.stats.cells_skipped, oneshot.stats.cells_skipped);
                assert_eq!(result.stats.candidates_evaluated, oneshot.stats.candidates_evaluated);
            }
        }
    }
    assert!(total_repairs > 0, "the fixture must exercise actual repairs");
}

/// Sharding composes with streaming: a session whose config fits and cleans
/// in shards finalizes to the exact one-shot, unsharded repairs.
#[test]
fn sharded_session_matches_unsharded_one_shot() {
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED + 3);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let oneshot = BClean::new(Variant::PartitionedInference.config().with_threads(1))
        .with_constraints(constraints.clone())
        .fit(&bench.dirty)
        .clean(&bench.dirty);
    let cleaner = BClean::new(Variant::PartitionedInference.config().with_threads(2).with_shards(4))
        .with_constraints(constraints);
    let mut session = CleaningSession::new(cleaner, bench.dirty.schema().clone());
    for batch in split(&bench.dirty, &[13, 50, 97]) {
        session.ingest(&batch);
    }
    let result = session.finalize();
    assert_eq!(result.repairs, oneshot.repairs);
    assert_eq!(result.cleaned, oneshot.cleaned);
}

/// The candidate-pruning escape hatch: with `top_k` at or above every
/// column's cardinality the clean is bit-identical to the exact default,
/// and with an aggressively small `top_k` the pruned path actually prunes
/// (fewer candidates evaluated) while examining the same cells.
#[test]
fn candidate_pruning_is_exact_above_cardinality_and_prunes_below() {
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED + 4);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let fit =
        |config: BCleanConfig| BClean::new(config).with_constraints(constraints.clone()).fit(&bench.dirty);
    let exact = fit(Variant::PartitionedInference.config().with_threads(1)).clean(&bench.dirty);

    // No column's cardinality can exceed the row count, so this top-k keeps
    // every candidate list intact and must reproduce the exact output.
    let generous = fit(Variant::PartitionedInference
        .config()
        .with_threads(1)
        .with_candidate_top_k(bench.dirty.num_rows()))
    .clean(&bench.dirty);
    assert_eq!(generous.repairs, exact.repairs);
    assert_eq!(generous.cleaned, exact.cleaned);
    assert_eq!(generous.stats.candidates_evaluated, exact.stats.candidates_evaluated);

    // An aggressive top-k exercises the pruned enumeration for real.
    let pruned = fit(Variant::PartitionedInference.config().with_threads(1).with_candidate_top_k(3))
        .clean(&bench.dirty);
    assert!(
        pruned.stats.candidates_evaluated < exact.stats.candidates_evaluated,
        "top-3 pruning must cut the candidate count ({} vs {})",
        pruned.stats.candidates_evaluated,
        exact.stats.candidates_evaluated
    );
    assert_eq!(pruned.stats.cells_examined, exact.stats.cells_examined);

    // Pruned cleaning is still deterministic under sharding.
    let pruned_sharded =
        fit(Variant::PartitionedInference.config().with_threads(2).with_shards(4).with_candidate_top_k(3))
            .clean(&bench.dirty);
    assert_eq!(pruned_sharded.repairs, pruned.repairs);
    assert_eq!(pruned_sharded.cleaned, pruned.cleaned);
}

/// The out-of-core pipeline (`bclean_core::stream`): fitting and cleaning
/// through bounded chunks must reproduce the in-RAM one-shot run
/// **byte-for-byte** — serialized artifact bytes and the rendered repairs
/// CSV — for chunkings of one row, uneven chunks and one whole-file chunk,
/// across 1, 2 and 8 threads.
#[test]
fn out_of_core_clean_matches_one_shot_bytes_for_any_chunking_and_threads() {
    use bclean::core::{clean_stream, repairs_to_csv, StreamOptions};
    use bclean::data::DatasetChunks;

    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let mut total_repairs = 0usize;
    for threads in [1usize, 2, 8] {
        let cleaner = BClean::new(Variant::PartitionedInference.config().with_threads(threads))
            .with_constraints(constraints.clone());
        let baseline = cleaner.fit_artifact(&bench.dirty);
        let baseline_bytes = baseline.to_bytes().expect("artifact serialises");
        let oneshot = baseline.compile().clean(&bench.dirty);
        total_repairs += oneshot.repairs.len();
        for sizes in [vec![1usize], vec![13, 50, 97], vec![usize::MAX]] {
            let mut source = DatasetChunks::new(bench.dirty.clone(), &sizes);
            let outcome = clean_stream(&cleaner, &mut source, &StreamOptions::default())
                .expect("stream clean succeeds");
            assert_eq!(
                outcome.artifact.as_ref().unwrap().to_bytes().expect("artifact serialises"),
                baseline_bytes,
                "artifact diverged: threads {threads} sizes {sizes:?}"
            );
            assert_eq!(
                repairs_to_csv(&outcome.repairs),
                repairs_to_csv(&oneshot.repairs),
                "repairs diverged: threads {threads} sizes {sizes:?}"
            );
            assert_eq!(outcome.rows, bench.dirty.num_rows());
            assert_eq!(outcome.stats.cells_examined, oneshot.stats.cells_examined);
            assert_eq!(outcome.stats.cells_skipped, oneshot.stats.cells_skipped);
            assert_eq!(outcome.stats.candidates_evaluated, oneshot.stats.candidates_evaluated);
        }
    }
    assert!(total_repairs > 0, "the fixture must exercise actual repairs");
}

/// The full file-to-file out-of-core path: a chunked CSV reader feeding
/// `clean_stream` matches reading the same file whole, and the streamed
/// cleaned-CSV output is byte-identical to the one-shot `write_csv_file`.
#[test]
fn csv_file_chunks_stream_to_one_shot_bytes() {
    use bclean::core::{clean_stream, repairs_to_csv, StreamOptions};
    use bclean::data::{read_csv_file, write_csv_file, ChunkLimits, CsvFileChunks};

    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED + 5);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let dir = std::env::temp_dir().join(format!("bclean-ooc-file-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let source_path = dir.join("dirty.csv");
    write_csv_file(&bench.dirty, &source_path).unwrap();

    // The in-RAM baseline reads the same bytes the stream will.
    let whole = read_csv_file(&source_path).unwrap();
    let cleaner =
        BClean::new(Variant::PartitionedInference.config().with_threads(2)).with_constraints(constraints);
    let baseline = cleaner.fit_artifact(&whole);
    let oneshot = baseline.compile().clean(&whole);
    let cleaned_path = dir.join("cleaned_oneshot.csv");
    write_csv_file(&oneshot.cleaned, &cleaned_path).unwrap();

    let streamed_path = dir.join("cleaned_streamed.csv");
    let mut source = CsvFileChunks::open(&source_path, ChunkLimits::rows(37)).unwrap();
    let options = StreamOptions {
        limits: ChunkLimits::rows(37),
        cleaned_path: Some(streamed_path.clone()),
        ..StreamOptions::default()
    };
    let outcome = clean_stream(&cleaner, &mut source, &options).expect("stream clean succeeds");

    assert_eq!(
        outcome.artifact.as_ref().unwrap().to_bytes().unwrap(),
        baseline.to_bytes().unwrap(),
        "artifact bytes diverged between file-chunked and in-RAM fits"
    );
    assert_eq!(repairs_to_csv(&outcome.repairs), repairs_to_csv(&oneshot.repairs));
    assert_eq!(
        std::fs::read(&streamed_path).unwrap(),
        std::fs::read(&cleaned_path).unwrap(),
        "streamed cleaned CSV must be byte-identical to the one-shot write"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Re-cleaning from the persisted encoded-dataset section must skip the
/// parse + encode passes and still produce byte-identical repairs and
/// artifact; editing the source invalidates the fingerprint and rebuilds.
#[test]
fn persisted_encoded_dataset_reclean_is_byte_identical() {
    use bclean::core::{clean_stream, repairs_to_csv, StreamOptions};
    use bclean::data::{write_csv_file, ChunkLimits, CsvFileChunks};
    use bclean::store::SourceFingerprint;

    let bench = BenchmarkDataset::Hospital.build_sized(120, SEED + 6);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let cleaner =
        BClean::new(Variant::PartitionedInference.config().with_threads(2)).with_constraints(constraints);
    let dir = std::env::temp_dir().join(format!("bclean-ooc-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let source_path = dir.join("dirty.csv");
    write_csv_file(&bench.dirty, &source_path).unwrap();
    let cache_path = dir.join("encoded.bclean");

    let run = |expect_label: &str| {
        let options = StreamOptions {
            limits: ChunkLimits::rows(31),
            cache_path: Some(cache_path.clone()),
            fingerprint: Some(SourceFingerprint::of_file(&source_path).unwrap()),
            ..StreamOptions::default()
        };
        let mut source = CsvFileChunks::open(&source_path, ChunkLimits::rows(31)).unwrap();
        clean_stream(&cleaner, &mut source, &options).unwrap_or_else(|e| panic!("{expect_label}: {e}"))
    };

    let first = run("first run");
    assert!(!first.encode_skipped);
    assert!(first.cache_written);

    let second = run("cached run");
    assert!(second.encode_skipped, "matching fingerprint must skip the encode pass");
    assert!(!second.cache_written);
    assert_eq!(repairs_to_csv(&second.repairs), repairs_to_csv(&first.repairs));
    assert_eq!(
        second.artifact.as_ref().unwrap().to_bytes().unwrap(),
        first.artifact.as_ref().unwrap().to_bytes().unwrap()
    );

    // Append a row: the fingerprint changes, the stale cache must miss and
    // be rewritten against the new bytes.
    let mut extra = String::new();
    for c in 0..bench.dirty.num_columns() {
        if c > 0 {
            extra.push(',');
        }
        extra.push_str("extra");
    }
    let mut base = std::fs::read_to_string(&source_path).unwrap();
    base.push_str(&extra);
    base.push('\n');
    std::fs::write(&source_path, base).unwrap();
    let third = run("stale run");
    assert!(!third.encode_skipped, "edited source must invalidate the cache");
    assert!(third.cache_written);
    assert_eq!(third.rows, bench.dirty.num_rows() + 1);
    std::fs::remove_dir_all(&dir).ok();
}

fn benchmark_strategy() -> impl Strategy<Value = (BenchmarkDataset, usize, u64, Vec<usize>)> {
    (
        0usize..BenchmarkDataset::all().len(),
        30usize..90,
        0u64..1_000_000,
        proptest::collection::vec(1usize..40, 1..6),
    )
        .prop_map(|(idx, rows, seed, sizes)| (BenchmarkDataset::all()[idx], rows, seed, sizes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across every datagen benchmark family, random sizes, seeds and batch
    /// splits (single-row batches included; any tail rows land in the last
    /// batch), a refit-every-batch session must finalize to the one-shot
    /// repairs.
    #[test]
    fn random_batch_splits_agree_with_one_shot(
        (dataset, rows, seed, sizes) in benchmark_strategy()
    ) {
        let bench = dataset.build_sized(rows, seed);
        let constraints = bclean_constraints(dataset);
        let cleaner = BClean::new(Variant::PartitionedInference.config().with_threads(2))
            .with_constraints(constraints);
        let oneshot_model = cleaner.fit(&bench.dirty);
        let oneshot = oneshot_model.clean(&bench.dirty);
        let mut session = CleaningSession::new(cleaner, bench.dirty.schema().clone());
        for batch in split(&bench.dirty, &sizes) {
            session.ingest(&batch);
        }
        let result = session.finalize();
        prop_assert_eq!(
            session.model().unwrap().network().dag().edges(),
            oneshot_model.network().dag().edges()
        );
        prop_assert_eq!(&result.repairs, &oneshot.repairs);
        prop_assert_eq!(&result.cleaned, &oneshot.cleaned);
    }
}

fn shard_strategy() -> impl Strategy<Value = (BenchmarkDataset, usize, u64, usize, usize)> {
    (
        0usize..BenchmarkDataset::all().len(),
        30usize..90,
        0u64..1_000_000,
        // Shard counts deliberately exceed the row count sometimes, to hit
        // the clamp-to-rows path.
        1usize..200,
        1usize..5,
    )
        .prop_map(|(idx, rows, seed, shards, threads)| {
            (BenchmarkDataset::all()[idx], rows, seed, shards, threads)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across every datagen benchmark family and random shard/thread
    /// counts (including shard counts past the row count), the sharded
    /// fit + clean pipeline reproduces the serial one-shot output exactly.
    #[test]
    fn random_shard_counts_agree_with_one_shot(
        (dataset, rows, seed, shards, threads) in shard_strategy()
    ) {
        let bench = dataset.build_sized(rows, seed);
        let constraints = bclean_constraints(dataset);
        let oneshot = BClean::new(Variant::PartitionedInference.config().with_threads(1))
            .with_constraints(constraints.clone())
            .fit(&bench.dirty)
            .clean(&bench.dirty);
        let sharded = BClean::new(
            Variant::PartitionedInference.config().with_threads(threads).with_shards(shards),
        )
        .with_constraints(constraints)
        .fit(&bench.dirty)
        .clean(&bench.dirty);
        prop_assert_eq!(&sharded.repairs, &oneshot.repairs);
        prop_assert_eq!(&sharded.cleaned, &oneshot.cleaned);
        prop_assert_eq!(sharded.stats.candidates_evaluated, oneshot.stats.candidates_evaluated);
    }
}
