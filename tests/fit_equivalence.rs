//! Equivalence guard for the code-space fit pipeline: on the Hospital
//! fixture, `BClean::fit` — encoded structure learning, direct-to-compiled
//! CPT counting, parallel compensatory build — must produce the same model
//! as the retained pre-refactor construction (`BClean::fit_reference`):
//! identical learned structures, identical CPTs (compared within float
//! tolerance through their probability APIs), identical domains and
//! FD-confidence matrices, and byte-identical downstream repairs, for every
//! paper variant and for 1, 2 and 8 worker threads. A property test repeats
//! the repair-level check across every datagen benchmark family.

use bclean::data::AttributeDomain;
use bclean::eval::bclean_constraints;
use bclean::prelude::*;
use proptest::prelude::*;

const ROWS: usize = 160;
const SEED: u64 = 20240817;

/// CPTs are float tables; the code-space path produces the same integer
/// counts and the same float expressions, so the tolerance is only there to
/// keep the test honest about what it guarantees.
const CPT_TOLERANCE: f64 = 1e-12;

#[test]
fn fit_matches_fit_reference_for_every_variant_and_thread_count() {
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let mut total_repairs = 0usize;
    for variant in Variant::all() {
        // The reference fit fixes the oracle; fitting is deterministic and
        // thread-independent, so each thread count refits the same model.
        let reference = BClean::new(variant.config().with_threads(1))
            .with_constraints(constraints.clone())
            .fit_reference(&bench.dirty);
        let reference_result = reference.clean(&bench.dirty);
        total_repairs += reference_result.repairs.len();
        for threads in [1usize, 2, 8] {
            let model = BClean::new(variant.config().with_threads(threads))
                .with_constraints(constraints.clone())
                .fit(&bench.dirty);

            // Identical structures.
            assert_eq!(
                model.network().dag().edges(),
                reference.network().dag().edges(),
                "learned structure diverged: variant {variant:?} threads {threads}"
            );
            assert_eq!(model.network().attribute_names(), reference.network().attribute_names());
            assert_eq!(model.network().num_parameters(), reference.network().num_parameters());

            // Identical domains (derived PartialEq covers values + counts).
            let m = bench.dirty.num_columns();
            for col in 0..m {
                assert_eq!(
                    model.domains().attribute(col),
                    &AttributeDomain::from_column(&bench.dirty, col),
                    "domain diverged: column {col}"
                );
            }

            // Identical CPTs, within float tolerance, via the probability
            // API: every candidate value of every column against every
            // observed tuple's parent context (plus null).
            for (r, row) in bench.dirty.rows().enumerate() {
                for col in 0..m {
                    let mut probes: Vec<Value> = model.domains().attribute(col).values().to_vec();
                    probes.push(Value::Null);
                    for value in &probes {
                        let a = model.network().cpt(col).prob_given_row(value, row);
                        let b = reference.network().cpt(col).prob_given_row(value, row);
                        assert!(
                            (a - b).abs() <= CPT_TOLERANCE,
                            "CPT diverged: variant {variant:?} row {r} col {col} value {value} \
                             ({a} vs {b})"
                        );
                    }
                }
            }

            // Downstream inference must be byte-identical: same repairs,
            // same cleaned dataset, same counters — through both scoring
            // engines of the freshly fitted model.
            let run = model.clean(&bench.dirty);
            assert_eq!(
                run.repairs, reference_result.repairs,
                "repairs diverged: variant {variant:?} threads {threads}"
            );
            assert_eq!(run.cleaned, reference_result.cleaned);
            assert_eq!(run.stats.cells_examined, reference_result.stats.cells_examined);
            assert_eq!(run.stats.cells_skipped, reference_result.stats.cells_skipped);
            assert_eq!(run.stats.candidates_evaluated, reference_result.stats.candidates_evaluated);
            let run_reference_engine = model.clean_reference(&bench.dirty);
            assert_eq!(run_reference_engine.repairs, reference_result.repairs);
        }
    }
    assert!(total_repairs > 0, "the fixture must exercise actual repairs");
}

fn benchmark_strategy() -> impl Strategy<Value = (BenchmarkDataset, usize, u64)> {
    (0usize..BenchmarkDataset::all().len(), 30usize..100, 0u64..1_000_000)
        .prop_map(|(idx, rows, seed)| (BenchmarkDataset::all()[idx], rows, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across every datagen benchmark family, random sizes and seeds, the
    /// code-space fit and the reference fit must agree on the learned
    /// structure and produce byte-identical repairs.
    #[test]
    fn fit_paths_agree_over_generated_benchmarks((dataset, rows, seed) in benchmark_strategy()) {
        let bench = dataset.build_sized(rows, seed);
        let constraints = bclean_constraints(dataset);
        let cleaner = BClean::new(Variant::PartitionedInference.config().with_threads(2))
            .with_constraints(constraints);
        let fast = cleaner.fit(&bench.dirty);
        let reference = cleaner.fit_reference(&bench.dirty);
        prop_assert_eq!(fast.network().dag().edges(), reference.network().dag().edges());
        let fast_result = fast.clean(&bench.dirty);
        let reference_result = reference.clean(&bench.dirty);
        prop_assert_eq!(&fast_result.repairs, &reference_result.repairs);
        prop_assert_eq!(&fast_result.cleaned, &reference_result.cleaned);
    }
}
