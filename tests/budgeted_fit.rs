//! Guards for the sketch-based budgeted fit path (`FitBudget`).
//!
//! Three contracts:
//!
//! 1. **Exact is exact.** The default `FitBudget::Exact` must produce
//!    artifact bytes that are bit-identical at every thread count and shard
//!    count, for every paper variant — the budgeted machinery must be
//!    invisible unless asked for.
//! 2. **Budgeted is deterministic.** A budgeted fit is seeded end to end:
//!    same data + same budget ⇒ identical artifact bytes, again at every
//!    thread and shard count, and the artifact round-trips through the
//!    `.bclean` container (bounded pair tables, tracked heavy-hitter lists
//!    and the budget itself included).
//! 3. **Budgeted is close.** At generous budgets the budgeted model's
//!    repairs agree with the exact model's (Jaccard ≥ 0.95 over
//!    `(cell, target)` pairs), across the datagen benchmark families.

use bclean::eval::{bclean_constraints, repair_agreement};
use bclean::prelude::*;
use proptest::prelude::*;

const SEED: u64 = 20240817;

fn hospital() -> DirtyDataset {
    // Large enough that cols x rows crosses the fit executor's serial
    // fallback threshold, so the parallel fit stages genuinely run.
    BenchmarkDataset::Hospital.build_sized(4000, SEED)
}

/// A budget small enough to genuinely approximate on the Hospital fixture:
/// sampled structure rows and single-digit heavy-hitter tables.
fn tight_budget() -> BudgetParams {
    BudgetParams { sample_rows: 500, sketch_k: 64, heavy_hitters: 8, seed: 7 }
}

#[test]
fn exact_fit_bytes_are_invariant_across_threads_and_shards() {
    let bench = hospital();
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    for variant in Variant::all() {
        let baseline = BClean::new(variant.config().with_threads(1))
            .with_constraints(constraints.clone())
            .fit_artifact(&bench.dirty);
        let baseline_bytes = baseline.to_bytes().unwrap();
        let baseline_repairs = baseline.compile().clean(&bench.dirty).repairs;
        for threads in [2usize, 8] {
            for shards in [1usize, 4] {
                let artifact = BClean::new(variant.config().with_threads(threads).with_shards(shards))
                    .with_constraints(constraints.clone())
                    .fit_artifact(&bench.dirty);
                // The config section legitimately records the thread/shard
                // knobs; the *model* sections must not move. Normalise the
                // knobs and byte-compare everything.
                let mut artifact = artifact;
                artifact.set_threads(1);
                artifact.set_shards(1);
                assert_eq!(
                    artifact.to_bytes().unwrap(),
                    baseline_bytes,
                    "exact fit drifted: variant {variant:?} threads {threads} shards {shards}"
                );
                assert_eq!(artifact.compile().clean(&bench.dirty).repairs, baseline_repairs);
            }
        }
    }
}

#[test]
fn budgeted_fit_is_deterministic_and_thread_shard_invariant() {
    let bench = hospital();
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let budget = FitBudget::Budgeted(tight_budget());
    let baseline =
        BClean::new(Variant::PartitionedInference.config().with_threads(1).with_fit_budget(budget))
            .with_constraints(constraints.clone())
            .fit_artifact(&bench.dirty);
    let baseline_bytes = baseline.to_bytes().unwrap();

    // Re-fitting with the same seed reproduces the bytes exactly.
    let again = BClean::new(Variant::PartitionedInference.config().with_threads(1).with_fit_budget(budget))
        .with_constraints(constraints.clone())
        .fit_artifact(&bench.dirty);
    assert_eq!(again.to_bytes().unwrap(), baseline_bytes);

    for threads in [2usize, 8] {
        for shards in [1usize, 4] {
            let mut artifact = BClean::new(
                Variant::PartitionedInference
                    .config()
                    .with_threads(threads)
                    .with_shards(shards)
                    .with_fit_budget(budget),
            )
            .with_constraints(constraints.clone())
            .fit_artifact(&bench.dirty);
            artifact.set_threads(1);
            artifact.set_shards(1);
            assert_eq!(
                artifact.to_bytes().unwrap(),
                baseline_bytes,
                "budgeted fit drifted: threads {threads} shards {shards}"
            );
        }
    }

    // A different seed is a different (but equally deterministic) model.
    let reseeded = FitBudget::Budgeted(BudgetParams { seed: 8, ..tight_budget() });
    let other = BClean::new(Variant::PartitionedInference.config().with_threads(1).with_fit_budget(reseeded))
        .with_constraints(constraints)
        .fit_artifact(&bench.dirty);
    let other_bytes = other.to_bytes().unwrap();
    assert_eq!(
        other_bytes,
        BClean::new(Variant::PartitionedInference.config().with_threads(1).with_fit_budget(reseeded))
            .with_constraints(bclean_constraints(BenchmarkDataset::Hospital))
            .fit_artifact(&bench.dirty)
            .to_bytes()
            .unwrap()
    );
}

#[test]
fn budgeted_artifact_round_trips_and_absorbs() {
    let bench = hospital();
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let budget = FitBudget::Budgeted(tight_budget());
    let artifact = BClean::new(Variant::PartitionedInference.config().with_fit_budget(budget))
        .with_constraints(constraints.clone())
        .fit_artifact(&bench.dirty);
    let exact = BClean::new(Variant::PartitionedInference.config())
        .with_constraints(constraints)
        .fit_artifact(&bench.dirty);
    // The tight budget must actually approximate — otherwise this test
    // would pass without ever touching the bounded stores.
    assert_ne!(artifact.to_bytes().unwrap(), exact.to_bytes().unwrap());

    let bytes = artifact.to_bytes().unwrap();
    let loaded = ModelArtifact::from_bytes(&bytes).unwrap();
    assert_eq!(loaded.to_bytes().unwrap(), bytes, "save/load/save must be byte-stable");
    assert_eq!(loaded.config().fit_budget, budget, "the budget itself persists");
    let original = artifact.compile().clean(&bench.dirty);
    let restored = loaded.compile().clean(&bench.dirty);
    assert_eq!(restored.repairs, original.repairs);

    // Ingesting new rows (which appends fresh dictionary codes) must agree
    // between the live artifact and the reloaded one: bounded pair tables
    // route unseen codes into their aggregation buckets identically.
    let batch = BenchmarkDataset::Hospital.build_sized(200, SEED + 1).dirty;
    let mut live = artifact;
    let mut reloaded = loaded;
    live.ingest_batch(&batch).unwrap();
    reloaded.ingest_batch(&batch).unwrap();
    assert_eq!(live.to_bytes().unwrap(), reloaded.to_bytes().unwrap());
}

#[test]
fn streaming_session_honours_the_budget() {
    // A budgeted session must stay deterministic: two sessions fed the same
    // batches end up with byte-identical artifacts.
    let bench = BenchmarkDataset::Hospital.build_sized(600, SEED);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let budget = FitBudget::Budgeted(tight_budget());
    let run = || {
        let cleaner = BClean::new(Variant::PartitionedInference.config().with_fit_budget(budget))
            .with_constraints(constraints.clone());
        let mut session = CleaningSession::new(cleaner, bench.dirty.schema().clone());
        for chunk in 0..3 {
            let mut batch = Dataset::new(bench.dirty.schema().clone());
            for r in (chunk * 200)..((chunk + 1) * 200) {
                batch.push_row(bench.dirty.row(r).unwrap().to_vec()).unwrap();
            }
            session.ingest(&batch);
        }
        session.finalize();
        session.artifact().unwrap().to_bytes().unwrap()
    };
    assert_eq!(run(), run());
}

fn benchmark_strategy() -> impl Strategy<Value = (BenchmarkDataset, usize, u64)> {
    (0usize..BenchmarkDataset::all().len(), 120usize..300, 0u64..1_000_000)
        .prop_map(|(idx, rows, seed)| (BenchmarkDataset::all()[idx], rows, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across the datagen families: a budgeted fit at generous budgets is
    /// deterministic per seed and repairs (almost) the same cells as the
    /// exact fit.
    #[test]
    fn generous_budgets_agree_with_exact((dataset, rows, seed) in benchmark_strategy()) {
        let bench = dataset.build_sized(rows, seed);
        let constraints = bclean_constraints(dataset);
        // Generous: the sample covers every row and the heavy-hitter lists
        // cover every realistic clean pool, so only the bucketed structure
        // statistics approximate.
        let budget = FitBudget::Budgeted(BudgetParams {
            sample_rows: 10_000,
            sketch_k: 256,
            heavy_hitters: 256,
            seed: seed ^ 0xDECAF,
        });
        let exact = BClean::new(Variant::PartitionedInference.config())
            .with_constraints(constraints.clone())
            .fit(&bench.dirty)
            .clean(&bench.dirty);
        let cleaner = BClean::new(Variant::PartitionedInference.config().with_fit_budget(budget))
            .with_constraints(constraints);
        let budgeted = cleaner.fit_artifact(&bench.dirty);
        prop_assert_eq!(
            budgeted.to_bytes().unwrap(),
            cleaner.fit_artifact(&bench.dirty).to_bytes().unwrap(),
            "budgeted fit must be deterministic per seed"
        );
        let result = budgeted.compile().clean(&bench.dirty);
        let agreement = repair_agreement(&exact.repairs, &result.repairs);
        prop_assert!(
            agreement >= 0.95,
            "repair agreement {:.3} below 0.95 on {:?} ({} rows, seed {})",
            agreement, dataset, rows, seed
        );
    }
}
