//! Link-check over the repo's markdown documentation.
//!
//! Scans `README.md` and every file under `docs/` for markdown link
//! targets and fails when a relative target does not exist on disk, or a
//! `#fragment` names a heading the target file does not have. External
//! (`http…`) links are skipped — CI must not depend on network — and
//! fenced code blocks are ignored so byte-layout diagrams cannot produce
//! false positives. Runs with the workspace suite and as a dedicated step
//! in CI's docs job.

use std::path::{Path, PathBuf};

/// The markdown files under the link-check contract.
fn documentation_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    assert!(files.len() >= 3, "expected README.md + docs/*.md, found {files:?}");
    files
}

/// Every `](target)` occurrence outside fenced code blocks, with its
/// 1-based line number.
fn extract_links(text: &str) -> Vec<(usize, String)> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (index, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        let mut offset = 0;
        while let Some(open) = rest[offset..].find("](") {
            let start = offset + open + 2;
            let Some(close) = rest[start..].find(')') else { break };
            links.push((index + 1, rest[start..start + close].to_string()));
            offset = start + close + 1;
        }
        let _ = &mut rest;
    }
    links
}

/// GitHub-style anchor slug of a heading: lowercase, alphanumerics kept,
/// spaces and hyphens become hyphens, everything else dropped.
fn slugify(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// Collapse runs of hyphens — tolerance for headings whose dropped
/// punctuation leaves consecutive separators.
fn collapse(slug: &str) -> String {
    let mut out = String::with_capacity(slug.len());
    for c in slug.chars() {
        if c == '-' && out.ends_with('-') {
            continue;
        }
        out.push(c);
    }
    out
}

/// All heading anchors of one markdown document.
fn heading_slugs(text: &str) -> Vec<String> {
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            slugs.push(slugify(line.trim_start_matches('#')));
        }
    }
    slugs
}

fn has_anchor(text: &str, fragment: &str) -> bool {
    let want = collapse(fragment);
    heading_slugs(text).iter().any(|s| s == fragment || collapse(s) == want)
}

#[test]
fn every_relative_documentation_link_resolves() {
    let mut failures = Vec::new();
    for file in documentation_files() {
        let text =
            std::fs::read_to_string(&file).unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let dir = file.parent().expect("documentation file has a parent");
        for (line, target) in extract_links(&text) {
            let place = format!("{}:{line}", file.display());
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            if target.is_empty() {
                failures.push(format!("{place}: empty link target"));
                continue;
            }
            // Targets with spaces are prose that happened to contain "](",
            // not links.
            if target.contains(' ') {
                continue;
            }
            let (path_part, fragment) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (target.as_str(), None),
            };
            let resolved = if path_part.is_empty() { file.clone() } else { dir.join(path_part) };
            if !resolved.exists() {
                failures.push(format!("{place}: target `{target}` does not exist"));
                continue;
            }
            if let Some(fragment) = fragment {
                let is_markdown = resolved.extension().is_some_and(|e| e == "md");
                if is_markdown {
                    let linked = std::fs::read_to_string(&resolved)
                        .unwrap_or_else(|e| panic!("cannot read {}: {e}", resolved.display()));
                    if !has_anchor(&linked, fragment) {
                        failures.push(format!(
                            "{place}: `{}` has no heading for anchor `#{fragment}`",
                            resolved.display()
                        ));
                    }
                }
            }
        }
    }
    assert!(failures.is_empty(), "broken documentation links:\n{}", failures.join("\n"));
}

#[test]
fn link_extraction_and_slugs_behave() {
    let text = "see [a](docs/A.md#x-y) and [b](http://e/) end\n```\n[ignored](nope)\n```\n[c](B.md)";
    let links = extract_links(text);
    assert_eq!(
        links,
        vec![(1, "docs/A.md#x-y".to_string()), (1, "http://e/".to_string()), (5, "B.md".to_string())]
    );
    assert_eq!(slugify("## Out-of-core cleaning".trim_start_matches('#')), "out-of-core-cleaning");
    assert_eq!(collapse(&slugify("Data flow: encode → fit")), "data-flow-encode-fit");
    assert!(has_anchor("# Top\n\n## Out-of-core cleaning\n", "out-of-core-cleaning"));
    assert!(!has_anchor("# Top\n", "missing"));
}
