//! Equivalence guard for the dictionary-encoded scoring engine: on the
//! Hospital fixture (the same generator/seed family as
//! `tests/e2e_determinism.rs`), `BCleanModel::clean` — which scores entirely
//! over compiled `u32` codes — must produce the exact repair list, cleaned
//! dataset and statistics of the retained pre-refactor `Value` path
//! (`BCleanModel::clean_reference`), for every paper variant and for 1, 2
//! and 8 worker threads.

use bclean::eval::bclean_constraints;
use bclean::prelude::*;

const ROWS: usize = 160;
const SEED: u64 = 20240817;

#[test]
fn encoded_engine_matches_value_path_for_every_variant_and_thread_count() {
    let bench = BenchmarkDataset::Hospital.build_sized(ROWS, SEED);
    let constraints = bclean_constraints(BenchmarkDataset::Hospital);
    let mut total_repairs = 0usize;
    for variant in Variant::all() {
        // The reference run fixes the oracle; fitting is deterministic and
        // thread-independent, so each thread count refits the same model.
        let reference = BClean::new(variant.config().with_threads(1))
            .with_constraints(constraints.clone())
            .fit(&bench.dirty)
            .clean_reference(&bench.dirty);
        total_repairs += reference.repairs.len();
        for threads in [1usize, 2, 8] {
            let model = BClean::new(variant.config().with_threads(threads))
                .with_constraints(constraints.clone())
                .fit(&bench.dirty);
            let run = model.clean(&bench.dirty);
            assert_eq!(
                run.repairs, reference.repairs,
                "repair list diverged: variant {variant:?} threads {threads}"
            );
            assert_eq!(
                run.cleaned, reference.cleaned,
                "cleaned dataset diverged: variant {variant:?} threads {threads}"
            );
            assert_eq!(run.stats.cells_examined, reference.stats.cells_examined);
            assert_eq!(run.stats.cells_skipped, reference.stats.cells_skipped);
            assert_eq!(run.stats.candidates_evaluated, reference.stats.candidates_evaluated);
            assert_eq!(run.stats.repairs, reference.stats.repairs);
        }
    }
    assert!(total_repairs > 0, "the fixture must exercise actual repairs");
}
